"""The public streaming copy-detection facade.

:class:`StreamingDetector` wires the pieces of Sections IV-V together for
one stream: it sketches basic windows, consults the Hash-Query index when
configured, feeds the Sequential or Geometric engine, and accumulates
match events and statistics. Queries can be subscribed and unsubscribed
while the stream is running, mirroring the paper's online index
maintenance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CombinationOrder, DetectorConfig
from repro.core.context import EvalContext
from repro.core.engine_geometric import ColumnarGeometricEngine, GeometricEngine
from repro.core.engine_sequential import ColumnarSequentialEngine, SequentialEngine
from repro.core.monitor import EngineStats
from repro.core.query import Query, QuerySet
from repro.core.results import Match
from repro.errors import DetectionError
from repro.index.hq import HashQueryIndex
from repro.minhash.windows import BasicWindow, build_basic_windows
from repro.obs.registry import MetricsRegistry

__all__ = ["StreamingDetector"]


class StreamingDetector:
    """Continuous copy detection of a query set over one video stream.

    Parameters
    ----------
    config:
        Engine configuration (K, δ, w, λ, order, representation, index).
    queries:
        The subscribed continuous queries; their sketches must come from
        the same hash family the stream windows will be sketched with.
    keyframes_per_second:
        Cadence of the incoming cell-id stream, used to convert the
        configured window length (seconds) into key frames.
    registry:
        Optional shared :class:`~repro.obs.registry.MetricsRegistry`;
        one is created when omitted. All engine counters and phase
        timers of this stream accumulate into it
        (``detector.stats`` is a typed view over the same registry).
    cap_hint:
        Optional floor (in basic windows) for the candidate-expiry
        horizon. Query-sharded deployments pass the global
        ``max(ceil(λL/w))`` over *all* shards so a shard that holds only
        short queries still expires candidates on the global schedule
        (see :meth:`set_cap_hint` and ``docs/serving.md``).
    """

    def __init__(
        self,
        config: DetectorConfig,
        queries: QuerySet,
        keyframes_per_second: float,
        registry: Optional[MetricsRegistry] = None,
        cap_hint: int = 0,
    ) -> None:
        if keyframes_per_second <= 0:
            raise DetectionError(
                f"keyframes_per_second must be positive, "
                f"got {keyframes_per_second}"
            )
        self.config = config
        self.queries = queries
        self.keyframes_per_second = keyframes_per_second
        self.window_frames = max(
            1, round(config.window_seconds * keyframes_per_second)
        )

        index: Optional[HashQueryIndex] = None
        if config.use_index:
            index = HashQueryIndex.build(
                queries.sketches(),
                queries.max_windows_map(self.window_frames, config.tempo_scale),
            )
            index.warm_caches()
        self.index = index
        self.registry = registry if registry is not None else MetricsRegistry()
        self.context = EvalContext(
            config=config,
            queries=queries,
            window_frames=self.window_frames,
            index=index,
            registry=self.registry,
            cap_hint=cap_hint,
        )
        if config.order is CombinationOrder.SEQUENTIAL:
            sequential_cls = (
                ColumnarSequentialEngine if config.vectorized
                else SequentialEngine
            )
            self.engine: SequentialEngine | GeometricEngine = sequential_cls(
                self.context
            )
        else:
            geometric_cls = (
                ColumnarGeometricEngine if config.vectorized
                else GeometricEngine
            )
            self.engine = geometric_cls(self.context)
        self.matches: List[Match] = []

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """Instrumentation accumulated so far."""
        return self.context.stats

    @property
    def frames_processed(self) -> int:
        """Exact key frames consumed so far (counts partial windows by
        their true length, never as a full ``w``)."""
        return self.context.stats.frames_processed

    def process_window(
        self,
        window: BasicWindow,
        planes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> List[Match]:
        """Feed one pre-sketched basic window; return its match events.

        ``planes`` optionally supplies precomputed packed window-vs-query
        signature planes — ``(ge, lt)`` uint64 arrays of shape ``(Q, W)``
        in this detector's sorted-qid column order (the sketch-once
        serving front end). They are substituted for the window encode in
        the no-index bit path with identical accounting; the index and
        sketch paths ignore them. The self-encoding path (``planes``
        omitted) remains the bit-for-bit reference.
        """
        stats = self.context.stats
        stats.frames_processed += window.num_frames
        if window.num_frames < self.window_frames:
            stats.partial_windows += 1
        payload = self.context.window_payload(window, planes=planes)
        matches = self.engine.process(payload)
        self.matches.extend(matches)
        return matches

    def process_cell_ids(
        self, cell_ids: Sequence[int] | np.ndarray
    ) -> List[Match]:
        """Feed a whole per-key-frame cell-id stream; return all matches.

        The stream is chopped into basic windows of the configured length
        and processed in order. May be called repeatedly with consecutive
        stream chunks as long as each previous chunk was a whole number
        of windows: a chunk with a partial tail window is legal only as
        the *end* of the stream. Feeding more frames after a partial
        window raises :class:`~repro.errors.DetectionError`, because the
        window clock can no longer stay aligned with the query sketches.
        Window start frames are derived from the exact frame count
        consumed so far, so they remain correct even when the stream
        ends on a partial window.
        """
        stats = self.context.stats
        ids = np.asarray(cell_ids, dtype=np.int64)
        if stats.partial_windows and ids.size:
            raise DetectionError(
                "cannot push more frames after a partial basic window: "
                "the stream already ended mid-window and the window "
                "clock would misalign"
            )
        all_matches: List[Match] = []
        offset_windows = stats.windows_processed
        offset_frames = stats.frames_processed
        with self.registry.phase("phase.sketch"):
            # One batched hashing pass sketches every window of the
            # chunk (MinHashFamily.sketch_many) — same sketch values as
            # per-window hashing, a fraction of the calls.
            windows = build_basic_windows(
                ids, self.window_frames, self.queries.family
            )
        for window in windows:
            shifted = BasicWindow(
                index=window.index + offset_windows,
                start_frame=window.start_frame + offset_frames,
                num_frames=window.num_frames,
                cell_ids=window.cell_ids,
                sketch=window.sketch,
            )
            all_matches.extend(self.process_window(shifted))
        return all_matches

    def acknowledge_gap(self, num_windows: int) -> None:
        """Advance the window clock over ``num_windows`` skipped windows.

        A decode-side gap (corrupt GOPs, dropped chunks) means whole
        basic windows will never be sketched. Silently omitting them
        would desynchronise every later window index and start frame
        from the stream clock; acknowledging them keeps window indices
        absolute, so candidate expiry and match positions stay correct.
        Candidate state in the engines is untouched — the index jump is
        observed by the engines on the next processed window, expiring
        candidates across the gap exactly as elapsed stream time should.
        """
        if num_windows < 0:
            raise DetectionError(
                f"cannot acknowledge a negative gap ({num_windows} windows)"
            )
        if num_windows == 0:
            return
        stats = self.context.stats
        if stats.partial_windows:
            raise DetectionError(
                "cannot acknowledge a gap after a partial basic window: "
                "the stream already ended mid-window"
            )
        stats.windows_processed += num_windows
        stats.frames_processed += num_windows * self.window_frames
        stats.windows_skipped += num_windows

    # ------------------------------------------------------------------
    # online query maintenance
    # ------------------------------------------------------------------

    def subscribe(self, query: Query) -> None:
        """Add a continuous query while the stream is running."""
        self.queries.add(query)
        if self.index is not None:
            self.index.insert(
                query.qid,
                query.sketch,
                query.max_candidate_windows(
                    self.window_frames, self.config.tempo_scale
                ),
            )
            self.index.warm_caches()
        self.context.refresh_queries()
        # Eagerly re-sync the engine's per-query layout: a state
        # snapshot taken before the next window must already include
        # the new query, or restore will see a phantom query set.
        self.engine.refresh()

    def unsubscribe(self, qid: int) -> None:
        """Remove a continuous query; purges its in-flight state."""
        self.queries.remove(qid)
        if self.index is not None:
            self.index.remove(qid)
            self.index.warm_caches()
        self.context.refresh_queries()
        self.engine.purge_query(qid)

    def set_cap_hint(self, cap_hint: int) -> None:
        """Update the global candidate-expiry floor (sharded serving)."""
        self.context.set_cap_hint(cap_hint)
