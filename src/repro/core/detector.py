"""The public streaming copy-detection facade.

:class:`StreamingDetector` wires the pieces of Sections IV-V together for
one stream: it sketches basic windows, consults the Hash-Query index when
configured, feeds the Sequential or Geometric engine, and accumulates
match events and statistics. Queries can be subscribed and unsubscribed
while the stream is running, mirroring the paper's online index
maintenance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.config import CombinationOrder, DetectorConfig
from repro.core.context import EvalContext
from repro.core.engine_geometric import GeometricEngine
from repro.core.engine_sequential import SequentialEngine
from repro.core.monitor import EngineStats
from repro.core.query import Query, QuerySet
from repro.core.results import Match
from repro.errors import DetectionError
from repro.index.hq import HashQueryIndex
from repro.minhash.windows import BasicWindow, iter_basic_windows

__all__ = ["StreamingDetector"]


class StreamingDetector:
    """Continuous copy detection of a query set over one video stream.

    Parameters
    ----------
    config:
        Engine configuration (K, δ, w, λ, order, representation, index).
    queries:
        The subscribed continuous queries; their sketches must come from
        the same hash family the stream windows will be sketched with.
    keyframes_per_second:
        Cadence of the incoming cell-id stream, used to convert the
        configured window length (seconds) into key frames.
    """

    def __init__(
        self,
        config: DetectorConfig,
        queries: QuerySet,
        keyframes_per_second: float,
    ) -> None:
        if keyframes_per_second <= 0:
            raise DetectionError(
                f"keyframes_per_second must be positive, "
                f"got {keyframes_per_second}"
            )
        self.config = config
        self.queries = queries
        self.keyframes_per_second = keyframes_per_second
        self.window_frames = max(
            1, round(config.window_seconds * keyframes_per_second)
        )

        index: Optional[HashQueryIndex] = None
        if config.use_index:
            index = HashQueryIndex.build(
                queries.sketches(),
                queries.max_windows_map(self.window_frames, config.tempo_scale),
            )
            index.warm_caches()
        self.index = index
        self.context = EvalContext(
            config=config,
            queries=queries,
            window_frames=self.window_frames,
            index=index,
        )
        if config.order is CombinationOrder.SEQUENTIAL:
            self.engine: SequentialEngine | GeometricEngine = SequentialEngine(
                self.context
            )
        else:
            self.engine = GeometricEngine(self.context)
        self.matches: List[Match] = []

    # ------------------------------------------------------------------
    # stream processing
    # ------------------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """Instrumentation accumulated so far."""
        return self.context.stats

    def process_window(self, window: BasicWindow) -> List[Match]:
        """Feed one pre-sketched basic window; return its match events."""
        payload = self.context.window_payload(window)
        matches = self.engine.process(payload)
        self.matches.extend(matches)
        return matches

    def process_cell_ids(
        self, cell_ids: Sequence[int] | np.ndarray
    ) -> List[Match]:
        """Feed a whole per-key-frame cell-id stream; return all matches.

        The stream is chopped into basic windows of the configured length
        and processed in order. May be called repeatedly with consecutive
        stream chunks as long as each chunk is a whole number of windows.
        """
        all_matches: List[Match] = []
        offset_windows = self.context.stats.windows_processed
        offset_frames = offset_windows * self.window_frames
        for window in iter_basic_windows(
            cell_ids, self.window_frames, self.queries.family
        ):
            shifted = BasicWindow(
                index=window.index + offset_windows,
                start_frame=window.start_frame + offset_frames,
                num_frames=window.num_frames,
                cell_ids=window.cell_ids,
                sketch=window.sketch,
            )
            all_matches.extend(self.process_window(shifted))
        return all_matches

    # ------------------------------------------------------------------
    # online query maintenance
    # ------------------------------------------------------------------

    def subscribe(self, query: Query) -> None:
        """Add a continuous query while the stream is running."""
        self.queries.add(query)
        if self.index is not None:
            self.index.insert(
                query.qid,
                query.sketch,
                query.max_candidate_windows(
                    self.window_frames, self.config.tempo_scale
                ),
            )
            self.index.warm_caches()
        self.context.refresh_queries()

    def unsubscribe(self, qid: int) -> None:
        """Remove a continuous query; purges its in-flight state."""
        self.queries.remove(qid)
        if self.index is not None:
            self.index.remove(qid)
            self.index.warm_caches()
        self.context.refresh_queries()
        holders = (
            self.engine.candidates
            if isinstance(self.engine, SequentialEngine)
            else self.engine.segments
        )
        for holder in holders:
            holder.sigs.pop(qid, None)
            holder.relevant.discard(qid)
