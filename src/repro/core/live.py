"""Live stream monitoring: bitstream / frame chunks in, matches out.

:class:`StreamingDetector` consumes whole basic windows of cell ids; a
live deployment receives arbitrary-sized chunks — a few encoded GOPs
from a capture card, a burst of key frames. :class:`LiveMonitor` is the
adapter: it runs the compressed-domain feature pipeline on whatever
arrives (encoded bitstreams via the partial decoder, raw frames via the
pixel path, or pre-extracted cell ids), buffers the signature stream,
and feeds the detector exactly one basic window at a time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codec.gop import EncodedVideo
from repro.core.detector import StreamingDetector
from repro.core.results import Match
from repro.errors import DetectionError
from repro.features.pipeline import FingerprintExtractor
from repro.video.clip import VideoClip

__all__ = ["LiveMonitor"]


class LiveMonitor:
    """Incremental front end for a :class:`StreamingDetector`.

    Parameters
    ----------
    detector:
        The configured detector (queries already subscribed).
    extractor:
        Fingerprint pipeline used for encoded/raw-frame input; must use
        the same configuration the query fingerprints were built with.
        Optional: a monitor fed pre-extracted cell ids only (the
        evaluation runner, the sharded serving workers) may omit it, in
        which case :meth:`push_encoded` / :meth:`push_frames` raise
        :class:`~repro.errors.DetectionError`.

    Example
    -------
    >>> monitor = LiveMonitor(detector, extractor)     # doctest: +SKIP
    >>> for chunk in capture_card:                     # doctest: +SKIP
    ...     for match in monitor.push_encoded(chunk):
    ...         alert(match)
    >>> monitor.flush()                                # doctest: +SKIP
    """

    def __init__(
        self,
        detector: StreamingDetector,
        extractor: Optional[FingerprintExtractor] = None,
    ) -> None:
        self.detector = detector
        self.extractor = extractor
        self._pending = np.empty(0, dtype=np.int64)
        self._flushed = False
        # Real frames still to arrive and be dropped so that the next
        # kept frame lands on a basic-window boundary (see skip_frames).
        # Invariant: _skip_remaining > 0 implies _pending is empty.
        self._skip_remaining = 0

    def _require_extractor(self) -> FingerprintExtractor:
        if self.extractor is None:
            raise DetectionError(
                "this LiveMonitor was built without a fingerprint "
                "extractor; push pre-extracted cell ids instead"
            )
        return self.extractor

    @property
    def pending_frames(self) -> int:
        """Key frames buffered but not yet forming a full basic window."""
        return int(self._pending.shape[0])

    @property
    def skip_remaining(self) -> int:
        """Arriving frames still to be dropped to re-align the window
        clock after a :meth:`skip_frames` gap."""
        return self._skip_remaining

    @property
    def frames_consumed(self) -> int:
        """Key frames already handed to the detector.

        Reads the registry's exact frame counter rather than deriving
        ``windows_processed * window_frames`` — the latter overcounts
        once :meth:`flush` has processed a partial tail window, which
        contributes fewer than ``window_frames`` frames.
        """
        return self.detector.frames_processed

    # ------------------------------------------------------------------
    # input adapters
    # ------------------------------------------------------------------

    def push_encoded(self, encoded: EncodedVideo) -> List[Match]:
        """Feed an encoded bitstream chunk (I frames partially decoded)."""
        extractor = self._require_extractor()
        return self.push_cell_ids(extractor.cell_ids_from_encoded(encoded))

    def push_frames(
        self, frames: Union[np.ndarray, VideoClip]
    ) -> List[Match]:
        """Feed raw key frames (or a clip) through the pixel path."""
        extractor = self._require_extractor()
        if isinstance(frames, VideoClip):
            frames = frames.frames
        return self.push_cell_ids(extractor.cell_ids_from_frames(frames))

    def push_cell_ids(
        self, cell_ids: Union[Sequence[int], np.ndarray]
    ) -> List[Match]:
        """Feed pre-extracted frame signatures.

        Buffers until whole basic windows are available, then runs the
        detector on them; returns any matches produced by this push.
        """
        if self._flushed:
            raise DetectionError(
                "monitor already flushed; create a new LiveMonitor to "
                "process another stream"
            )
        ids = np.asarray(cell_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise DetectionError(
                f"cell ids must be 1-D, got shape {ids.shape}"
            )
        if self._skip_remaining:
            # The leading frames of this push fall inside a window
            # already sacrificed to a gap: drop them without touching
            # the clock (acknowledge_gap advanced it past them).
            drop = min(self._skip_remaining, int(ids.shape[0]))
            if drop:
                ids = ids[drop:]
                self._skip_remaining -= drop
                self.detector.stats.frames_skipped += drop
        self._pending = np.concatenate([self._pending, ids])
        window_frames = self.detector.window_frames
        full = (self._pending.shape[0] // window_frames) * window_frames
        if full == 0:
            return []
        ready, self._pending = self._pending[:full], self._pending[full:]
        return self.detector.process_cell_ids(ready)

    def skip_frames(self, count: int) -> None:
        """Acknowledge that ``count`` stream frames cannot be delivered.

        A decode-side gap (corrupt GOP, dropped chunk) means the frames
        existed in the stream but will never reach the detector. Simply
        not pushing them would silently shift every later window index
        and match position; ``skip_frames`` instead keeps the stream
        clock honest by sacrificing every basic window the gap overlaps:

        * buffered frames of the current partial window are dropped
          (their window can never complete cleanly),
        * the detector clock is advanced over all touched windows via
          :meth:`~repro.core.detector.StreamingDetector.acknowledge_gap`,
        * if the gap ends mid-window, the remaining real frames of that
          window are dropped as they arrive (``skip_remaining``), so the
          next kept frame starts exactly on a window boundary.

        Every frame lost this way — the ``count`` gap frames plus any
        intact frames sacrificed with their window — is accounted in the
        ``stream.frames_skipped`` counter; sacrificed windows are
        counted in ``stream.windows_skipped``.
        """
        if self._flushed:
            raise DetectionError(
                "monitor already flushed; create a new LiveMonitor to "
                "process another stream"
            )
        count = int(count)
        if count < 0:
            raise DetectionError(f"cannot skip a negative frame count ({count})")
        if count == 0:
            return
        window_frames = self.detector.window_frames
        clock = self.detector.frames_processed
        if self._skip_remaining:
            position = clock - self._skip_remaining
        else:
            position = clock + int(self._pending.shape[0])
        dropped_pending = int(self._pending.shape[0])
        if dropped_pending:
            self._pending = np.empty(0, dtype=np.int64)
        end = position + count
        boundary = -(-end // window_frames) * window_frames
        if boundary > clock:
            self.detector.acknowledge_gap((boundary - clock) // window_frames)
        self._skip_remaining = max(boundary, clock) - end
        self.detector.stats.frames_skipped += count + dropped_pending

    def flush(self) -> List[Match]:
        """Process the trailing partial window (end of stream).

        After flushing, further pushes are rejected: the detector's
        window clock can no longer stay aligned. Flushing with a pending
        gap (``skip_remaining > 0``) is legal — there is nothing to
        process, and the clock stays at the already-acknowledged window
        boundary (a deliberate overshoot past the true stream end).
        """
        if self._flushed:
            return []
        self._flushed = True
        self._skip_remaining = 0
        if self._pending.shape[0] == 0:
            return []
        tail, self._pending = self._pending, np.empty(0, dtype=np.int64)
        return self.detector.process_cell_ids(tail)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def buffer_state(self) -> Tuple[np.ndarray, bool, int]:
        """``(pending cell ids, flushed, skip_remaining)`` — the
        monitor's restorable state, captured for checkpointing
        (``repro.serve``)."""
        return self._pending.copy(), self._flushed, self._skip_remaining

    def restore_buffer(
        self,
        pending: np.ndarray,
        flushed: bool,
        skip_remaining: int = 0,
    ) -> None:
        """Reinstate a :meth:`buffer_state` snapshot on a fresh monitor."""
        pending = np.asarray(pending, dtype=np.int64).copy()
        skip_remaining = int(skip_remaining)
        if skip_remaining < 0:
            raise DetectionError(
                f"skip_remaining cannot be negative ({skip_remaining})"
            )
        if skip_remaining and pending.shape[0]:
            raise DetectionError(
                "corrupt monitor snapshot: pending frames alongside an "
                "unfinished gap window"
            )
        self._pending = pending
        self._flushed = bool(flushed)
        self._skip_remaining = skip_remaining
