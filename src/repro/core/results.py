"""Match events and their aggregation into detections.

The engine emits a raw :class:`Match` every time a candidate sequence
crosses the similarity threshold for some query — a true copy therefore
produces a run of matches as the candidate slides across it. For
precision/recall scoring, overlapping or adjacent matches of the same
query are merged into :class:`Detection` intervals ("video sequences
detected by the method", in the paper's wording).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Detection", "Match", "merge_matches"]


@dataclass(frozen=True)
class Match:
    """One threshold crossing of a candidate sequence.

    Attributes
    ----------
    qid:
        The matched query.
    window_index:
        Basic-window index at which the match was reported.
    start_frame, end_frame:
        Key-frame span of the matching candidate sequence (end exclusive).
    similarity:
        Estimated similarity at report time.
    """

    qid: int
    window_index: int
    start_frame: int
    end_frame: int
    similarity: float

    @property
    def position_frame(self) -> int:
        """The match position ``p`` (paper Section VI): the key-frame
        index where the match is reported, i.e. the candidate's end."""
        return self.end_frame


@dataclass(frozen=True)
class Detection:
    """A maximal run of merged matches for one query.

    Attributes
    ----------
    qid:
        The detected query.
    start_frame, end_frame:
        Union of the merged matches' spans (end exclusive).
    peak_similarity:
        Highest similarity among the merged matches.
    num_matches:
        How many raw match events were merged.
    """

    qid: int
    start_frame: int
    end_frame: int
    peak_similarity: float
    num_matches: int

    @property
    def position_frame(self) -> int:
        """Representative report position: the detection's end frame."""
        return self.end_frame


def merge_matches(
    matches: Sequence[Match], gap_frames: int = 0
) -> List[Detection]:
    """Merge per-query overlapping/adjacent matches into detections.

    Two matches of the same query merge when their frame spans overlap or
    sit within ``gap_frames`` of each other. The result is sorted by
    (qid, start_frame).
    """
    if gap_frames < 0:
        raise ValueError(f"gap_frames must be non-negative, got {gap_frames}")
    by_query: Dict[int, List[Match]] = {}
    for match in matches:
        by_query.setdefault(match.qid, []).append(match)

    detections: List[Detection] = []
    for qid in sorted(by_query):
        runs = sorted(by_query[qid], key=lambda m: (m.start_frame, m.end_frame))
        current_start = runs[0].start_frame
        current_end = runs[0].end_frame
        current_peak = runs[0].similarity
        current_count = 1
        for match in runs[1:]:
            if match.start_frame <= current_end + gap_frames:
                current_end = max(current_end, match.end_frame)
                current_peak = max(current_peak, match.similarity)
                current_count += 1
            else:
                detections.append(
                    Detection(qid, current_start, current_end, current_peak, current_count)
                )
                current_start = match.start_frame
                current_end = match.end_frame
                current_peak = match.similarity
                current_count = 1
        detections.append(
            Detection(qid, current_start, current_end, current_peak, current_count)
        )
    return detections
