"""Geometric combination order (Section IV-A, Figure 2).

Instead of every suffix, only O(log) candidates of dyadic lengths are
kept, as a binary-counter ladder of disjoint adjacent segments: an
arriving window enters as a size-1 segment and equal-sized neighbours
merge (carry propagation), so after ``i`` windows the ladder holds at most
``⌈log i⌉ + 1`` segments. The candidates actually *tested* each step are
the suffix accumulations of the ladder, newest-first — "the i-th basic
window first combines with candidate sequence 4, the result with 3, ..."
— which costs ``log(⌈λL/w⌉)`` combinations per window (the second branch
of Eq. (4)) at the price of skipped alignments, i.e. potential false
negatives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.columnar import column_remap
from repro.core.context import EvalContext, QueryColumns, WindowPayload
from repro.core.results import Match
from repro.minhash.sketch import Sketch
from repro.signature.bitsig import BitSignature, popcount_planes
from repro.signature.pruning import lemma2_prunable

__all__ = ["ColumnarGeometricEngine", "GeometricEngine"]


class _Segment:
    """One ladder segment: a combined run of ``size`` adjacent windows."""

    __slots__ = ("size", "start_frame", "end_frame", "sketch", "sigs", "relevant")

    def __init__(
        self,
        size: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
    ) -> None:
        self.size = size
        self.start_frame = start_frame
        self.end_frame = end_frame
        self.sketch = sketch
        self.sigs = sigs
        self.relevant = relevant


class GeometricEngine:
    """Maintains the dyadic segment ladder and scores suffix merges."""

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.segments: List[_Segment] = []

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in the ladder."""
        return sum(len(segment.sigs) for segment in self.segments)

    def purge_query(self, qid: int) -> None:
        """Drop one query's in-flight state (online unsubscribe)."""
        for segment in self.segments:
            segment.sigs.pop(qid, None)
            segment.relevant.discard(qid)

    def refresh(self) -> None:
        """Adopt the current query set (online subscribe).

        The scalar ladder keys per-query state by qid, so nothing needs
        to move; the columnar ladder overrides this to re-sync its
        column layout eagerly rather than on the next window.
        """

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into the ladder; return match events.

        Phase accounting: ladder maintenance (the window's own score,
        the carry merges) runs under the ``combine`` timer, λL expiry
        under ``prune``, and the suffix-accumulation scoring plus
        per-window stats sampling under ``match_emit``.
        """
        ctx = self.context
        window = payload.window
        matches: List[Match] = []

        with ctx.phase("combine"):
            # The basic window itself is always tested (the αC_comp term
            # of Eq. (4)) before it may be swallowed by a carry merge.
            self._score(
                num_windows=1,
                start_frame=window.start_frame,
                end_frame=window.end_frame,
                sketch=window.sketch,
                sigs=payload.sigs,
                relevant=payload.related,
                window_index=window.index,
                matches=matches,
            )

            self.segments.append(
                _Segment(
                    size=1,
                    start_frame=window.start_frame,
                    end_frame=window.end_frame,
                    sketch=window.sketch,
                    sigs=dict(payload.sigs),
                    relevant=set(payload.related),
                )
            )
            # Carry propagation: merge equal-sized neighbours.
            while (
                len(self.segments) >= 2
                and self.segments[-1].size == self.segments[-2].size
            ):
                newer = self.segments.pop()
                older = self.segments.pop()
                self.segments.append(self._merge(older, newer))

        with ctx.phase("prune"):
            # Expire the oldest segments once the ladder exceeds the λL
            # cap.
            total = sum(segment.size for segment in self.segments)
            while total > ctx.global_max_windows and len(self.segments) > 1:
                dropped = self.segments.pop(0)
                total -= dropped.size
                ctx.stats.expired_candidates += 1

        with ctx.phase("match_emit"):
            # Test the suffix accumulations, newest segment first. The
            # single-newest suffix is skipped when it is exactly the
            # window just scored above.
            suffix: Optional[_Segment] = None
            for segment in reversed(self.segments):
                if suffix is None:
                    suffix = _Segment(
                        size=segment.size,
                        start_frame=segment.start_frame,
                        end_frame=segment.end_frame,
                        sketch=segment.sketch,
                        sigs=dict(segment.sigs),
                        relevant=set(segment.relevant),
                    )
                    already_scored = segment.size == 1
                else:
                    suffix = self._merge(segment, suffix)
                    already_scored = False
                if not already_scored:
                    self._score(
                        num_windows=suffix.size,
                        start_frame=suffix.start_frame,
                        end_frame=suffix.end_frame,
                        sketch=suffix.sketch,
                        sigs=suffix.sigs,
                        relevant=suffix.relevant,
                        window_index=window.index,
                        matches=matches,
                    )

            ctx.stats.windows_processed += 1
            ctx.stats.signatures_maintained.add(self.resident_signatures)
            ctx.stats.candidates_maintained.add(len(self.segments))
            ctx.stats.matches_reported += len(matches)
        return matches

    # ------------------------------------------------------------------

    def _merge(self, older: _Segment, newer: _Segment) -> _Segment:
        """Combine two adjacent segments.

        Sketch mode merges the segment sketches (min, O(K)); bit mode is
        pure signature ORs — a query tracked by only one side is adopted
        from that side (its other side shared no min-hash value with the
        query; see the sequential engine's ``_extend_bit`` for the
        rationale).
        """
        ctx = self.context
        sigs: Dict[int, BitSignature] = {}
        if ctx.is_bit:
            sketch = newer.sketch
            for qid in older.sigs.keys() | newer.sigs.keys():
                older_sig = older.sigs.get(qid)
                newer_sig = newer.sigs.get(qid)
                if older_sig is not None and newer_sig is not None:
                    signature = ctx.or_signatures(older_sig, newer_sig)
                else:
                    signature = older_sig if older_sig is not None else newer_sig
                if ctx.prunable(signature):
                    ctx.registry.inc("engine.signature_prunes")
                    continue
                sigs[qid] = signature
        else:
            sketch = ctx.combine(older.sketch, newer.sketch)
        return _Segment(
            size=older.size + newer.size,
            start_frame=older.start_frame,
            end_frame=newer.end_frame,
            sketch=sketch,
            sigs=sigs,
            relevant=older.relevant | newer.relevant,
        )

    def _score(
        self,
        num_windows: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
        window_index: int,
        matches: List[Match],
    ) -> None:
        """Score one (possibly transient) candidate against its queries."""
        ctx = self.context
        if ctx.is_bit:
            for qid, signature in sigs.items():
                if not ctx.within_cap(qid, num_windows):
                    continue
                if signature.similarity >= ctx.config.threshold:
                    matches.append(
                        Match(
                            qid=qid,
                            window_index=window_index,
                            start_frame=start_frame,
                            end_frame=end_frame,
                            similarity=signature.similarity,
                        )
                    )
        else:
            for qid in relevant:
                if not ctx.within_cap(qid, num_windows):
                    continue
                similarity = ctx.similarity(sketch, qid)
                if similarity >= ctx.config.threshold:
                    matches.append(
                        Match(
                            qid=qid,
                            window_index=window_index,
                            start_frame=start_frame,
                            end_frame=end_frame,
                            similarity=similarity,
                        )
                    )


class _ColumnarSegment:
    """A ladder segment with its query state in columnar form.

    The structural fields (``size``, ``start_frame``, ``end_frame``)
    mirror :class:`_Segment` so ladder-shape invariants read identically;
    the per-query dict/set state becomes a ``(Q,)`` presence mask with
    ``(Q, W)`` packed signature planes (bit mode) and a ``(Q,)``
    relevance mask (sketch mode).
    """

    __slots__ = ("size", "start_frame", "end_frame", "sketch_values",
                 "presence", "ge", "lt", "relevant")

    def __init__(
        self,
        size: int,
        start_frame: int,
        end_frame: int,
        sketch_values: np.ndarray,
        presence: Optional[np.ndarray],
        ge: Optional[np.ndarray],
        lt: Optional[np.ndarray],
        relevant: Optional[np.ndarray],
    ) -> None:
        self.size = size
        self.start_frame = start_frame
        self.end_frame = end_frame
        self.sketch_values = sketch_values
        self.presence = presence
        self.ge = ge
        self.lt = lt
        self.relevant = relevant


class ColumnarGeometricEngine(GeometricEngine):
    """Geometric order with per-segment query state as packed arrays.

    The ladder itself stays a Python list — it holds only
    ``O(log(λL/w))`` segments — but every per-query loop (carry merges,
    suffix merges, scoring) becomes a bulk plane OR / popcount / masked
    compare over all ``Q`` queries at once, with counter accounting
    identical to :class:`GeometricEngine`.
    """

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.segments: List[_ColumnarSegment] = []
        self._qids: tuple = context.query_columns().qids

    def _sync_columns(self) -> QueryColumns:
        """Adopt the current query-column layout, remapping live state."""
        columns = self.context.query_columns()
        if self._qids == columns.qids:
            return columns
        old_idx, new_idx = column_remap(self._qids, columns.qids)
        num_queries = len(columns.qids)
        for segment in self.segments:
            if self.context.is_bit:
                width = segment.ge.shape[1]
                presence = np.zeros(num_queries, dtype=bool)
                ge = np.zeros((num_queries, width), dtype=np.uint64)
                lt = np.zeros((num_queries, width), dtype=np.uint64)
                presence[new_idx] = segment.presence[old_idx]
                ge[new_idx] = segment.ge[old_idx]
                lt[new_idx] = segment.lt[old_idx]
                segment.presence, segment.ge, segment.lt = presence, ge, lt
            else:
                relevant = np.zeros(num_queries, dtype=bool)
                relevant[new_idx] = segment.relevant[old_idx]
                segment.relevant = relevant
        self._qids = columns.qids
        return columns

    def purge_query(self, qid: int) -> None:
        """Drop one query's in-flight state (online unsubscribe)."""
        self._sync_columns()

    def refresh(self) -> None:
        """Adopt the current query set (online subscribe).

        Eager rather than lazy: a snapshot taken between a subscribe
        and the next window must already see the new column layout.
        """
        self._sync_columns()

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in the ladder."""
        if self.context.is_bit:
            return int(
                sum(np.count_nonzero(s.presence) for s in self.segments)
            )
        return 0

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into the ladder (columnar kernels).

        Same phase accounting as the reference engine; the bulk plane
        merges additionally run under the ``phase.combine.bitops`` /
        ``phase.combine.sketch`` sub-timers.
        """
        ctx = self.context
        columns = self._sync_columns()
        window = payload.window
        col = payload.col
        matches: List[Match] = []

        with ctx.phase("combine"):
            if ctx.is_bit:
                # Segment invariant: non-present plane rows are zero, so
                # merges adopt one-sided signatures with a plain OR. The
                # payload's planes may hold data for window-level-pruned
                # columns (the lazy-encode cache) — mask them out here.
                live = col.present[:, np.newaxis]
                zero = np.uint64(0)
                fresh_ge = np.where(live, col.ge, zero)
                fresh_lt = np.where(live, col.lt, zero)
            else:
                fresh_ge = fresh_lt = None
            fresh = _ColumnarSegment(
                size=1,
                start_frame=window.start_frame,
                end_frame=window.end_frame,
                sketch_values=window.sketch.values,
                presence=col.present if ctx.is_bit else None,
                ge=fresh_ge,
                lt=fresh_lt,
                relevant=None if ctx.is_bit else col.related_mask,
            )
            self._score_block(fresh, columns, window.index, matches)
            self.segments.append(fresh)
            while (
                len(self.segments) >= 2
                and self.segments[-1].size == self.segments[-2].size
            ):
                newer = self.segments.pop()
                older = self.segments.pop()
                self.segments.append(self._merge_block(older, newer, columns))

        with ctx.phase("prune"):
            total = sum(segment.size for segment in self.segments)
            dropped_count = 0
            while total > ctx.global_max_windows and len(self.segments) > 1:
                dropped = self.segments.pop(0)
                total -= dropped.size
                dropped_count += 1
            if dropped_count:
                ctx.registry.inc(
                    "engine.expired_candidates", dropped_count
                )

        with ctx.phase("match_emit"):
            suffix: Optional[_ColumnarSegment] = None
            for segment in reversed(self.segments):
                if suffix is None:
                    suffix = segment
                    already_scored = segment.size == 1
                else:
                    suffix = self._merge_block(segment, suffix, columns)
                    already_scored = False
                if not already_scored:
                    self._score_block(suffix, columns, window.index, matches)

            registry = ctx.registry
            registry.inc("engine.windows_processed")
            registry.observe(
                "engine.signatures_maintained", self.resident_signatures
            )
            registry.observe(
                "engine.candidates_maintained", len(self.segments)
            )
            registry.inc("engine.matches_reported", len(matches))
        return matches

    # ------------------------------------------------------------------

    def _merge_block(
        self,
        older: _ColumnarSegment,
        newer: _ColumnarSegment,
        columns: QueryColumns,
    ) -> _ColumnarSegment:
        """Combine two adjacent segments with bulk plane/sketch kernels.

        Counter parity with the reference ``_merge``: one
        ``signature_combines`` per both-sides pair, adoption is free, and
        Lemma 2 prunes the merged pairs in bulk (bit mode); one
        ``sketch_combines`` per merge (sketch mode).
        """
        ctx = self.context
        num_hashes = ctx.config.num_hashes
        if ctx.is_bit:
            combined = older.presence & newer.presence
            ctx.registry.inc(
                "engine.signature_combines", int(np.count_nonzero(combined))
            )
            with ctx.phase("combine.bitops"):
                # Non-present rows are zero (segment invariant), so the
                # plain OR simultaneously merges both-sides pairs and
                # adopts one-sided ones.
                present = older.presence | newer.presence
                ge = older.ge | newer.ge
                lt = older.lt | newer.lt
                if ctx.config.prune:
                    prunable = present & lemma2_prunable(
                        popcount_planes(lt), num_hashes, ctx.config.threshold
                    )
                    pruned = int(np.count_nonzero(prunable))
                    if pruned:
                        ctx.registry.inc("engine.signature_prunes", pruned)
                        present = present & ~prunable
                        live = present[:, np.newaxis]
                        zero = np.uint64(0)
                        ge = np.where(live, ge, zero)
                        lt = np.where(live, lt, zero)
            return _ColumnarSegment(
                size=older.size + newer.size,
                start_frame=older.start_frame,
                end_frame=newer.end_frame,
                sketch_values=newer.sketch_values,
                presence=present,
                ge=ge,
                lt=lt,
                relevant=None,
            )
        ctx.registry.inc("engine.sketch_combines")
        with ctx.phase("combine.sketch"):
            values = np.minimum(older.sketch_values, newer.sketch_values)
        return _ColumnarSegment(
            size=older.size + newer.size,
            start_frame=older.start_frame,
            end_frame=newer.end_frame,
            sketch_values=values,
            presence=None,
            ge=None,
            lt=None,
            relevant=older.relevant | newer.relevant,
        )

    def _score_block(
        self,
        segment: _ColumnarSegment,
        columns: QueryColumns,
        window_index: int,
        matches: List[Match],
    ) -> None:
        """Score one (possibly transient) segment against all queries."""
        ctx = self.context
        num_hashes = ctx.config.num_hashes
        cap = segment.size <= columns.max_windows
        if ctx.is_bit:
            n1 = popcount_planes(segment.lt)
            similarity = 1.0 - (
                (num_hashes - popcount_planes(segment.ge)) + n1
            ) / num_hashes
            emit = segment.presence & cap & (
                similarity >= ctx.config.threshold
            )
        else:
            active = segment.relevant & cap
            ctx.registry.inc(
                "engine.sketch_comparisons", int(np.count_nonzero(active))
            )
            equal = np.count_nonzero(
                segment.sketch_values[np.newaxis, :] == columns.matrix, axis=1
            )
            similarity = equal / num_hashes
            emit = active & (similarity >= ctx.config.threshold)
        qids = columns.qids
        for column in np.flatnonzero(emit).tolist():
            matches.append(
                Match(
                    qid=qids[column],
                    window_index=window_index,
                    start_frame=segment.start_frame,
                    end_frame=segment.end_frame,
                    similarity=float(similarity[column]),
                )
            )
