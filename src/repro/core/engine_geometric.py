"""Geometric combination order (Section IV-A, Figure 2).

Instead of every suffix, only O(log) candidates of dyadic lengths are
kept, as a binary-counter ladder of disjoint adjacent segments: an
arriving window enters as a size-1 segment and equal-sized neighbours
merge (carry propagation), so after ``i`` windows the ladder holds at most
``⌈log i⌉ + 1`` segments. The candidates actually *tested* each step are
the suffix accumulations of the ladder, newest-first — "the i-th basic
window first combines with candidate sequence 4, the result with 3, ..."
— which costs ``log(⌈λL/w⌉)`` combinations per window (the second branch
of Eq. (4)) at the price of skipped alignments, i.e. potential false
negatives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.context import EvalContext, WindowPayload
from repro.core.results import Match
from repro.minhash.sketch import Sketch
from repro.signature.bitsig import BitSignature

__all__ = ["GeometricEngine"]


class _Segment:
    """One ladder segment: a combined run of ``size`` adjacent windows."""

    __slots__ = ("size", "start_frame", "end_frame", "sketch", "sigs", "relevant")

    def __init__(
        self,
        size: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
    ) -> None:
        self.size = size
        self.start_frame = start_frame
        self.end_frame = end_frame
        self.sketch = sketch
        self.sigs = sigs
        self.relevant = relevant


class GeometricEngine:
    """Maintains the dyadic segment ladder and scores suffix merges."""

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.segments: List[_Segment] = []

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in the ladder."""
        return sum(len(segment.sigs) for segment in self.segments)

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into the ladder; return match events.

        Phase accounting: ladder maintenance (the window's own score,
        the carry merges) runs under the ``combine`` timer, λL expiry
        under ``prune``, and the suffix-accumulation scoring plus
        per-window stats sampling under ``match_emit``.
        """
        ctx = self.context
        window = payload.window
        matches: List[Match] = []

        with ctx.phase("combine"):
            # The basic window itself is always tested (the αC_comp term
            # of Eq. (4)) before it may be swallowed by a carry merge.
            self._score(
                num_windows=1,
                start_frame=window.start_frame,
                end_frame=window.end_frame,
                sketch=window.sketch,
                sigs=payload.sigs,
                relevant=payload.related,
                window_index=window.index,
                matches=matches,
            )

            self.segments.append(
                _Segment(
                    size=1,
                    start_frame=window.start_frame,
                    end_frame=window.end_frame,
                    sketch=window.sketch,
                    sigs=dict(payload.sigs),
                    relevant=set(payload.related),
                )
            )
            # Carry propagation: merge equal-sized neighbours.
            while (
                len(self.segments) >= 2
                and self.segments[-1].size == self.segments[-2].size
            ):
                newer = self.segments.pop()
                older = self.segments.pop()
                self.segments.append(self._merge(older, newer))

        with ctx.phase("prune"):
            # Expire the oldest segments once the ladder exceeds the λL
            # cap.
            total = sum(segment.size for segment in self.segments)
            while total > ctx.global_max_windows and len(self.segments) > 1:
                dropped = self.segments.pop(0)
                total -= dropped.size
                ctx.stats.expired_candidates += 1

        with ctx.phase("match_emit"):
            # Test the suffix accumulations, newest segment first. The
            # single-newest suffix is skipped when it is exactly the
            # window just scored above.
            suffix: Optional[_Segment] = None
            for segment in reversed(self.segments):
                if suffix is None:
                    suffix = _Segment(
                        size=segment.size,
                        start_frame=segment.start_frame,
                        end_frame=segment.end_frame,
                        sketch=segment.sketch,
                        sigs=dict(segment.sigs),
                        relevant=set(segment.relevant),
                    )
                    already_scored = segment.size == 1
                else:
                    suffix = self._merge(segment, suffix)
                    already_scored = False
                if not already_scored:
                    self._score(
                        num_windows=suffix.size,
                        start_frame=suffix.start_frame,
                        end_frame=suffix.end_frame,
                        sketch=suffix.sketch,
                        sigs=suffix.sigs,
                        relevant=suffix.relevant,
                        window_index=window.index,
                        matches=matches,
                    )

            ctx.stats.windows_processed += 1
            ctx.stats.signatures_maintained.add(self.resident_signatures)
            ctx.stats.candidates_maintained.add(len(self.segments))
            ctx.stats.matches_reported += len(matches)
        return matches

    # ------------------------------------------------------------------

    def _merge(self, older: _Segment, newer: _Segment) -> _Segment:
        """Combine two adjacent segments.

        Sketch mode merges the segment sketches (min, O(K)); bit mode is
        pure signature ORs — a query tracked by only one side is adopted
        from that side (its other side shared no min-hash value with the
        query; see the sequential engine's ``_extend_bit`` for the
        rationale).
        """
        ctx = self.context
        sigs: Dict[int, BitSignature] = {}
        if ctx.is_bit:
            sketch = newer.sketch
            for qid in older.sigs.keys() | newer.sigs.keys():
                older_sig = older.sigs.get(qid)
                newer_sig = newer.sigs.get(qid)
                if older_sig is not None and newer_sig is not None:
                    signature = ctx.or_signatures(older_sig, newer_sig)
                else:
                    signature = older_sig if older_sig is not None else newer_sig
                if ctx.prunable(signature):
                    ctx.registry.inc("engine.signature_prunes")
                    continue
                sigs[qid] = signature
        else:
            sketch = ctx.combine(older.sketch, newer.sketch)
        return _Segment(
            size=older.size + newer.size,
            start_frame=older.start_frame,
            end_frame=newer.end_frame,
            sketch=sketch,
            sigs=sigs,
            relevant=older.relevant | newer.relevant,
        )

    def _score(
        self,
        num_windows: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
        window_index: int,
        matches: List[Match],
    ) -> None:
        """Score one (possibly transient) candidate against its queries."""
        ctx = self.context
        if ctx.is_bit:
            for qid, signature in sigs.items():
                if not ctx.within_cap(qid, num_windows):
                    continue
                if signature.similarity >= ctx.config.threshold:
                    matches.append(
                        Match(
                            qid=qid,
                            window_index=window_index,
                            start_frame=start_frame,
                            end_frame=end_frame,
                            similarity=signature.similarity,
                        )
                    )
        else:
            for qid in relevant:
                if not ctx.within_cap(qid, num_windows):
                    continue
                similarity = ctx.similarity(sketch, qid)
                if similarity >= ctx.config.threshold:
                    matches.append(
                        Match(
                            qid=qid,
                            window_index=window_index,
                            start_frame=start_frame,
                            end_frame=end_frame,
                            similarity=similarity,
                        )
                    )
