"""Shared state and primitive operations of the two engine orders.

:class:`EvalContext` owns everything the Sequential and Geometric engines
both need: the query set, configuration-derived constants (window length
in frames, per-query candidate caps, the Lemma 2 bound), the optional
Hash-Query index, and the instrumented primitive operations — window
payload construction, sketch similarity, lazy bit-signature encoding.
Routing every primitive through this class is what makes the engines'
cost profiles measurable (see :class:`~repro.core.monitor.EngineStats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.config import DetectorConfig, Representation
from repro.core.monitor import EngineStats
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.index.hq import HashQueryIndex
from repro.index.probe import probe_index
from repro.obs.registry import MetricsRegistry
from repro.minhash.sketch import Sketch
from repro.minhash.windows import BasicWindow
from repro.signature.bitsig import (
    BitSignature,
    encode_planes,
    pack_bool_planes,
    plane_words,
    popcount_planes,
    signature_from_planes,
)
from repro.signature.pruning import lemma2_prunable, violates_lemma2

__all__ = ["ColumnarPayload", "EvalContext", "QueryColumns", "WindowPayload"]


@dataclass(frozen=True)
class QueryColumns:
    """The active query set in columnar form, cached on the context.

    One column per subscribed query, in sorted-qid order. Rebuilt (and
    re-cached) whenever the query set changes; the columnar engines remap
    their stores against the new layout on their next window.
    """

    qids: Tuple[int, ...]
    matrix: np.ndarray  #: ``(Q, K)`` int64 query sketch values
    max_windows: np.ndarray  #: ``(Q,)`` int64 per-query λL caps


@dataclass
class ColumnarPayload:
    """Packed per-query artefacts of one window (columnar engines).

    ``ge``/``lt`` rows are the packed window-vs-query signature planes;
    which rows hold valid data is tracked by ``encoded``. ``present``
    marks the columns whose window signature survived payload-level
    Lemma 2 (the columnar analogue of ``WindowPayload.sigs``), and
    ``lazy_charged`` tracks which columns have already paid the
    one-per-(window, query) lazy ``signature_encodes`` accounting of the
    scalar path's memoised :meth:`EvalContext.window_signature`.
    """

    related_mask: np.ndarray  #: ``(Q,)`` bool — relevance (sketch scoring)
    present: Optional[np.ndarray] = None  #: ``(Q,)`` bool — live window sigs
    ge: Optional[np.ndarray] = None  #: ``(Q, W)`` uint64
    lt: Optional[np.ndarray] = None  #: ``(Q, W)`` uint64
    encoded: Optional[np.ndarray] = None  #: ``(Q,)`` bool — rows computed
    lazy_charged: Optional[np.ndarray] = None  #: ``(Q,)`` bool — counted


@dataclass
class WindowPayload:
    """A basic window plus its per-query comparison artefacts.

    Attributes
    ----------
    window:
        The sketched basic window.
    sigs:
        Bit mode: window-vs-query signatures, keyed by qid. Only the
        *related* queries appear (all queries when no index is used, the
        probe's ``R_L`` when it is).
    related:
        The qids relevant to this window (equals ``sigs.keys()`` in bit
        mode; in sketch mode it is the probe result or all queries).
    lazy_sigs:
        Memo for window-vs-query signatures computed on demand for
        queries outside ``sigs`` (candidates that track a query this
        window is not related to still need the window's relation bits).
        Shared by every candidate extended with this window.
    """

    window: BasicWindow
    sigs: Dict[int, BitSignature] = field(default_factory=dict)
    related: Set[int] = field(default_factory=set)
    lazy_sigs: Dict[int, BitSignature] = field(default_factory=dict)
    col: Optional[ColumnarPayload] = None


class EvalContext:
    """Configuration-resolved engine state and instrumented primitives."""

    def __init__(
        self,
        config: DetectorConfig,
        queries: QuerySet,
        window_frames: int,
        index: Optional[HashQueryIndex] = None,
        registry: Optional[MetricsRegistry] = None,
        cap_hint: int = 0,
    ) -> None:
        if window_frames <= 0:
            raise DetectionError(
                f"window_frames must be positive, got {window_frames}"
            )
        if config.use_index and index is None:
            raise DetectionError("config requests an index but none was supplied")
        self.config = config
        self.queries = queries
        self.window_frames = window_frames
        self.index = index if config.use_index else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = EngineStats(registry=self.registry)
        self.max_windows: Dict[int, int] = queries.max_windows_map(
            window_frames, config.tempo_scale
        )
        self.cap_hint = int(cap_hint)
        self.global_max_windows = max(
            max(self.max_windows.values()), self.cap_hint
        )
        self.all_qids: Set[int] = set(queries.query_ids)
        self.vectorized = bool(config.vectorized)
        self._query_columns_cache: Optional[QueryColumns] = None

    def refresh_queries(self) -> None:
        """Recompute query-derived state after subscribe/unsubscribe."""
        self.max_windows = self.queries.max_windows_map(
            self.window_frames, self.config.tempo_scale
        )
        self.global_max_windows = max(
            max(self.max_windows.values()), self.cap_hint
        )
        self.all_qids = set(self.queries.query_ids)
        self._query_columns_cache = None

    def set_cap_hint(self, cap_hint: int) -> None:
        """Floor the candidate-expiry horizon at ``cap_hint`` windows.

        A query-sharded deployment (``repro.serve``) feeds each shard
        only a subset of the queries, yet candidate expiry must follow
        the *global* ``max(ceil(λL/w))`` so every shard's candidate
        lifecycle — and with it the expiry/combine/prune counters — stays
        identical to the single-process detector. The hint never lowers
        the bound below the shard's own queries' needs.
        """
        self.cap_hint = int(cap_hint)
        self.global_max_windows = max(
            max(self.max_windows.values()), self.cap_hint
        )

    def query_columns(self) -> QueryColumns:
        """The columnar view of the active query set (cached)."""
        if self._query_columns_cache is None:
            qids = tuple(self.queries.query_ids)
            matrix = np.stack(
                [self.queries.get(qid).sketch.values for qid in qids]
            )
            caps = np.array(
                [self.max_windows[qid] for qid in qids], dtype=np.int64
            )
            self._query_columns_cache = QueryColumns(
                qids=qids, matrix=matrix, max_windows=caps
            )
        return self._query_columns_cache

    def _query_matrix(self) -> tuple:
        """``(qids, (m, K) value matrix)`` for batched window encoding."""
        columns = self.query_columns()
        return (list(columns.qids), columns.matrix)

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------

    def phase(self, name: str):
        """Accumulating wall-clock timer for pipeline phase ``name``.

        A thin delegate to the shared registry so engines write
        ``with ctx.phase("combine"): ...``; canonical phase names are
        ``sketch``, ``probe``, ``combine``, ``prune`` and ``match_emit``
        (see ``docs/observability.md``).
        """
        return self.registry.phase(f"phase.{name}")

    # ------------------------------------------------------------------
    # derived predicates
    # ------------------------------------------------------------------

    @property
    def is_bit(self) -> bool:
        """Whether the bit-signature representation is active."""
        return self.config.representation is Representation.BIT

    def within_cap(self, qid: int, num_windows: int) -> bool:
        """Whether a candidate of ``num_windows`` windows may still match
        query ``qid`` (the per-query λL bound)."""
        return num_windows <= self.max_windows[qid]

    def prunable(self, signature: BitSignature) -> bool:
        """Lemma 2 check, honouring the config's ``prune`` switch."""
        return self.config.prune and violates_lemma2(
            signature, self.config.threshold
        )

    # ------------------------------------------------------------------
    # instrumented primitives
    # ------------------------------------------------------------------

    def similarity(self, sketch: Sketch, qid: int) -> float:
        """Sketch-vs-query similarity (one ``C_comp`` of Eq. (4))."""
        self.registry.inc("engine.sketch_comparisons")
        return sketch.similarity(self.queries.get(qid).sketch)

    def combine(self, left: Sketch, right: Sketch) -> Sketch:
        """Sketch combination (one ``C_comb`` of Eq. (4))."""
        self.registry.inc("engine.sketch_combines")
        return left.combine(right)

    def encode_signature(self, sketch: Sketch, qid: int) -> BitSignature:
        """Encode a bit signature from a sketch pair (O(K) operation)."""
        self.registry.inc("engine.signature_encodes")
        return BitSignature.encode(sketch, self.queries.get(qid).sketch)

    def or_signatures(self, left: BitSignature, right: BitSignature) -> BitSignature:
        """Bitwise-OR signature combination (the cheap bit operation)."""
        self.registry.inc("engine.signature_combines")
        return left.combine(right)

    def window_signature(self, payload: WindowPayload, qid: int) -> BitSignature:
        """Window-vs-query signature, memoised on the payload.

        Candidates tracking a query the window is not related to all need
        the same relation bits; the encode is performed once per
        (window, query) pair.
        """
        signature = payload.sigs.get(qid)
        if signature is not None:
            return signature
        signature = payload.lazy_sigs.get(qid)
        if signature is None:
            signature = self.encode_signature(payload.window.sketch, qid)
            payload.lazy_sigs[qid] = signature
        return signature

    # ------------------------------------------------------------------
    # window payload construction
    # ------------------------------------------------------------------

    def window_payload(
        self,
        window: BasicWindow,
        planes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> WindowPayload:
        """Compare an arriving basic window against the query population.

        With the index, a single probe yields the related queries and (in
        bit mode) their signatures; without it, every query is compared.
        Runs under the ``probe`` phase timer either way (payload
        construction is the probe stage of the pipeline).

        ``planes`` optionally carries precomputed ``(ge, lt)`` packed
        plane arrays of shape ``(Q, W)`` in sorted-qid column order (the
        sketch-once serving front end). The no-index bit paths substitute
        them for the window encode — with accounting identical to the
        self-encoding reference, since the encode *was* performed, just
        once upstream instead of once per shard. The index path ignores
        them (the probe, not a full encode, is its accounted operation),
        as does the sketch representation.
        """
        with self.phase("probe"):
            return self._window_payload(window, planes)

    def _window_payload(
        self,
        window: BasicWindow,
        planes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> WindowPayload:
        if self.vectorized:
            return self._window_payload_columnar(window, planes)
        return self._window_payload_scalar(window, planes)

    def _window_payload_scalar(
        self,
        window: BasicWindow,
        planes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> WindowPayload:
        if self.index is not None:
            self.registry.inc("engine.index_probes")
            related_list = probe_index(
                window.sketch,
                self.index,
                self.config.threshold,
                prune=self.config.prune and self.is_bit,
            )
            if self.is_bit:
                sigs = {
                    element.qid: element.signature(self.config.num_hashes)
                    for element in related_list
                }
                return WindowPayload(
                    window=window, sigs=sigs, related=set(sigs)
                )
            return WindowPayload(
                window=window,
                related={element.qid for element in related_list},
            )

        if self.is_bit:
            qids, matrix = self._query_matrix()
            sigs: Dict[int, BitSignature] = {}
            if planes is not None:
                # Precomputed planes (sketch-once front end): the packed
                # rows already hold the window-vs-query bits in the same
                # little-endian layout the local encode would produce, so
                # the signatures — and the charge per query — are the
                # reference path's, bit for bit.
                ge_rows, lt_rows = planes
                self.registry.inc("engine.signature_encodes", len(qids))
                for row, qid in enumerate(qids):
                    signature = signature_from_planes(
                        ge_rows[row], lt_rows[row], self.config.num_hashes
                    )
                    if self.prunable(signature):
                        self.registry.inc("engine.signature_prunes")
                        continue
                    sigs[qid] = signature
                return WindowPayload(
                    window=window, sigs=sigs, related=set(sigs)
                )
            # Batched encode: compare the window's K values against the
            # (m, K) query matrix in one shot and pack both planes row-wise.
            values = window.sketch.values
            ge_planes = np.packbits(
                values[np.newaxis, :] <= matrix, axis=1, bitorder="little"
            )
            lt_planes = np.packbits(
                values[np.newaxis, :] < matrix, axis=1, bitorder="little"
            )
            self.registry.inc("engine.signature_encodes", len(qids))
            for row, qid in enumerate(qids):
                signature = BitSignature._raw(
                    int.from_bytes(ge_planes[row].tobytes(), "little"),
                    int.from_bytes(lt_planes[row].tobytes(), "little"),
                    self.config.num_hashes,
                )
                if self.prunable(signature):
                    self.registry.inc("engine.signature_prunes")
                    continue
                sigs[qid] = signature
            return WindowPayload(window=window, sigs=sigs, related=set(sigs))

        return WindowPayload(window=window, related=set(self.all_qids))

    # ------------------------------------------------------------------
    # columnar window payloads (the vectorized engines' input)
    # ------------------------------------------------------------------

    def _window_payload_columnar(
        self,
        window: BasicWindow,
        planes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> WindowPayload:
        """Packed-plane payload with the scalar path's exact accounting.

        Counter parity with :meth:`_window_payload_scalar` is load-bearing
        (the golden-equivalence suite asserts it): the no-index bit path
        charges one ``signature_encodes`` per subscribed query and one
        ``signature_prunes`` per window-level Lemma 2 casualty; the index
        path charges only the probe.
        """
        columns = self.query_columns()
        num_queries = len(columns.qids)
        width = plane_words(self.config.num_hashes)

        if self.index is not None:
            self.registry.inc("engine.index_probes")
            related_list = probe_index(
                window.sketch,
                self.index,
                self.config.threshold,
                prune=self.config.prune and self.is_bit,
            )
            related_mask = np.zeros(num_queries, dtype=bool)
            column_of = {qid: i for i, qid in enumerate(columns.qids)}
            if not self.is_bit:
                for element in related_list:
                    related_mask[column_of[element.qid]] = True
                return WindowPayload(
                    window=window,
                    related={element.qid for element in related_list},
                    col=ColumnarPayload(related_mask=related_mask),
                )
            ge = np.zeros((num_queries, width), dtype=np.uint64)
            lt = np.zeros((num_queries, width), dtype=np.uint64)
            byte_width = width * 8
            for element in related_list:
                row = column_of[element.qid]
                related_mask[row] = True
                ge[row] = np.frombuffer(
                    element.ge.to_bytes(byte_width, "little"), dtype="<u8"
                )
                lt[row] = np.frombuffer(
                    element.lt.to_bytes(byte_width, "little"), dtype="<u8"
                )
            return WindowPayload(
                window=window,
                related={element.qid for element in related_list},
                col=ColumnarPayload(
                    related_mask=related_mask,
                    present=related_mask.copy(),
                    ge=ge,
                    lt=lt,
                    encoded=related_mask.copy(),
                    lazy_charged=np.zeros(num_queries, dtype=bool),
                ),
            )

        if self.is_bit:
            if planes is not None:
                # Sketch-once front end: rows arrive pre-encoded (and
                # already copied per shard), identical bits to the local
                # encode below. Same per-query accounting either way.
                ge, lt = planes
            else:
                ge, lt = encode_planes(window.sketch.values, columns.matrix)
            self.registry.inc("engine.signature_encodes", num_queries)
            if self.config.prune:
                prunable = lemma2_prunable(
                    popcount_planes(lt),
                    self.config.num_hashes,
                    self.config.threshold,
                )
                pruned = int(np.count_nonzero(prunable))
                if pruned:
                    self.registry.inc("engine.signature_prunes", pruned)
                present = ~prunable
            else:
                present = np.ones(num_queries, dtype=bool)
            return WindowPayload(
                window=window,
                related={
                    qid
                    for qid, live in zip(columns.qids, present.tolist())
                    if live
                },
                col=ColumnarPayload(
                    related_mask=present.copy(),
                    present=present,
                    ge=ge,
                    lt=lt,
                    encoded=np.ones(num_queries, dtype=bool),
                    lazy_charged=np.zeros(num_queries, dtype=bool),
                ),
            )

        return WindowPayload(
            window=window,
            related=set(self.all_qids),
            col=ColumnarPayload(
                related_mask=np.ones(num_queries, dtype=bool)
            ),
        )

    def window_planes(
        self, payload: WindowPayload, needed: np.ndarray
    ) -> ColumnarPayload:
        """Ensure window-vs-query planes exist for the ``needed`` columns.

        The packed analogue of :meth:`window_signature`: columns outside
        the payload's ``present`` set that a candidate still tracks need
        the window's relation bits. Each such column is charged one
        ``signature_encodes`` on first use per window — exactly the
        scalar path's per-(window, query) memoised encode — even when the
        planes themselves were precomputed at payload construction.
        """
        col = payload.col
        to_charge = needed & ~col.present & ~col.lazy_charged
        charges = int(np.count_nonzero(to_charge))
        if charges:
            self.registry.inc("engine.signature_encodes", charges)
            col.lazy_charged |= to_charge
        to_compute = needed & ~col.encoded
        if to_compute.any():
            columns = self.query_columns()
            values = payload.window.sketch.values
            rows = np.flatnonzero(to_compute)
            submatrix = columns.matrix[rows]
            col.ge[rows] = pack_bool_planes(
                values[np.newaxis, :] <= submatrix
            )
            col.lt[rows] = pack_bool_planes(values[np.newaxis, :] < submatrix)
            col.encoded[to_compute] = True
        return col
