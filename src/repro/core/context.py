"""Shared state and primitive operations of the two engine orders.

:class:`EvalContext` owns everything the Sequential and Geometric engines
both need: the query set, configuration-derived constants (window length
in frames, per-query candidate caps, the Lemma 2 bound), the optional
Hash-Query index, and the instrumented primitive operations — window
payload construction, sketch similarity, lazy bit-signature encoding.
Routing every primitive through this class is what makes the engines'
cost profiles measurable (see :class:`~repro.core.monitor.EngineStats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.config import DetectorConfig, Representation
from repro.core.monitor import EngineStats
from repro.core.query import QuerySet
from repro.errors import DetectionError
from repro.index.hq import HashQueryIndex
from repro.index.probe import probe_index
from repro.obs.registry import MetricsRegistry
from repro.minhash.sketch import Sketch
from repro.minhash.windows import BasicWindow
from repro.signature.bitsig import BitSignature
from repro.signature.pruning import violates_lemma2

__all__ = ["EvalContext", "WindowPayload"]


@dataclass
class WindowPayload:
    """A basic window plus its per-query comparison artefacts.

    Attributes
    ----------
    window:
        The sketched basic window.
    sigs:
        Bit mode: window-vs-query signatures, keyed by qid. Only the
        *related* queries appear (all queries when no index is used, the
        probe's ``R_L`` when it is).
    related:
        The qids relevant to this window (equals ``sigs.keys()`` in bit
        mode; in sketch mode it is the probe result or all queries).
    lazy_sigs:
        Memo for window-vs-query signatures computed on demand for
        queries outside ``sigs`` (candidates that track a query this
        window is not related to still need the window's relation bits).
        Shared by every candidate extended with this window.
    """

    window: BasicWindow
    sigs: Dict[int, BitSignature] = field(default_factory=dict)
    related: Set[int] = field(default_factory=set)
    lazy_sigs: Dict[int, BitSignature] = field(default_factory=dict)


class EvalContext:
    """Configuration-resolved engine state and instrumented primitives."""

    def __init__(
        self,
        config: DetectorConfig,
        queries: QuerySet,
        window_frames: int,
        index: Optional[HashQueryIndex] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window_frames <= 0:
            raise DetectionError(
                f"window_frames must be positive, got {window_frames}"
            )
        if config.use_index and index is None:
            raise DetectionError("config requests an index but none was supplied")
        self.config = config
        self.queries = queries
        self.window_frames = window_frames
        self.index = index if config.use_index else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = EngineStats(registry=self.registry)
        self.max_windows: Dict[int, int] = queries.max_windows_map(
            window_frames, config.tempo_scale
        )
        self.global_max_windows = max(self.max_windows.values())
        self.all_qids: Set[int] = set(queries.query_ids)
        self._query_matrix_cache: Optional[tuple] = None

    def refresh_queries(self) -> None:
        """Recompute query-derived state after subscribe/unsubscribe."""
        self.max_windows = self.queries.max_windows_map(
            self.window_frames, self.config.tempo_scale
        )
        self.global_max_windows = max(self.max_windows.values())
        self.all_qids = set(self.queries.query_ids)
        self._query_matrix_cache = None

    def _query_matrix(self) -> tuple:
        """``(qids, (m, K) value matrix)`` for batched window encoding."""
        if self._query_matrix_cache is None:
            qids = self.queries.query_ids
            matrix = np.stack(
                [self.queries.get(qid).sketch.values for qid in qids]
            )
            self._query_matrix_cache = (qids, matrix)
        return self._query_matrix_cache

    # ------------------------------------------------------------------
    # phase timing
    # ------------------------------------------------------------------

    def phase(self, name: str):
        """Accumulating wall-clock timer for pipeline phase ``name``.

        A thin delegate to the shared registry so engines write
        ``with ctx.phase("combine"): ...``; canonical phase names are
        ``sketch``, ``probe``, ``combine``, ``prune`` and ``match_emit``
        (see ``docs/observability.md``).
        """
        return self.registry.phase(f"phase.{name}")

    # ------------------------------------------------------------------
    # derived predicates
    # ------------------------------------------------------------------

    @property
    def is_bit(self) -> bool:
        """Whether the bit-signature representation is active."""
        return self.config.representation is Representation.BIT

    def within_cap(self, qid: int, num_windows: int) -> bool:
        """Whether a candidate of ``num_windows`` windows may still match
        query ``qid`` (the per-query λL bound)."""
        return num_windows <= self.max_windows[qid]

    def prunable(self, signature: BitSignature) -> bool:
        """Lemma 2 check, honouring the config's ``prune`` switch."""
        return self.config.prune and violates_lemma2(
            signature, self.config.threshold
        )

    # ------------------------------------------------------------------
    # instrumented primitives
    # ------------------------------------------------------------------

    def similarity(self, sketch: Sketch, qid: int) -> float:
        """Sketch-vs-query similarity (one ``C_comp`` of Eq. (4))."""
        self.registry.inc("engine.sketch_comparisons")
        return sketch.similarity(self.queries.get(qid).sketch)

    def combine(self, left: Sketch, right: Sketch) -> Sketch:
        """Sketch combination (one ``C_comb`` of Eq. (4))."""
        self.registry.inc("engine.sketch_combines")
        return left.combine(right)

    def encode_signature(self, sketch: Sketch, qid: int) -> BitSignature:
        """Encode a bit signature from a sketch pair (O(K) operation)."""
        self.registry.inc("engine.signature_encodes")
        return BitSignature.encode(sketch, self.queries.get(qid).sketch)

    def or_signatures(self, left: BitSignature, right: BitSignature) -> BitSignature:
        """Bitwise-OR signature combination (the cheap bit operation)."""
        self.registry.inc("engine.signature_combines")
        return left.combine(right)

    def window_signature(self, payload: WindowPayload, qid: int) -> BitSignature:
        """Window-vs-query signature, memoised on the payload.

        Candidates tracking a query the window is not related to all need
        the same relation bits; the encode is performed once per
        (window, query) pair.
        """
        signature = payload.sigs.get(qid)
        if signature is not None:
            return signature
        signature = payload.lazy_sigs.get(qid)
        if signature is None:
            signature = self.encode_signature(payload.window.sketch, qid)
            payload.lazy_sigs[qid] = signature
        return signature

    # ------------------------------------------------------------------
    # window payload construction
    # ------------------------------------------------------------------

    def window_payload(self, window: BasicWindow) -> WindowPayload:
        """Compare an arriving basic window against the query population.

        With the index, a single probe yields the related queries and (in
        bit mode) their signatures; without it, every query is compared.
        Runs under the ``probe`` phase timer either way (payload
        construction is the probe stage of the pipeline).
        """
        with self.phase("probe"):
            return self._window_payload(window)

    def _window_payload(self, window: BasicWindow) -> WindowPayload:
        if self.index is not None:
            self.registry.inc("engine.index_probes")
            related_list = probe_index(
                window.sketch,
                self.index,
                self.config.threshold,
                prune=self.config.prune and self.is_bit,
            )
            if self.is_bit:
                sigs = {
                    element.qid: element.signature(self.config.num_hashes)
                    for element in related_list
                }
                return WindowPayload(
                    window=window, sigs=sigs, related=set(sigs)
                )
            return WindowPayload(
                window=window,
                related={element.qid for element in related_list},
            )

        if self.is_bit:
            # Batched encode: compare the window's K values against the
            # (m, K) query matrix in one shot and pack both planes row-wise.
            qids, matrix = self._query_matrix()
            values = window.sketch.values
            ge_planes = np.packbits(
                values[np.newaxis, :] <= matrix, axis=1, bitorder="little"
            )
            lt_planes = np.packbits(
                values[np.newaxis, :] < matrix, axis=1, bitorder="little"
            )
            self.registry.inc("engine.signature_encodes", len(qids))
            sigs: Dict[int, BitSignature] = {}
            for row, qid in enumerate(qids):
                signature = BitSignature._raw(
                    int.from_bytes(ge_planes[row].tobytes(), "little"),
                    int.from_bytes(lt_planes[row].tobytes(), "little"),
                    self.config.num_hashes,
                )
                if self.prunable(signature):
                    self.registry.inc("engine.signature_prunes")
                    continue
                sigs[qid] = signature
            return WindowPayload(window=window, sigs=sigs, related=set(sigs))

        return WindowPayload(window=window, related=set(self.all_qids))
