"""Engine instrumentation.

The paper's efficiency results measure (a) CPU time per stream, (b) the
average number of bit signatures maintained in ``C_L`` (the memory metric
of Figure 10, each signature being 2K bits) and, implicitly via Eq. (4),
the counts of sketch comparisons and combinations. :class:`EngineStats`
tracks all of these so benchmarks can report both wall-clock and the cost
model's primitive counts.

Since the observability refactor, :class:`EngineStats` no longer stores
its counters itself: it is a *typed view* over a
:class:`~repro.obs.registry.MetricsRegistry`. Every attribute read and
write goes straight to the registry's named metric (see
``docs/observability.md`` for the name map), so the engines keep their
``stats.sketch_combines += 1`` idiom while the CLI and benchmarks export
the very same numbers through the registry's JSON snapshot. The public
field names, defaults and behaviours of the former dataclass are
preserved.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["EngineStats"]


class EngineStats:
    """Counters and distributions accumulated over one stream run.

    A fresh instance creates (and owns) a private
    :class:`~repro.obs.registry.MetricsRegistry`; the detector stack
    instead binds the view to its shared per-stream registry. Two
    instances never share state unless constructed over the same
    registry.

    Attributes
    ----------
    windows_processed:
        Number of basic windows consumed.
    frames_processed:
        Exact number of key frames consumed, including partial tail
        windows (the stream clock; never derived from
        ``windows_processed``).
    partial_windows:
        Number of windows shorter than the configured ``w`` (at most one
        per stream under the aligned-push contract).
    windows_skipped:
        Basic windows sacrificed to decode-side gaps: the stream clock
        advanced over them (via
        :meth:`~repro.core.detector.StreamingDetector.acknowledge_gap`)
        but no cell ids were ever sketched for them.
    frames_skipped:
        Key frames lost to decode-side gaps, counting both frames that
        never decoded and intact frames dropped because their basic
        window overlapped a gap.
    sketch_comparisons:
        Full O(K) sketch-vs-sketch similarity evaluations (the
        ``C_comp`` of Eq. (4); in bit mode these only occur as lazy
        signature encodes for late-arriving related queries).
    sketch_combines:
        O(K) coordinate-wise min merges (the ``C_comb`` of Eq. (4)).
    signature_encodes:
        Bit-signature constructions from a sketch pair (each one also an
        O(K) operation; counted separately from pure bit ops).
    signature_combines:
        Bitwise-OR signature merges (word-parallel, the cheap operation
        the Bit method substitutes for sketch work).
    signature_prunes:
        (candidate, query) signatures discarded by Lemma 2.
    expired_candidates:
        Candidates removed for exceeding the λL length bound.
    index_probes:
        Hash-Query index probes performed.
    matches_reported:
        Raw match events emitted (before deduplication into detections).
    signatures_maintained:
        Distribution of the number of bit signatures resident in ``C_L``,
        sampled after every window (Figure 10's metric).
    candidates_maintained:
        Distribution of the candidate-list length, sampled per window.
    """

    #: attribute name -> registry counter name
    COUNTER_METRICS = {
        "windows_processed": "engine.windows_processed",
        "frames_processed": "stream.frames_processed",
        "partial_windows": "stream.partial_windows",
        "windows_skipped": "stream.windows_skipped",
        "frames_skipped": "stream.frames_skipped",
        "sketch_comparisons": "engine.sketch_comparisons",
        "sketch_combines": "engine.sketch_combines",
        "signature_encodes": "engine.signature_encodes",
        "signature_combines": "engine.signature_combines",
        "signature_prunes": "engine.signature_prunes",
        "expired_candidates": "engine.expired_candidates",
        "index_probes": "engine.index_probes",
        "matches_reported": "engine.matches_reported",
    }

    #: attribute name -> registry distribution name
    DISTRIBUTION_METRICS = {
        "signatures_maintained": "engine.signatures_maintained",
        "candidates_maintained": "engine.candidates_maintained",
    }

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, **initial: int
    ) -> None:
        # The view's registry binding must bypass the counter-routing
        # __setattr__ below.
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        # Pre-declare every metric of the view so snapshots always carry
        # the full EngineStats counter set, zeros included.
        for metric in self.COUNTER_METRICS.values():
            self.registry.inc(metric, 0)
        for metric in self.DISTRIBUTION_METRICS.values():
            self.registry.distribution(metric)
        for name, value in initial.items():
            if name not in self.COUNTER_METRICS:
                raise TypeError(f"EngineStats has no counter field {name!r}")
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # registry-routed attribute access
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Only called for names not found normally (registry is set via
        # object.__setattr__, properties live on the class).
        metric = self.COUNTER_METRICS.get(name)
        if metric is not None:
            return self.registry.counter(metric)
        metric = self.DISTRIBUTION_METRICS.get(name)
        if metric is not None:
            return self.registry.distribution(metric)
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        metric = self.COUNTER_METRICS.get(name)
        if metric is None:
            raise AttributeError(
                f"EngineStats field {name!r} is not an assignable counter"
            )
        self.registry.set_counter(metric, value)

    # ------------------------------------------------------------------
    # derived quantities (unchanged public API)
    # ------------------------------------------------------------------

    @property
    def avg_signatures(self) -> float:
        """Average resident bit signatures — the Figure 10 y-axis."""
        return self.signatures_maintained.mean

    @property
    def avg_candidates(self) -> float:
        """Average candidate-list length."""
        return self.candidates_maintained.mean

    def signature_memory_bytes(self, num_hashes: int) -> float:
        """Average signature memory at 2K bits per signature (paper's
        accounting)."""
        return self.avg_signatures * (2 * num_hashes) / 8.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"windows={self.windows_processed} "
            f"comparisons={self.sketch_comparisons} "
            f"combines={self.sketch_combines} "
            f"encodes={self.signature_encodes} "
            f"bit_ors={self.signature_combines} "
            f"prunes={self.signature_prunes} "
            f"avg_sigs={self.avg_signatures:.1f} "
            f"matches={self.matches_reported}"
        )

    def __repr__(self) -> str:
        counters = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.COUNTER_METRICS
        )
        return f"EngineStats({counters})"
