"""Engine instrumentation.

The paper's efficiency results measure (a) CPU time per stream, (b) the
average number of bit signatures maintained in ``C_L`` (the memory metric
of Figure 10, each signature being 2K bits) and, implicitly via Eq. (4),
the counts of sketch comparisons and combinations. :class:`EngineStats`
tracks all of these so benchmarks can report both wall-clock and the cost
model's primitive counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import RunningStats

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters and distributions accumulated over one stream run.

    Attributes
    ----------
    windows_processed:
        Number of basic windows consumed.
    sketch_comparisons:
        Full O(K) sketch-vs-sketch similarity evaluations (the
        ``C_comp`` of Eq. (4); in bit mode these only occur as lazy
        signature encodes for late-arriving related queries).
    sketch_combines:
        O(K) coordinate-wise min merges (the ``C_comb`` of Eq. (4)).
    signature_encodes:
        Bit-signature constructions from a sketch pair (each one also an
        O(K) operation; counted separately from pure bit ops).
    signature_combines:
        Bitwise-OR signature merges (word-parallel, the cheap operation
        the Bit method substitutes for sketch work).
    signature_prunes:
        (candidate, query) signatures discarded by Lemma 2.
    expired_candidates:
        Candidates removed for exceeding the λL length bound.
    index_probes:
        Hash-Query index probes performed.
    matches_reported:
        Raw match events emitted (before deduplication into detections).
    signatures_maintained:
        Distribution of the number of bit signatures resident in ``C_L``,
        sampled after every window (Figure 10's metric).
    candidates_maintained:
        Distribution of the candidate-list length, sampled per window.
    """

    windows_processed: int = 0
    sketch_comparisons: int = 0
    sketch_combines: int = 0
    signature_encodes: int = 0
    signature_combines: int = 0
    signature_prunes: int = 0
    expired_candidates: int = 0
    index_probes: int = 0
    matches_reported: int = 0
    signatures_maintained: RunningStats = field(default_factory=RunningStats)
    candidates_maintained: RunningStats = field(default_factory=RunningStats)

    @property
    def avg_signatures(self) -> float:
        """Average resident bit signatures — the Figure 10 y-axis."""
        return self.signatures_maintained.mean

    @property
    def avg_candidates(self) -> float:
        """Average candidate-list length."""
        return self.candidates_maintained.mean

    def signature_memory_bytes(self, num_hashes: int) -> float:
        """Average signature memory at 2K bits per signature (paper's
        accounting)."""
        return self.avg_signatures * (2 * num_hashes) / 8.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"windows={self.windows_processed} "
            f"comparisons={self.sketch_comparisons} "
            f"combines={self.sketch_combines} "
            f"encodes={self.signature_encodes} "
            f"bit_ors={self.signature_combines} "
            f"prunes={self.signature_prunes} "
            f"avg_sigs={self.avg_signatures:.1f} "
            f"matches={self.matches_reported}"
        )
