"""Continuous-query representation.

A :class:`Query` is a subscribed video clip reduced to its distinct cell
ids and their K-min-hash sketch (computed offline, as in the paper's step
"construct K-min-hash sketches QS for continuous queries ... offline").
A :class:`QuerySet` bundles the queries sharing one hash family and
answers the per-query candidate-length caps the engine needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence

import numpy as np

from repro.errors import DetectionError
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch

__all__ = ["Query", "QuerySet"]


@dataclass(frozen=True)
class Query:
    """One subscribed query video.

    Attributes
    ----------
    qid:
        Unique integer id.
    cell_ids:
        The query clip's distinct frame-signature cell ids (sorted).
    num_frames:
        Length of the query in key frames (``L`` of the paper, in the
        stream's key-frame cadence).
    sketch:
        The offline K-min-hash sketch of :attr:`cell_ids`.
    label:
        Optional human-readable name.
    """

    qid: int
    cell_ids: np.ndarray = field(repr=False)
    num_frames: int
    sketch: Sketch = field(repr=False)
    label: str = ""

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise DetectionError(
                f"query {self.qid}: num_frames must be positive, "
                f"got {self.num_frames}"
            )
        if self.cell_ids.size == 0:
            raise DetectionError(f"query {self.qid}: empty cell-id set")

    def max_candidate_windows(self, window_frames: int, tempo_scale: float) -> int:
        """``ceil(λ L / w)`` — the longest candidate worth testing."""
        if window_frames <= 0:
            raise DetectionError(
                f"window_frames must be positive, got {window_frames}"
            )
        return max(1, math.ceil(tempo_scale * self.num_frames / window_frames))


class QuerySet:
    """The set of continuous queries sharing one hash family."""

    def __init__(self, queries: Sequence[Query], family: MinHashFamily) -> None:
        if not queries:
            raise DetectionError("a query set needs at least one query")
        self.family = family
        self._queries: Dict[int, Query] = {}
        for query in queries:
            if query.qid in self._queries:
                raise DetectionError(f"duplicate query id {query.qid}")
            if query.sketch.family != family.fingerprint:
                raise DetectionError(
                    f"query {query.qid} was sketched under a different family"
                )
            self._queries[query.qid] = query

    @classmethod
    def from_cell_ids(
        cls,
        cell_id_map: Mapping[int, np.ndarray],
        frame_counts: Mapping[int, int],
        family: MinHashFamily,
        labels: Mapping[int, str] | None = None,
    ) -> "QuerySet":
        """Build queries (and their offline sketches) from raw cell ids.

        Parameters
        ----------
        cell_id_map:
            Mapping qid -> per-key-frame cell-id array (duplicates fine).
        frame_counts:
            Mapping qid -> query length in key frames.
        family:
            Hash family shared with the stream sketcher.
        labels:
            Optional qid -> label mapping.
        """
        queries: List[Query] = []
        for qid, ids in cell_id_map.items():
            if qid not in frame_counts:
                raise DetectionError(f"missing frame count for query {qid}")
            distinct = np.unique(np.asarray(ids, dtype=np.int64))
            queries.append(
                Query(
                    qid=qid,
                    cell_ids=distinct,
                    num_frames=frame_counts[qid],
                    sketch=family.sketch(distinct),
                    label=(labels or {}).get(qid, f"query-{qid}"),
                )
            )
        return cls(queries, family)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries.values())

    def __contains__(self, qid: int) -> bool:
        return qid in self._queries

    def get(self, qid: int) -> Query:
        """Look up a query by id."""
        if qid not in self._queries:
            raise DetectionError(f"unknown query id {qid}")
        return self._queries[qid]

    def add(self, query: Query) -> None:
        """Subscribe a new query (online maintenance)."""
        if query.qid in self._queries:
            raise DetectionError(f"duplicate query id {query.qid}")
        if query.sketch.family != self.family.fingerprint:
            raise DetectionError(
                f"query {query.qid} was sketched under a different family"
            )
        self._queries[query.qid] = query

    def remove(self, qid: int) -> None:
        """Unsubscribe a query (online maintenance)."""
        if qid not in self._queries:
            raise DetectionError(f"unknown query id {qid}")
        if len(self._queries) == 1:
            raise DetectionError("cannot remove the last query of a set")
        del self._queries[qid]

    @property
    def query_ids(self) -> List[int]:
        """All subscribed query ids, sorted."""
        return sorted(self._queries)

    def sketches(self) -> Dict[int, Sketch]:
        """Mapping qid -> offline sketch (for index construction)."""
        return {qid: query.sketch for qid, query in self._queries.items()}

    def max_windows_map(
        self, window_frames: int, tempo_scale: float
    ) -> Dict[int, int]:
        """Per-query candidate caps ``ceil(λ L_q / w)``."""
        return {
            qid: query.max_candidate_windows(window_frames, tempo_scale)
            for qid, query in self._queries.items()
        }
