"""The streaming copy-detection engine (paper Sections IV-V).

The engine consumes a stream of per-key-frame cell ids, chops it into
basic windows, sketches each window, and maintains a candidate-sequence
list ``C_L`` under either Sequential or Geometric combination order. Each
candidate is continuously scored against the subscribed queries — via raw
sketch comparison or via bit-vector signatures, with or without the
Hash-Query index — and every candidate whose estimated similarity reaches
δ is reported as a detected copy.

Public entry point: :class:`~repro.core.detector.StreamingDetector`.
"""

from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.monitor import EngineStats
from repro.core.query import Query, QuerySet
from repro.core.results import Detection, Match, merge_matches

__all__ = [
    "Detection",
    "EngineStats",
    "LiveMonitor",
    "Match",
    "Query",
    "QuerySet",
    "StreamingDetector",
    "merge_matches",
]
