"""Sequential combination order (Section IV-A).

Every suffix of the window stream — up to the λL length cap — is kept as
a live candidate. When basic window ``t`` arrives, each existing candidate
(all of which end at ``t−1``) is extended with it, and a fresh length-1
candidate is opened at ``t``. This is the accuracy-first order: all
``⌈λL/w⌉`` alignments are tested, at ``⌈λL/w⌉`` combinations per window
(the first branch of Eq. (4)).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.context import EvalContext, WindowPayload
from repro.core.results import Match
from repro.minhash.sketch import Sketch
from repro.signature.bitsig import BitSignature

__all__ = ["SequentialEngine"]


class _Candidate:
    """One live suffix candidate ``P[start..now]``."""

    __slots__ = ("start_window", "start_frame", "num_windows", "end_frame",
                 "sketch", "sigs", "relevant")

    def __init__(
        self,
        start_window: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
    ) -> None:
        self.start_window = start_window
        self.start_frame = start_frame
        self.num_windows = 1
        self.end_frame = end_frame
        self.sketch = sketch
        self.sigs = sigs
        self.relevant = relevant


class SequentialEngine:
    """Maintains all suffix candidates and scores them per window."""

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.candidates: List[_Candidate] = []

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in ``C_L``."""
        return sum(len(candidate.sigs) for candidate in self.candidates)

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into ``C_L``; return the match events.

        Phase accounting: expiry of over-λL candidates runs under the
        ``prune`` timer, candidate extension (signature ORs / sketch
        merges, including their inline Lemma 2 pruning) under
        ``combine``, and fresh-candidate scoring plus per-window stats
        sampling under ``match_emit``.
        """
        ctx = self.context
        window = payload.window
        matches: List[Match] = []

        with ctx.phase("prune"):
            surviving: List[_Candidate] = []
            for candidate in self.candidates:
                candidate.num_windows += 1
                candidate.end_frame = window.end_frame
                if candidate.num_windows > ctx.global_max_windows:
                    ctx.stats.expired_candidates += 1
                    continue
                surviving.append(candidate)
            self.candidates = surviving

        with ctx.phase("combine"):
            for candidate in self.candidates:
                if ctx.is_bit:
                    # The Bit method never touches candidate sketches: all
                    # maintenance is signature ORs (Section V-A).
                    self._extend_bit(candidate, payload, matches)
                else:
                    candidate.sketch = ctx.combine(
                        candidate.sketch, window.sketch
                    )
                    self._extend_sketch(candidate, payload, matches)

        with ctx.phase("match_emit"):
            fresh = _Candidate(
                start_window=window.index,
                start_frame=window.start_frame,
                end_frame=window.end_frame,
                sketch=window.sketch,
                sigs=dict(payload.sigs),
                relevant=set(payload.related),
            )
            self._evaluate_fresh(fresh, matches)
            self.candidates.append(fresh)

            ctx.stats.windows_processed += 1
            ctx.stats.signatures_maintained.add(self.resident_signatures)
            ctx.stats.candidates_maintained.add(len(self.candidates))
            ctx.stats.matches_reported += len(matches)
        return matches

    # ------------------------------------------------------------------

    def _emit(
        self, candidate: _Candidate, qid: int, similarity: float,
        window_index: int, matches: List[Match],
    ) -> None:
        matches.append(
            Match(
                qid=qid,
                window_index=window_index,
                start_frame=candidate.start_frame,
                end_frame=candidate.end_frame,
                similarity=similarity,
            )
        )

    def _extend_bit(
        self, candidate: _Candidate, payload: WindowPayload, matches: List[Match]
    ) -> None:
        """Combine a candidate's signatures with the window's (bit mode).

        Queries tracked by both sides combine with a bitwise OR. A query
        tracked only by the candidate needs the window's relation bits —
        one O(K) encode, memoised per (window, query) on the payload. A
        query the window just made relevant is *adopted*: its signature
        starts from the window's bits alone, since the candidate's
        earlier windows shared no min-hash value with it (Section V-B's
        "signatures ... related to its consecutive candidate sequences").
        The adopted signature therefore describes the suffix of the
        candidate from this window on — an optimistic but sound start,
        as the matching suffix exists as its own candidate too. Lemma 2
        and the per-query length cap prune pairs as they are produced,
        cascading exactly as Section V-B requires: a pruned pair can
        never reappear on any extension of this candidate.
        """
        ctx = self.context
        window = payload.window
        new_sigs: Dict[int, BitSignature] = {}
        for qid in candidate.sigs.keys() | payload.sigs.keys():
            if not ctx.within_cap(qid, candidate.num_windows):
                continue
            candidate_sig = candidate.sigs.get(qid)
            if candidate_sig is not None:
                window_sig = ctx.window_signature(payload, qid)
                signature = ctx.or_signatures(candidate_sig, window_sig)
            else:
                signature = payload.sigs[qid]
            if ctx.prunable(signature):
                ctx.registry.inc("engine.signature_prunes")
                continue
            new_sigs[qid] = signature
            if signature.similarity >= ctx.config.threshold:
                self._emit(candidate, qid, signature.similarity,
                           window.index, matches)
        candidate.sigs = new_sigs

    def _extend_sketch(
        self, candidate: _Candidate, payload: WindowPayload, matches: List[Match]
    ) -> None:
        """Re-score a candidate's relevant queries (sketch mode)."""
        ctx = self.context
        candidate.relevant |= payload.related
        still_relevant: Set[int] = set()
        for qid in candidate.relevant:
            if not ctx.within_cap(qid, candidate.num_windows):
                continue
            still_relevant.add(qid)
            similarity = ctx.similarity(candidate.sketch, qid)
            if similarity >= ctx.config.threshold:
                self._emit(candidate, qid, similarity,
                           payload.window.index, matches)
        candidate.relevant = still_relevant

    def _evaluate_fresh(
        self, candidate: _Candidate, matches: List[Match]
    ) -> None:
        """Score the newly opened length-1 candidate."""
        ctx = self.context
        if ctx.is_bit:
            for qid, signature in candidate.sigs.items():
                if signature.similarity >= ctx.config.threshold:
                    self._emit(candidate, qid, signature.similarity,
                               candidate.start_window, matches)
        else:
            for qid in candidate.relevant:
                similarity = ctx.similarity(candidate.sketch, qid)
                if similarity >= ctx.config.threshold:
                    self._emit(candidate, qid, similarity,
                               candidate.start_window, matches)
