"""Sequential combination order (Section IV-A).

Every suffix of the window stream — up to the λL length cap — is kept as
a live candidate. When basic window ``t`` arrives, each existing candidate
(all of which end at ``t−1``) is extended with it, and a fresh length-1
candidate is opened at ``t``. This is the accuracy-first order: all
``⌈λL/w⌉`` alignments are tested, at ``⌈λL/w⌉`` combinations per window
(the first branch of Eq. (4)).

Two implementations share these semantics bit-for-bit:

* :class:`SequentialEngine` — the scalar reference: a Python list of
  ``_Candidate`` objects, one sketch merge / signature OR at a time.
* :class:`ColumnarSequentialEngine` — the columnar store
  (``config.vectorized``, the default): all candidate state lives in
  structure-of-arrays form, so each window is a handful of broadcast
  numpy kernels instead of ``C × Q`` Python-level operations (see
  ``docs/performance.md``).
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.core.columnar import column_remap
from repro.core.context import EvalContext, QueryColumns, WindowPayload
from repro.core.results import Match
from repro.minhash.sketch import Sketch, SketchBlock
from repro.signature.bitsig import BitSignature, plane_words, popcount_planes
from repro.signature.pruning import lemma2_prunable

__all__ = ["ColumnarSequentialEngine", "SequentialEngine"]


class _Candidate:
    """One live suffix candidate ``P[start..now]``."""

    __slots__ = ("start_window", "start_frame", "num_windows", "end_frame",
                 "sketch", "sigs", "relevant")

    def __init__(
        self,
        start_window: int,
        start_frame: int,
        end_frame: int,
        sketch: Sketch,
        sigs: Dict[int, BitSignature],
        relevant: Set[int],
    ) -> None:
        self.start_window = start_window
        self.start_frame = start_frame
        self.num_windows = 1
        self.end_frame = end_frame
        self.sketch = sketch
        self.sigs = sigs
        self.relevant = relevant


class SequentialEngine:
    """Maintains all suffix candidates and scores them per window."""

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.candidates: List[_Candidate] = []

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in ``C_L``."""
        return sum(len(candidate.sigs) for candidate in self.candidates)

    def purge_query(self, qid: int) -> None:
        """Drop one query's in-flight state (online unsubscribe)."""
        for candidate in self.candidates:
            candidate.sigs.pop(qid, None)
            candidate.relevant.discard(qid)

    def refresh(self) -> None:
        """Adopt the current query set (online subscribe).

        The scalar store keys per-query state by qid, so nothing needs
        to move; the columnar stores override this to re-sync their
        column layout eagerly rather than on the next window.
        """

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into ``C_L``; return the match events.

        Phase accounting: expiry of over-λL candidates runs under the
        ``prune`` timer, candidate extension (signature ORs / sketch
        merges, including their inline Lemma 2 pruning) under
        ``combine``, and fresh-candidate scoring plus per-window stats
        sampling under ``match_emit``.
        """
        ctx = self.context
        window = payload.window
        matches: List[Match] = []

        with ctx.phase("prune"):
            surviving: List[_Candidate] = []
            for candidate in self.candidates:
                candidate.num_windows += 1
                candidate.end_frame = window.end_frame
                if candidate.num_windows > ctx.global_max_windows:
                    ctx.stats.expired_candidates += 1
                    continue
                surviving.append(candidate)
            self.candidates = surviving

        with ctx.phase("combine"):
            for candidate in self.candidates:
                if ctx.is_bit:
                    # The Bit method never touches candidate sketches: all
                    # maintenance is signature ORs (Section V-A).
                    self._extend_bit(candidate, payload, matches)
                else:
                    candidate.sketch = ctx.combine(
                        candidate.sketch, window.sketch
                    )
                    self._extend_sketch(candidate, payload, matches)

        with ctx.phase("match_emit"):
            fresh = _Candidate(
                start_window=window.index,
                start_frame=window.start_frame,
                end_frame=window.end_frame,
                sketch=window.sketch,
                sigs=dict(payload.sigs),
                relevant=set(payload.related),
            )
            self._evaluate_fresh(fresh, matches)
            self.candidates.append(fresh)

            ctx.stats.windows_processed += 1
            ctx.stats.signatures_maintained.add(self.resident_signatures)
            ctx.stats.candidates_maintained.add(len(self.candidates))
            ctx.stats.matches_reported += len(matches)
        return matches

    # ------------------------------------------------------------------

    def _emit(
        self, candidate: _Candidate, qid: int, similarity: float,
        window_index: int, matches: List[Match],
    ) -> None:
        matches.append(
            Match(
                qid=qid,
                window_index=window_index,
                start_frame=candidate.start_frame,
                end_frame=candidate.end_frame,
                similarity=similarity,
            )
        )

    def _extend_bit(
        self, candidate: _Candidate, payload: WindowPayload, matches: List[Match]
    ) -> None:
        """Combine a candidate's signatures with the window's (bit mode).

        Queries tracked by both sides combine with a bitwise OR. A query
        tracked only by the candidate needs the window's relation bits —
        one O(K) encode, memoised per (window, query) on the payload. A
        query the window just made relevant is *adopted*: its signature
        starts from the window's bits alone, since the candidate's
        earlier windows shared no min-hash value with it (Section V-B's
        "signatures ... related to its consecutive candidate sequences").
        The adopted signature therefore describes the suffix of the
        candidate from this window on — an optimistic but sound start,
        as the matching suffix exists as its own candidate too. Lemma 2
        and the per-query length cap prune pairs as they are produced,
        cascading exactly as Section V-B requires: a pruned pair can
        never reappear on any extension of this candidate.
        """
        ctx = self.context
        window = payload.window
        new_sigs: Dict[int, BitSignature] = {}
        for qid in candidate.sigs.keys() | payload.sigs.keys():
            if not ctx.within_cap(qid, candidate.num_windows):
                continue
            candidate_sig = candidate.sigs.get(qid)
            if candidate_sig is not None:
                window_sig = ctx.window_signature(payload, qid)
                signature = ctx.or_signatures(candidate_sig, window_sig)
            else:
                signature = payload.sigs[qid]
            if ctx.prunable(signature):
                ctx.registry.inc("engine.signature_prunes")
                continue
            new_sigs[qid] = signature
            if signature.similarity >= ctx.config.threshold:
                self._emit(candidate, qid, signature.similarity,
                           window.index, matches)
        candidate.sigs = new_sigs

    def _extend_sketch(
        self, candidate: _Candidate, payload: WindowPayload, matches: List[Match]
    ) -> None:
        """Re-score a candidate's relevant queries (sketch mode)."""
        ctx = self.context
        candidate.relevant |= payload.related
        still_relevant: Set[int] = set()
        for qid in candidate.relevant:
            if not ctx.within_cap(qid, candidate.num_windows):
                continue
            still_relevant.add(qid)
            similarity = ctx.similarity(candidate.sketch, qid)
            if similarity >= ctx.config.threshold:
                self._emit(candidate, qid, similarity,
                           payload.window.index, matches)
        candidate.relevant = still_relevant

    def _evaluate_fresh(
        self, candidate: _Candidate, matches: List[Match]
    ) -> None:
        """Score the newly opened length-1 candidate."""
        ctx = self.context
        if ctx.is_bit:
            for qid, signature in candidate.sigs.items():
                if signature.similarity >= ctx.config.threshold:
                    self._emit(candidate, qid, signature.similarity,
                               candidate.start_window, matches)
        else:
            for qid in candidate.relevant:
                similarity = ctx.similarity(candidate.sketch, qid)
                if similarity >= ctx.config.threshold:
                    self._emit(candidate, qid, similarity,
                               candidate.start_window, matches)


class ColumnarSequentialEngine(SequentialEngine):
    """Sequential order on the columnar candidate store.

    All live candidates are one structure of arrays: per-candidate meta
    vectors (``start_window``, ``start_frame``; a candidate's length in
    windows is derived as ``window.index - start_window + 1``), a
    ``(C, K)`` :class:`~repro.minhash.sketch.SketchBlock` (sketch mode)
    or ``(C, Q, W)`` packed uint64 signature planes plus a ``(C, Q)``
    presence mask (bit mode). One arriving window is then: a boolean
    expiry compaction, a broadcast ``np.minimum`` / bulk bitwise OR, one
    vectorized similarity kernel, and a mask-driven match emission —
    with counter accounting identical to :class:`SequentialEngine`.
    """

    def __init__(self, context: EvalContext) -> None:
        self.context = context
        self.candidates = []  # unused; kept for reference-API parity
        self._qids: tuple = None
        self._sync_columns()

    # ------------------------------------------------------------------
    # store layout
    # ------------------------------------------------------------------

    def _alloc(self, columns: QueryColumns) -> None:
        ctx = self.context
        num_queries = len(columns.qids)
        width = plane_words(ctx.config.num_hashes)
        self._qids = columns.qids
        self.start_window = np.empty(0, dtype=np.int64)
        self.start_frame = np.empty(0, dtype=np.int64)
        if ctx.is_bit:
            self.presence = np.empty((0, num_queries), dtype=bool)
            self.ge = np.empty((0, num_queries, width), dtype=np.uint64)
            self.lt = np.empty((0, num_queries, width), dtype=np.uint64)
        else:
            self.block = SketchBlock.empty(ctx.queries.family.fingerprint)
            self.relevant = np.empty((0, num_queries), dtype=bool)

    def _sync_columns(self) -> QueryColumns:
        """Adopt the current query-column layout, remapping live state."""
        columns = self.context.query_columns()
        if self._qids == columns.qids:
            return columns
        if self._qids is None or not len(self.start_window):
            self._alloc(columns)
            return columns
        old_idx, new_idx = column_remap(self._qids, columns.qids)
        rows = len(self.start_window)
        num_queries = len(columns.qids)
        if self.context.is_bit:
            width = self.ge.shape[2]
            presence = np.zeros((rows, num_queries), dtype=bool)
            ge = np.zeros((rows, num_queries, width), dtype=np.uint64)
            lt = np.zeros((rows, num_queries, width), dtype=np.uint64)
            presence[:, new_idx] = self.presence[:, old_idx]
            ge[:, new_idx] = self.ge[:, old_idx]
            lt[:, new_idx] = self.lt[:, old_idx]
            self.presence, self.ge, self.lt = presence, ge, lt
        else:
            relevant = np.zeros((rows, num_queries), dtype=bool)
            relevant[:, new_idx] = self.relevant[:, old_idx]
            self.relevant = relevant
        self._qids = columns.qids
        return columns

    def purge_query(self, qid: int) -> None:
        """Drop one query's in-flight state (online unsubscribe)."""
        self._sync_columns()

    def refresh(self) -> None:
        """Adopt the current query set (online subscribe).

        Eager rather than lazy: a snapshot taken between a subscribe
        and the next window must already see the new column layout.
        """
        self._sync_columns()

    @property
    def resident_signatures(self) -> int:
        """Bit signatures currently held in ``C_L``."""
        if self.context.is_bit:
            return int(np.count_nonzero(self.presence))
        return 0

    @property
    def num_candidates(self) -> int:
        """Live candidate count ``C``."""
        return int(self.start_window.shape[0])

    # ------------------------------------------------------------------
    # per-window processing
    # ------------------------------------------------------------------

    def process(self, payload: WindowPayload) -> List[Match]:
        """Fold one basic window into the columnar ``C_L``.

        Same phase accounting as the reference engine; the numpy kernel
        sections inside ``combine`` additionally run under
        ``phase.combine.bitops`` (bit mode) or ``phase.combine.sketch``
        (sketch mode) sub-timers.
        """
        ctx = self.context
        columns = self._sync_columns()
        window = payload.window
        matches: List[Match] = []

        with ctx.phase("prune"):
            # A candidate spanning windows [s, t] has length t - s + 1;
            # start_window is ascending (append order), so the over-cap
            # rows form a prefix and compaction is a slice (a view), not
            # a fancy-index copy.
            expired = int(
                np.searchsorted(
                    self.start_window,
                    window.index + 1 - ctx.global_max_windows,
                )
            )
            if expired:
                ctx.registry.inc("engine.expired_candidates", expired)
                self._compact(expired)

        with ctx.phase("combine"):
            if ctx.is_bit:
                self._extend_bit_block(payload, columns, matches)
            else:
                self._extend_sketch_block(payload, columns, matches)

        with ctx.phase("match_emit"):
            self._append_and_evaluate_fresh(payload, columns, matches)
            registry = ctx.registry
            registry.inc("engine.windows_processed")
            registry.observe(
                "engine.signatures_maintained", self.resident_signatures
            )
            registry.observe(
                "engine.candidates_maintained", self.num_candidates
            )
            registry.inc("engine.matches_reported", len(matches))
        return matches

    def _compact(self, expired: int) -> None:
        self.start_window = self.start_window[expired:]
        self.start_frame = self.start_frame[expired:]
        if self.context.is_bit:
            self.presence = self.presence[expired:]
            self.ge = self.ge[expired:]
            self.lt = self.lt[expired:]
        else:
            self.block.values = self.block.values[expired:]
            self.relevant = self.relevant[expired:]

    def _emit_block(
        self,
        emit: np.ndarray,
        similarity: np.ndarray,
        start_frames: np.ndarray,
        columns: QueryColumns,
        window_index: int,
        end_frame: int,
        matches: List[Match],
    ) -> None:
        """Materialise Match events from a ``(C, Q)`` emission mask."""
        rows, cols = np.nonzero(emit)
        qids = columns.qids
        for row, col in zip(rows.tolist(), cols.tolist()):
            matches.append(
                Match(
                    qid=qids[col],
                    window_index=window_index,
                    start_frame=int(start_frames[row]),
                    end_frame=end_frame,
                    similarity=float(similarity[row, col]),
                )
            )

    def _extend_bit_block(
        self,
        payload: WindowPayload,
        columns: QueryColumns,
        matches: List[Match],
    ) -> None:
        """All candidates' signature ORs / adoptions as bulk bitwise ops.

        Mirrors ``_extend_bit`` pair-for-pair: the per-query λL cap
        filters first (dropped pairs touch no counter), tracked pairs OR
        with the window planes (one ``signature_combines`` each, lazy
        window encodes charged per column), window-only pairs adopt the
        window signature, and Lemma 2 prunes the results in bulk.
        """
        ctx = self.context
        window = payload.window
        num_hashes = ctx.config.num_hashes
        ages = window.index - self.start_window + 1
        cap = ages[:, np.newaxis] <= columns.max_windows
        combined = self.presence & cap
        col = ctx.window_planes(
            payload, needed=combined.any(axis=0) & ~payload.col.present
        )
        adopted = ~self.presence & cap & col.present
        ctx.registry.inc(
            "engine.signature_combines", int(np.count_nonzero(combined))
        )
        with ctx.phase("combine.bitops"):
            present = combined | adopted
            combined3 = combined[:, :, np.newaxis]
            present3 = present[:, :, np.newaxis]
            ge, lt = self.ge, self.lt
            # In place: zero every row not continued this window (this
            # also clears rows pruned on an earlier window), then OR the
            # window planes into every tracked-or-adopting row.
            np.multiply(ge, combined3, out=ge)
            np.multiply(lt, combined3, out=lt)
            np.bitwise_or(ge, col.ge, out=ge, where=present3)
            np.bitwise_or(lt, col.lt, out=lt, where=present3)
            n1 = popcount_planes(lt)
            if ctx.config.prune:
                prunable = present & lemma2_prunable(
                    n1, num_hashes, ctx.config.threshold
                )
                pruned = int(np.count_nonzero(prunable))
                if pruned:
                    ctx.registry.inc("engine.signature_prunes", pruned)
                    present &= ~prunable
            similarity = 1.0 - (
                (num_hashes - popcount_planes(ge)) + n1
            ) / num_hashes
            emit = present & (similarity >= ctx.config.threshold)
        self.presence = present
        self._emit_block(
            emit, similarity, self.start_frame, columns,
            window.index, window.end_frame, matches,
        )

    def _extend_sketch_block(
        self,
        payload: WindowPayload,
        columns: QueryColumns,
        matches: List[Match],
    ) -> None:
        """All candidates' sketch merges and re-scores as one kernel."""
        ctx = self.context
        window = payload.window
        rows = self.num_candidates
        with ctx.phase("combine.sketch"):
            self.block.combine_all(window.sketch)
        ctx.registry.inc("engine.sketch_combines", rows)
        self.relevant |= payload.col.related_mask
        ages = window.index - self.start_window + 1
        cap = ages[:, np.newaxis] <= columns.max_windows
        active = self.relevant & cap
        ctx.registry.inc(
            "engine.sketch_comparisons", int(np.count_nonzero(active))
        )
        with ctx.phase("combine.sketch"):
            similarity = self.block.similarity_matrix(columns.matrix)
            emit = active & (similarity >= ctx.config.threshold)
        self.relevant = active
        self._emit_block(
            emit, similarity, self.start_frame, columns,
            window.index, window.end_frame, matches,
        )

    def _append_and_evaluate_fresh(
        self,
        payload: WindowPayload,
        columns: QueryColumns,
        matches: List[Match],
    ) -> None:
        """Open, score and append the length-1 candidate at this window."""
        ctx = self.context
        window = payload.window
        col = payload.col
        num_hashes = ctx.config.num_hashes
        qids = columns.qids
        if ctx.is_bit:
            n1 = popcount_planes(col.lt)
            similarity = 1.0 - (
                (num_hashes - popcount_planes(col.ge)) + n1
            ) / num_hashes
            emit = col.present & (similarity >= ctx.config.threshold)
            self.presence = np.concatenate(
                [self.presence, col.present[np.newaxis, :]]
            )
            self.ge = np.concatenate([self.ge, col.ge[np.newaxis, :, :]])
            self.lt = np.concatenate([self.lt, col.lt[np.newaxis, :, :]])
        else:
            relevant = col.related_mask
            ctx.registry.inc(
                "engine.sketch_comparisons", int(np.count_nonzero(relevant))
            )
            equal = np.count_nonzero(
                window.sketch.values[np.newaxis, :] == columns.matrix, axis=1
            )
            similarity = equal / num_hashes
            emit = relevant & (similarity >= ctx.config.threshold)
            self.block.append(window.sketch)
            self.relevant = np.concatenate(
                [self.relevant, relevant[np.newaxis, :]]
            )
        for column in np.flatnonzero(emit).tolist():
            matches.append(
                Match(
                    qid=qids[column],
                    window_index=window.index,
                    start_frame=window.start_frame,
                    end_frame=window.end_frame,
                    similarity=float(similarity[column]),
                )
            )
        self.start_window = np.concatenate(
            [self.start_window, (window.index,)]
        )
        self.start_frame = np.concatenate(
            [self.start_frame, (window.start_frame,)]
        )
