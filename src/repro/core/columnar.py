"""Shared helpers of the columnar (structure-of-arrays) engines.

The columnar engines keep one column per subscribed query, in the
sorted-qid order of :meth:`~repro.core.context.EvalContext.query_columns`.
Online subscribe/unsubscribe changes that layout, so engine stores carry
the qid tuple they were built against and remap lazily: columns for
retained queries move to their new position, vanished queries drop, and
new queries start empty (exactly the state a fresh subscription has in
the scalar reference engines).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["column_remap"]


def column_remap(
    old_qids: Sequence[int], new_qids: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Index arrays moving per-query columns between two qid layouts.

    Returns ``(old_idx, new_idx)`` such that for any per-query array
    ``old`` (queries on some axis), the surviving columns are copied with
    ``new[..., new_idx] = old[..., old_idx]``; every other new column
    keeps its zero/False initial value.
    """
    position = {qid: i for i, qid in enumerate(old_qids)}
    old_idx = []
    new_idx = []
    for i, qid in enumerate(new_qids):
        j = position.get(qid)
        if j is not None:
            old_idx.append(j)
            new_idx.append(i)
    return (
        np.array(old_idx, dtype=np.int64),
        np.array(new_idx, dtype=np.int64),
    )
