"""The ``repro.wire/1`` frame codec: the gateway's binary protocol.

Every message on a gateway connection is one *frame*:

.. code-block:: text

    +----------------+---------------------------------------+----------+
    | u32 body_len   | body                                  | u32 crc  |
    +----------------+---------------------------------------+----------+

    body := u32 header_len | header_json (utf-8) | payload_bytes

All integers are big-endian. ``crc`` is ``zlib.crc32`` over the whole
body, so any in-flight corruption of header or payload is rejected
before JSON parsing. ``body_len`` is validated against a configurable
``max_frame_bytes`` *before* the body is read — a hostile or broken
peer cannot make the receiver allocate an arbitrary buffer.

The header is a small JSON object; its ``"type"`` key names the
message. Frames that carry an array (cell-id chunks, query cell ids)
describe it in the header under ``"payload"`` (``dtype`` as a numpy
dtype string including byte order, ``shape`` as a list) and append the
raw ``tobytes()`` bytes after the header — numbers never pass through
JSON.

Version negotiation happens at HELLO: the client's first frame carries
``{"type": "hello", "proto": "repro.wire/1", ...}``. A server that does
not speak the offered protocol replies with an error frame naming the
versions it supports and closes; nothing else is ever sent across a
version mismatch.

The codec is transport-agnostic: :func:`encode_frame` /
:func:`decode_frame` work on bytes, :class:`FrameReader` assembles
frames from an arbitrary chunking of the byte stream (both the asyncio
server and the blocking client feed it whatever ``recv`` returned).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import GatewayError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameCorrupt",
    "FrameReader",
    "FrameTooLarge",
    "WIRE_FORMAT",
    "decode_frame",
    "encode_frame",
]

#: Protocol tag offered at HELLO and checked by both sides.
WIRE_FORMAT = "repro.wire/1"

#: Default ceiling on one frame's body (header + payload).
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

_U32 = struct.Struct("!I")
#: Fixed bytes around the body: the length prefix and the CRC trailer.
FRAME_OVERHEAD = 2 * _U32.size


class FrameTooLarge(GatewayError):
    """A frame announced (or would need) a body over the size guard."""


class FrameCorrupt(GatewayError):
    """A frame failed CRC, structural, or header validation."""


def encode_frame(
    header: Dict[str, object],
    payload: Optional[np.ndarray] = None,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Serialise one message to wire bytes.

    ``header`` must be JSON-serialisable and should carry a ``"type"``
    key. When ``payload`` is given, its dtype/shape are recorded in the
    header under ``"payload"`` (any caller-set ``"payload"`` key is
    overwritten) and its bytes travel after the header.
    """
    header = dict(header)
    payload_bytes = b""
    if payload is not None:
        array = np.ascontiguousarray(payload)
        header["payload"] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
        payload_bytes = array.tobytes()
    else:
        header.pop("payload", None)
    header_json = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    body = _U32.pack(len(header_json)) + header_json + payload_bytes
    if len(body) > max_frame_bytes:
        raise FrameTooLarge(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte guard"
        )
    return _U32.pack(len(body)) + body + _U32.pack(zlib.crc32(body))


def _decode_body(body: bytes) -> Tuple[Dict[str, object], Optional[np.ndarray]]:
    if len(body) < _U32.size:
        raise FrameCorrupt(
            f"frame body of {len(body)} bytes cannot hold a header length"
        )
    (header_len,) = _U32.unpack_from(body)
    if _U32.size + header_len > len(body):
        raise FrameCorrupt(
            f"frame header length {header_len} overruns a "
            f"{len(body)}-byte body"
        )
    header_json = body[_U32.size : _U32.size + header_len]
    try:
        header = json.loads(header_json.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameCorrupt(f"frame header is not valid JSON: {error}")
    if not isinstance(header, dict) or "type" not in header:
        raise FrameCorrupt("frame header must be an object with a 'type'")
    payload_bytes = body[_U32.size + header_len :]
    spec = header.get("payload")
    if spec is None:
        if payload_bytes:
            raise FrameCorrupt(
                f"{len(payload_bytes)} payload bytes but no payload "
                "descriptor in the header"
            )
        return header, None
    try:
        dtype = np.dtype(str(spec["dtype"]))
        shape = tuple(int(n) for n in spec["shape"])
    except (KeyError, TypeError, ValueError) as error:
        raise FrameCorrupt(f"bad payload descriptor {spec!r}: {error}")
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if expected != len(payload_bytes):
        raise FrameCorrupt(
            f"payload descriptor {spec!r} wants {expected} bytes, "
            f"frame carries {len(payload_bytes)}"
        )
    array = np.frombuffer(payload_bytes, dtype=dtype).reshape(shape)
    return header, array.copy()  # own the memory; the buffer is reused


def decode_frame(
    data: bytes,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[Dict[str, object], Optional[np.ndarray], int]:
    """Decode one complete frame from the head of ``data``.

    Returns ``(header, payload, bytes_consumed)``. Raises
    :class:`FrameCorrupt` on truncation — for incremental reads off a
    socket, use :class:`FrameReader`, which distinguishes "not yet
    complete" from "broken".
    """
    reader = FrameReader(max_frame_bytes=max_frame_bytes)
    frames = reader.feed(data)
    if not frames:
        raise FrameCorrupt(
            f"truncated frame: {len(data)} bytes do not complete one frame"
        )
    header, payload = frames[0]
    return header, payload, reader.consumed - reader.buffered


class FrameReader:
    """Incremental frame assembly over an arbitrarily chunked byte feed.

    ``feed(data)`` returns every frame completed by ``data`` (possibly
    none, possibly several). Oversized announcements raise
    :class:`FrameTooLarge` immediately — before buffering the body —
    and CRC or structural failures raise :class:`FrameCorrupt`; both
    poison the reader (a byte stream is unrecoverable after a framing
    error, the connection must be dropped).
    """

    def __init__(
        self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._poisoned: Optional[GatewayError] = None
        self.frames_decoded = 0
        self.consumed = 0  # total bytes fed

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(
        self, data: bytes
    ) -> List[Tuple[Dict[str, object], Optional[np.ndarray]]]:
        """Absorb ``data``; return the frames it completed, in order."""
        if self._poisoned is not None:
            raise self._poisoned
        self.consumed += len(data)
        self._buffer.extend(data)
        frames = []
        try:
            while True:
                if len(self._buffer) < _U32.size:
                    break
                (body_len,) = _U32.unpack_from(self._buffer)
                if body_len > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"peer announced a {body_len}-byte frame body; "
                        f"the guard is {self.max_frame_bytes} bytes"
                    )
                total = _U32.size + body_len + _U32.size
                if len(self._buffer) < total:
                    break
                body = bytes(self._buffer[_U32.size : _U32.size + body_len])
                (crc,) = _U32.unpack_from(self._buffer, _U32.size + body_len)
                if zlib.crc32(body) != crc:
                    raise FrameCorrupt(
                        f"frame CRC mismatch (got {crc:#010x}, "
                        f"computed {zlib.crc32(body):#010x})"
                    )
                del self._buffer[:total]
                frames.append(_decode_body(body))
                self.frames_decoded += 1
        except GatewayError as error:
            self._poisoned = error
            raise
        return frames
