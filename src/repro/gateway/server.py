"""The asyncio TCP gateway in front of a :class:`DetectionService`.

Everything behind the socket already exists — sketch-once fan-out,
bounded ingestion with backpressure policies, lifecycle epochs,
checkpoint/resume. :class:`GatewayServer` puts the wire in front of it:
a ``repro.wire/1`` endpoint (:mod:`repro.gateway.protocol`) speaking
three session kinds, all multiplexed onto **one service thread** so
chunk processing and admin barriers serialise exactly like in-process
callers — every admin op lands at a chunk boundary, which is what the
PR 5 epoch-barrier machinery requires.

Session kinds
-------------
* **ingest** — pushes ``chunk`` frames (cell ids or encoded
  bitstreams). Chunks route through a sink-backed
  :class:`~repro.ingest.session.StreamSession`, so sequence-number
  dedupe, resilient decode and degradation policies apply before the
  shared service sees a frame. One stream binding exists per gateway;
  a second live ingest connection is refused, and a dead one can be
  resumed with the binding's token.
* **admin** — request/response ops: ``subscribe`` / ``unsubscribe``
  (the service's epoch-barrier lifecycle), ``list_queries``, ``stats``,
  ``checkpoint``.
* **watch** — receives server-pushed ``match`` events in canonical
  :class:`~repro.serve.collector.MatchCollector` order. The watcher's
  cursor walks the collector's already-merged stream, so a slow watcher
  costs the server **nothing**: no per-watcher queue exists, unsent
  matches simply stay where they already live.

Flow control
------------
Ingest is credit-based: the server grants a window of ``credits`` at
WELCOME; each chunk spends one, and the credit returns with the ``ack``
that the chunk **finished processing** (or with an explicit ``drop``
notice). Credits map one-to-one onto slots of the gateway's
:class:`~repro.serve.queues.BoundedChannel`, so the configured
backpressure policy surfaces on the wire exactly as documented in
``docs/serving.md``:

* ``block`` — acks lag the service; the client runs out of credits and
  stalls (*credit starvation*). Nothing is dropped, server memory is
  capped at the credit window.
* ``drop_oldest`` / ``shed`` — the put drops or refuses chunks; each
  loss is reported as a counted ``drop`` notice (``gateway.drops``)
  that also refunds the credit.

Watch flow control mirrors it from the client side: the watcher grants
credits (HELLO, then ``credit`` frames); the server never has more
unacknowledged match frames in flight than granted.

Heartbeats, drain, resume
-------------------------
The server pings idle connections every ``heartbeat_seconds`` and
closes them after ``idle_timeout_seconds`` without inbound traffic.
:meth:`GatewayServer.shutdown` performs a graceful drain: stop
accepting, process every queued chunk, optionally flush the stream
tail, write a final checkpoint, push remaining matches, and send every
connection a ``goaway`` carrying its resume state. Resume is
replay-free and loss-free by construction: ingest resumes re-send from
``last_seq + 1`` (anything older is seq-deduped by the session), watch
resumes continue from the last acked match id against the collector's
durable stream.
"""

from __future__ import annotations

import asyncio
import pathlib
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.codec.gop import EncodedVideo
from repro.core.query import Query
from repro.errors import GatewayError, ReproError
from repro.features.pipeline import FingerprintExtractor
from repro.gateway.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameReader,
    WIRE_FORMAT,
    encode_frame,
)
from repro.ingest.decoder import DegradationPolicy
from repro.ingest.session import DetectorSink, StreamSession
from repro.ingest.sources import StreamChunk
from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.checkpoint import CheckpointManager
from repro.serve.queues import BackpressurePolicy, BoundedChannel

__all__ = ["GatewayHandle", "GatewayServer", "ServiceSink"]

_ENCODED_META_FIELDS = (
    "width", "height", "block_size", "quality", "gop_size", "num_frames"
)


class ServiceSink(DetectorSink):
    """Routes a :class:`StreamSession`'s surviving frames into a shared
    :class:`~repro.serve.DetectionService`.

    The session keeps seq-dedupe, decode and degradation; the service
    keeps windowing, sharded detection and canonical merge. The service
    front end owns a contiguous stream clock, so :meth:`skip_frames`
    (the ``skip_window`` policy on damaged GOPs) is not supported —
    gateway streams degrade with ``zero_fill`` or quarantine with
    ``fail``.
    """

    def __init__(self, service) -> None:
        self.service = service

    def push_cell_ids(self, cell_ids) -> List:
        ids = np.asarray(cell_ids, dtype=np.int64)
        return self.service.run([ids], flush=False)

    def skip_frames(self, num_frames: int) -> None:
        raise GatewayError(
            "a service-backed stream cannot skip frames (the shared "
            "front end owns a contiguous window clock); use the "
            "zero_fill or fail degradation policy"
        )

    def flush(self) -> List:
        return self.service.flush()

    def subscribe(self, query) -> None:
        self.service.subscribe(query)

    def unsubscribe(self, qid: int) -> None:
        self.service.unsubscribe(qid)


@dataclass
class _Connection:
    """Per-socket bookkeeping shared by all three session kinds."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    role: str = "?"
    last_rx: float = 0.0
    last_tx: float = 0.0
    credits: int = 0          # ingest: grants held by the client
    closed: bool = False


@dataclass
class _Watcher:
    """One live match-watch session."""

    conn: _Connection
    token: str
    cursor: int = 0           # next collector index to push
    credits: int = 0          # match frames the client has allowed
    last_acked: int = -1
    wake: asyncio.Event = field(default_factory=asyncio.Event)


class GatewayServer:
    """A ``repro.wire/1`` TCP endpoint over one detection service.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.DetectionService` to front. The
        gateway serialises every interaction with it onto one internal
        thread; the caller must not drive the service concurrently.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    credits:
        Ingest credit window == bound on chunks the server holds in
        memory (queued + processing).
    policy:
        Backpressure policy applied to chunk puts on the internal
        channel; ``block`` starves credits, the lossy policies emit
        ``drop`` notices.
    degrade:
        Degradation policy for damaged encoded chunks
        (``skip_window`` is rejected at the sink — see
        :class:`ServiceSink`).
    extractor:
        Fingerprint pipeline for encoded chunk frames (defaults to a
        fresh :class:`~repro.features.pipeline.FingerprintExtractor`).
    max_frame_bytes, heartbeat_seconds, idle_timeout_seconds:
        Wire guards.
    checkpoint_dir:
        When set, ``admin checkpoint`` ops and the shutdown drain write
        service snapshots there.
    registry:
        Registry for the ``gateway.*`` metrics (fresh one by default).
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        credits: int = 8,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        degrade: DegradationPolicy = DegradationPolicy.ZERO_FILL,
        extractor: Optional[FingerprintExtractor] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        heartbeat_seconds: float = 10.0,
        idle_timeout_seconds: float = 60.0,
        checkpoint_dir: Union[str, pathlib.Path, None] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if credits < 1:
            raise GatewayError(f"credit window must be >= 1, got {credits}")
        self.service = service
        self.host = host
        self.port = int(port)
        self.credit_window = int(credits)
        self.policy = policy
        self.degrade = degrade
        self.extractor = extractor
        self.max_frame_bytes = int(max_frame_bytes)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.idle_timeout_seconds = float(idle_timeout_seconds)
        self.checkpoint_manager = (
            CheckpointManager(checkpoint_dir) if checkpoint_dir else None
        )
        self.registry = registry if registry is not None else MetricsRegistry()

        # One slot above the credit window: the window caps chunks the
        # client may have unacked, and one of those is always *out* of
        # the channel being processed, so a compliant client can never
        # block the event loop on a put.
        self._pending = BoundedChannel(self.credit_window + 1)
        self._service_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._closing = False
        self._ended = False          # stream flushed
        self._session: Optional[StreamSession] = None
        self._stream_id = 0
        self._ingest_token: Optional[str] = None
        self._ingest_conn: Optional[_Connection] = None
        self._inflight = 0           # chunks queued or processing
        self._last_done_seq = -1     # highest seq fully processed
        self._watchers: Dict[str, _Watcher] = {}
        self._watch_archive: Dict[str, int] = {}   # token -> last_acked
        self._conns: List[_Connection] = []
        self._tasks: List[asyncio.Task] = []
        for name in (
            "gateway.connections", "gateway.frames_in", "gateway.frames_out",
            "gateway.bytes_in", "gateway.bytes_out", "gateway.chunks",
            "gateway.credit_stalls", "gateway.drops", "gateway.resumes",
            "gateway.matches_pushed", "gateway.heartbeats",
            "gateway.errors", "gateway.goaways",
        ):
            self.registry.inc(name, 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the service thread."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._service_thread = threading.Thread(
            target=self._service_loop, name="repro-gateway-svc", daemon=True
        )
        self._service_thread.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True, flush: bool = True) -> None:
        """Graceful drain: queued chunks, tails, checkpoint, GOAWAY."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        if drain:
            barrier = threading.Event()
            await loop.run_in_executor(
                None,
                self._pending.put,
                ("barrier", barrier),
                BackpressurePolicy.BLOCK,
            )
            await loop.run_in_executor(None, barrier.wait)
            if flush and not self._ended:
                await loop.run_in_executor(None, self._flush_stream)
            if self.checkpoint_manager is not None:
                await loop.run_in_executor(
                    None, self.service.checkpoint, self.checkpoint_manager
                )
                self.registry.inc("gateway.checkpoints")
            # Let watchers with credit drain the final matches.
            self._wake_watchers()
            await asyncio.sleep(0)
        self._goaway_all()
        self._pending.put(("stop",), BackpressurePolicy.BLOCK)
        await loop.run_in_executor(None, self._service_thread.join)
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        for conn in list(self._conns):
            self._close_conn(conn)
        self._stopped.set()

    def _flush_stream(self) -> None:
        """Flush the stream tail through the session (service thread is
        idle at this point, so calling in from the drain is safe)."""
        if self._ended:
            return
        self._ended = True
        if self._session is not None:
            self._session.finish()
        else:
            self.service.flush()

    def _goaway_all(self) -> None:
        for conn in list(self._conns):
            resume: Dict[str, object] = {}
            if conn is self._ingest_conn and self._ingest_token:
                resume = {
                    "token": self._ingest_token,
                    "last_seq": self._last_done_seq,
                }
            else:
                for watcher in self._watchers.values():
                    if watcher.conn is conn:
                        resume = {
                            "token": watcher.token,
                            "last_pushed": watcher.cursor - 1,
                        }
            try:
                self._post(conn, {
                    "type": "goaway",
                    "reason": "server draining",
                    "resume": resume,
                })
                self.registry.inc("gateway.goaways")
            except Exception:
                pass

    # ------------------------------------------------------------------
    # the service thread: the only caller of the DetectionService
    # ------------------------------------------------------------------

    def _service_loop(self) -> None:
        while True:
            message = self._pending.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "barrier":
                message[1].set()
                continue
            if kind == "chunk":
                chunk = message[1]
                num_matches = 0
                error: Optional[str] = None
                try:
                    num_matches = len(self._session.process_chunk(chunk))
                    self._last_done_seq = max(self._last_done_seq, chunk.seq)
                except ReproError as exc:
                    error = str(exc)
                self._call_soon(
                    self._on_chunk_done, chunk.seq, num_matches, error
                )
                continue
            if kind == "end":
                error = None
                try:
                    if not self._ended:
                        if self._session is not None:
                            self._session.finish()
                        else:
                            self.service.flush()
                    self._ended = True
                except ReproError as exc:
                    error = str(exc)
                self._call_soon(self._on_end_done, error)
                continue
            if kind == "admin":
                _, op, args, payload, conn, rid = message
                try:
                    reply, reply_payload = self._admin_op(op, args, payload)
                    reply["rid"] = rid
                except ReproError as exc:
                    reply = {
                        "type": "error", "rid": rid,
                        "code": "admin", "message": str(exc),
                    }
                    reply_payload = None
                self._call_soon(self._post_safe, conn, reply, reply_payload)
                continue

    def _admin_op(self, op: str, args: Dict, payload) -> tuple:
        service = self.service
        if op == "subscribe":
            cells = np.unique(np.asarray(payload, dtype=np.int64))
            query = Query(
                qid=int(args["qid"]),
                cell_ids=cells,
                num_frames=int(args["num_frames"]),
                sketch=service.family.sketch(cells),
                label=str(args.get("label", "")),
            )
            backfill = int(args.get("backfill", 0))
            shard = service.subscribe(query, backfill=backfill)
            reply = {"type": "subscribed", "qid": query.qid,
                     "shard": shard, "epoch": service.epoch}
            if backfill:
                total, done, found = service.backfill_progress().get(
                    query.qid, (0, 0, 0)
                )
                reply["backfill"] = {"total": total, "done": done,
                                     "retro_matches": found}
            return reply, None
        if op == "unsubscribe":
            service.unsubscribe(int(args["qid"]))
            return {"type": "unsubscribed", "qid": int(args["qid"]),
                    "epoch": service.epoch}, None
        if op == "list_queries":
            return {"type": "queries", "queries": [
                {"qid": info.qid, "shard": info.shard,
                 "cap_windows": info.cap_windows,
                 "num_frames": info.num_frames, "label": info.label,
                 "status": info.status,
                 "backfill_total": info.backfill_total,
                 "backfill_done": info.backfill_done,
                 "retro_matches": info.retro_matches}
                for info in service.list_queries()
            ]}, None
        if op == "stats":
            merged = service.metrics_snapshot()
            merged["gateway"] = snapshot(self.registry)
            if self._session is not None:
                merged["gateway"]["stream"] = snapshot(
                    self._session.registry
                )
            return {"type": "stats", "snapshot": merged}, None
        if op == "checkpoint":
            if self.checkpoint_manager is None:
                raise GatewayError(
                    "this gateway was started without a checkpoint dir"
                )
            path = service.checkpoint(self.checkpoint_manager)
            self.registry.inc("gateway.checkpoints")
            return {"type": "checkpointed", "path": str(path)}, None
        raise GatewayError(f"unknown admin op {op!r}")

    def _call_soon(self, fn, *args) -> None:
        self._loop.call_soon_threadsafe(fn, *args)

    # ------------------------------------------------------------------
    # event-loop callbacks fed by the service thread
    # ------------------------------------------------------------------

    def _on_chunk_done(
        self, seq: int, num_matches: int, error: Optional[str]
    ) -> None:
        self._inflight -= 1
        conn = self._ingest_conn
        if conn is not None and not conn.closed:
            if conn.credits == 0:
                # The client was starved while this chunk cooked; the
                # refund below un-starves it.
                self.registry.inc("gateway.credit_stalls")
            conn.credits += 1
            header: Dict[str, object] = {
                "type": "ack", "seq": seq, "credit": 1,
                "matches": num_matches,
            }
            if error is not None:
                header = {"type": "chunk_error", "seq": seq, "credit": 1,
                          "message": error}
                self.registry.inc("gateway.errors")
            self._post_safe(conn, header)
        self._wake_watchers()

    def _on_end_done(self, error: Optional[str]) -> None:
        conn = self._ingest_conn
        if conn is not None and not conn.closed:
            if error is None:
                header = {"type": "ended",
                          "total_matches": len(self.service.collector),
                          "partial": bool(
                              getattr(self.service, "partial", False)
                          )}
            else:
                header = {"type": "error", "code": "end", "message": error}
            self._post_safe(conn, header)
        self._wake_watchers()

    def _wake_watchers(self) -> None:
        for watcher in self._watchers.values():
            watcher.wake.set()

    # ------------------------------------------------------------------
    # wire helpers
    # ------------------------------------------------------------------

    def _post(
        self, conn: _Connection, header: Dict[str, object], payload=None
    ) -> None:
        data = encode_frame(
            header, payload, max_frame_bytes=self.max_frame_bytes
        )
        conn.writer.write(data)
        conn.last_tx = self._loop.time()
        self.registry.inc("gateway.frames_out")
        self.registry.inc("gateway.bytes_out", len(data))

    def _post_safe(self, conn, header, payload=None) -> None:
        if conn.closed:
            return
        try:
            self._post(conn, header, payload)
        except Exception:
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            conn.writer.close()
        except Exception:
            pass
        if conn in self._conns:
            self._conns.remove(conn)
        if conn is self._ingest_conn:
            self._ingest_conn = None
        for token, watcher in list(self._watchers.items()):
            if watcher.conn is conn:
                self._watch_archive[token] = watcher.last_acked
                watcher.wake.set()
                del self._watchers[token]
        self.registry.set_gauge("gateway.open_connections", len(self._conns))

    async def _frames(self, conn: _Connection):
        """Yield frames off one connection until EOF or framing error."""
        reader = FrameReader(max_frame_bytes=self.max_frame_bytes)
        while not conn.closed:
            data = await conn.reader.read(65536)
            if not data:
                return
            conn.last_rx = self._loop.time()
            self.registry.inc("gateway.bytes_in", len(data))
            for header, payload in reader.feed(data):
                self.registry.inc("gateway.frames_in")
                yield header, payload

    async def _heartbeat(self, conn: _Connection) -> None:
        interval = max(self.heartbeat_seconds / 2.0, 0.05)
        while not conn.closed:
            await asyncio.sleep(interval)
            now = self._loop.time()
            if now - conn.last_rx > self.idle_timeout_seconds:
                self.registry.inc("gateway.idle_closes")
                self._close_conn(conn)
                return
            if now - conn.last_tx >= self.heartbeat_seconds:
                self.registry.inc("gateway.heartbeats")
                self._post_safe(conn, {"type": "ping"})

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader=reader, writer=writer)
        conn.last_rx = conn.last_tx = self._loop.time()
        self._conns.append(conn)
        self.registry.inc("gateway.connections")
        self.registry.set_gauge("gateway.open_connections", len(self._conns))
        heartbeat = asyncio.ensure_future(self._heartbeat(conn))
        self._tasks.append(heartbeat)
        try:
            await self._run_session(conn)
        except GatewayError as error:
            self.registry.inc("gateway.errors")
            self._post_safe(conn, {
                "type": "error", "code": "protocol", "message": str(error),
            })
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            heartbeat.cancel()
            if heartbeat in self._tasks:
                self._tasks.remove(heartbeat)
            self._close_conn(conn)

    async def _run_session(self, conn: _Connection) -> None:
        frames = self._frames(conn)
        hello = None
        async for header, payload in frames:
            hello = header
            break
        if hello is None:
            return
        if hello.get("type") != "hello":
            raise GatewayError(
                f"expected a hello frame, got {hello.get('type')!r}"
            )
        proto = hello.get("proto")
        if proto != WIRE_FORMAT:
            self._post_safe(conn, {
                "type": "error", "code": "version",
                "message": f"unsupported protocol {proto!r}",
                "supported": [WIRE_FORMAT],
            })
            self.registry.inc("gateway.version_rejects")
            return
        if self._closing:
            self._post_safe(conn, {
                "type": "goaway", "reason": "server draining", "resume": {},
            })
            return
        role = hello.get("role")
        conn.role = str(role)
        if role == "ingest":
            self.registry.inc("gateway.sessions.ingest")
            await self._run_ingest(conn, hello, frames)
        elif role == "watch":
            self.registry.inc("gateway.sessions.watch")
            await self._run_watch(conn, hello, frames)
        elif role == "admin":
            self.registry.inc("gateway.sessions.admin")
            self._post(conn, {
                "type": "welcome", "proto": WIRE_FORMAT, "role": "admin",
            })
            await self._run_admin(conn, frames)
        else:
            raise GatewayError(f"unknown session role {role!r}")

    # -- ingest ---------------------------------------------------------

    def _bind_ingest(self, conn: _Connection, hello: Dict) -> None:
        if self._ingest_conn is not None and not self._ingest_conn.closed:
            raise GatewayError(
                "the stream is already attached to a live ingest session"
            )
        token = hello.get("resume_token")
        if self._ingest_token is None:
            if token:
                raise GatewayError(
                    "nothing to resume: this gateway holds no stream yet"
                )
            self._stream_id = int(hello.get("stream_id", 0))
            self._ingest_token = secrets.token_hex(8)
            self._session = StreamSession(
                self._stream_id,
                self.service.config,
                None,
                self.service.keyframes_per_second,
                extractor=self.extractor,
                policy=self.degrade,
                sink=ServiceSink(self.service),
            )
        else:
            if token != self._ingest_token:
                raise GatewayError(
                    "this gateway already holds a stream; reconnecting "
                    "requires its resume token"
                )
            self.registry.inc("gateway.resumes")
        self._ingest_conn = conn

    async def _run_ingest(self, conn, hello, frames) -> None:
        self._bind_ingest(conn, hello)
        conn.credits = max(0, self.credit_window - self._inflight)
        self._post(conn, {
            "type": "welcome", "proto": WIRE_FORMAT, "role": "ingest",
            "token": self._ingest_token, "credits": conn.credits,
            "last_seq": self._last_done_seq,
            "policy": self.policy.value,
        })
        loop = asyncio.get_running_loop()
        async for header, payload in frames:
            kind = header.get("type")
            if kind == "pong":
                continue
            if kind == "bye":
                return
            if kind == "chunk":
                if self._ended:
                    raise GatewayError("the stream has already been flushed")
                if conn.credits <= 0:
                    raise GatewayError(
                        "credit overrun: chunk pushed with zero credits"
                    )
                chunk = self._decode_chunk(header, payload)
                conn.credits -= 1
                self.registry.inc("gateway.chunks")
                outcome = self._pending.put(("chunk", chunk), self.policy)
                dropped_seqs: List[int] = []
                if outcome.delivered:
                    self._inflight += 1
                else:  # shed: the chunk never entered the channel
                    dropped_seqs.append(chunk.seq)
                for item in outcome.dropped:  # drop_oldest casualties
                    if (
                        isinstance(item, tuple)
                        and item
                        and item[0] == "chunk"
                    ):
                        dropped_seqs.append(item[1].seq)
                        self._inflight -= 1
                    else:
                        # The steal grabbed a queued control message
                        # (admin op / end marker). Those must never be
                        # lost: re-deliver off-loop with BLOCK — the
                        # service thread always drains, so it lands.
                        loop.run_in_executor(
                            None, self._pending.put, item,
                            BackpressurePolicy.BLOCK,
                        )
                if dropped_seqs:
                    conn.credits += len(dropped_seqs)
                    self.registry.inc("gateway.drops", len(dropped_seqs))
                    self._post_safe(conn, {
                        "type": "drop", "seqs": dropped_seqs,
                        "count": len(dropped_seqs),
                        "policy": self.policy.value,
                    })
                continue
            if kind == "end":
                await loop.run_in_executor(
                    None, self._pending.put, ("end",),
                    BackpressurePolicy.BLOCK,
                )
                continue
            raise GatewayError(f"unexpected {kind!r} frame on an ingest "
                               "session")

    def _decode_chunk(self, header: Dict, payload) -> StreamChunk:
        seq = header.get("seq")
        if not isinstance(seq, int) or seq < 0:
            raise GatewayError(f"chunk frame needs a non-negative integer "
                               f"seq, got {seq!r}")
        if payload is None:
            raise GatewayError(f"chunk {seq} carries no payload")
        kind = header.get("kind", "cells")
        if kind == "cells":
            return StreamChunk(
                stream_id=self._stream_id, seq=seq,
                payload=np.asarray(payload, dtype=np.int64),
            )
        if kind == "encoded":
            meta = header.get("meta")
            if not isinstance(meta, dict):
                raise GatewayError(f"encoded chunk {seq} lacks meta")
            try:
                video = EncodedVideo(
                    data=np.asarray(payload, dtype=np.uint8).tobytes(),
                    fps=float(meta["fps"]),
                    entropy_coding=bool(meta.get("entropy_coding", False)),
                    **{name: int(meta[name]) for name in _ENCODED_META_FIELDS},
                )
            except (KeyError, TypeError, ValueError) as error:
                raise GatewayError(
                    f"encoded chunk {seq} has bad meta: {error}"
                )
            return StreamChunk(
                stream_id=self._stream_id, seq=seq, payload=video
            )
        raise GatewayError(f"unknown chunk kind {kind!r}")

    # -- watch ----------------------------------------------------------

    async def _run_watch(self, conn, hello, frames) -> None:
        token = hello.get("resume_token")
        if token:
            if token not in self._watch_archive:
                raise GatewayError("unknown watch resume token")
            archived = self._watch_archive.pop(token)
            last_acked = int(hello.get("last_acked", archived))
            self.registry.inc("gateway.resumes")
        else:
            token = secrets.token_hex(8)
            last_acked = int(hello.get("last_acked", -1))
        watcher = _Watcher(
            conn=conn,
            token=token,
            cursor=last_acked + 1,
            credits=int(hello.get("credits", 8)),
            last_acked=last_acked,
        )
        self._watchers[token] = watcher
        self._post(conn, {
            "type": "welcome", "proto": WIRE_FORMAT, "role": "watch",
            "token": token, "next_match": watcher.cursor,
        })
        pump = asyncio.ensure_future(self._watch_pump(watcher))
        self._tasks.append(pump)
        try:
            async for header, payload in frames:
                kind = header.get("type")
                if kind == "pong":
                    continue
                if kind == "bye":
                    return
                if kind in ("match_ack", "credit"):
                    if "id" in header:
                        watcher.last_acked = max(
                            watcher.last_acked, int(header["id"])
                        )
                    grant = int(header.get("credit", 0))
                    if grant > 0:
                        watcher.credits += grant
                        watcher.wake.set()
                    continue
                raise GatewayError(
                    f"unexpected {kind!r} frame on a watch session"
                )
        finally:
            pump.cancel()
            if pump in self._tasks:
                self._tasks.remove(pump)

    async def _watch_pump(self, watcher: _Watcher) -> None:
        """Push matches as the collector grows, within granted credit.

        The cursor walks the collector's own list — the server holds no
        per-watcher copy, so a stalled watcher pins no extra memory.
        """
        conn = watcher.conn
        try:
            while not conn.closed:
                matches = self.service.collector.matches
                while watcher.cursor < len(matches) and watcher.credits > 0:
                    match = matches[watcher.cursor]
                    self._post(conn, {
                        "type": "match", "id": watcher.cursor,
                        "qid": match.qid,
                        "window_index": match.window_index,
                        "start_frame": match.start_frame,
                        "end_frame": match.end_frame,
                        "similarity": match.similarity,
                    })
                    watcher.cursor += 1
                    watcher.credits -= 1
                    self.registry.inc("gateway.matches_pushed")
                    await conn.writer.drain()
                matches = self.service.collector.matches
                if self._ended and watcher.cursor >= len(matches):
                    self._post_safe(conn, {
                        "type": "stream_end", "total": len(matches),
                    })
                    return
                watcher.wake.clear()
                # Re-check before sleeping: a wake may have landed
                # between the scan above and the clear.
                if watcher.cursor < len(matches) and watcher.credits > 0:
                    continue
                await watcher.wake.wait()
        except (ConnectionError, RuntimeError):
            self._close_conn(conn)

    # -- admin ----------------------------------------------------------

    async def _run_admin(self, conn, frames) -> None:
        loop = asyncio.get_running_loop()
        async for header, payload in frames:
            kind = header.get("type")
            if kind == "pong":
                continue
            if kind == "bye":
                return
            if kind in (
                "subscribe", "unsubscribe", "list_queries", "stats",
                "checkpoint",
            ):
                rid = header.get("rid", 0)
                await loop.run_in_executor(
                    None, self._pending.put,
                    ("admin", kind, header, payload, conn, rid),
                    BackpressurePolicy.BLOCK,
                )
                continue
            raise GatewayError(
                f"unexpected {kind!r} frame on an admin session"
            )

    # ------------------------------------------------------------------
    # threaded embedding
    # ------------------------------------------------------------------

    def run_in_thread(self) -> "GatewayHandle":
        """Start the whole server on a background thread.

        Returns a :class:`GatewayHandle` whose ``port`` is bound and
        whose ``stop()`` performs the graceful drain. Used by tests,
        benchmarks and anything embedding a gateway next to other work.
        """
        started = threading.Event()
        failure: List[BaseException] = []

        async def _main() -> None:
            try:
                await self.start()
            except BaseException as error:  # surface bind failures
                failure.append(error)
                started.set()
                raise
            started.set()
            await self.wait_stopped()

        def _thread_main() -> None:
            try:
                asyncio.run(_main())
            except BaseException:
                if not failure:
                    raise

        thread = threading.Thread(
            target=_thread_main, name="repro-gateway", daemon=True
        )
        thread.start()
        started.wait(timeout=30.0)
        if failure:
            raise GatewayError(f"gateway failed to start: {failure[0]}")
        if self._loop is None:
            raise GatewayError("gateway failed to start within 30s")
        return GatewayHandle(self, thread)


class GatewayHandle:
    """A gateway running on its own thread (see ``run_in_thread``)."""

    def __init__(self, server: GatewayServer, thread: threading.Thread):
        self.server = server
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(
        self, drain: bool = True, flush: bool = True, timeout: float = 60.0
    ) -> None:
        """Graceful drain + shutdown; joins the server thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain, flush=flush),
            self.server._loop,
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise GatewayError("gateway thread failed to stop")
