"""Blocking client library for the ``repro.wire/1`` gateway.

Three small clients mirror the server's session kinds:

* :class:`IngestClient` — pushes chunks under the server's credit
  window, surfaces ``drop`` notices and per-chunk acks, and supports
  resume: construct with the ``token`` of a previous (dead) session and
  re-push from ``last_seq + 1`` — overlap is deduplicated server-side,
  so replaying more than necessary is safe.
* :class:`WatchClient` — iterates server-pushed match events in
  canonical order, acknowledging each (which both advances the resume
  cursor and refunds a flow-control credit).
* :class:`AdminClient` — request/response query lifecycle and stats.

All three ride one :class:`GatewayConnection`, a blocking socket that
answers heartbeat pings transparently. Nothing here touches asyncio —
the clients are meant for CLI verbs, tests and benchmarks that drive a
gateway from ordinary synchronous code.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.codec.gop import EncodedVideo
from repro.errors import GatewayError
from repro.gateway.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameReader,
    WIRE_FORMAT,
    encode_frame,
)

__all__ = [
    "AdminClient",
    "GatewayClosed",
    "GatewayConnection",
    "IngestClient",
    "WatchClient",
]


class GatewayClosed(GatewayError):
    """The server went away (goaway, drain, or dropped connection).

    ``resume`` carries the server's parting resume state when a goaway
    frame delivered one (token + position); ``None`` for an abrupt
    close.
    """

    def __init__(self, message: str, resume: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.resume = resume or None


class GatewayConnection:
    """One blocking ``repro.wire/1`` connection.

    Handles framing (via :class:`~repro.gateway.protocol.FrameReader`)
    and answers server ``ping`` frames transparently; everything else
    is returned to the caller in arrival order.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = FrameReader(max_frame_bytes=self.max_frame_bytes)
        self._queue: Deque[Tuple[Dict, Optional[np.ndarray]]] = deque()
        self.closed = False

    def send(self, header: Dict, payload: Optional[np.ndarray] = None) -> None:
        if self.closed:
            raise GatewayError("the connection is closed")
        data = encode_frame(
            header, payload, max_frame_bytes=self.max_frame_bytes
        )
        try:
            self._sock.sendall(data)
        except OSError as error:
            raise GatewayClosed(f"connection lost: {error}")

    def recv(self) -> Tuple[Dict, Optional[np.ndarray]]:
        """Next non-ping frame; raises :class:`GatewayClosed` on EOF."""
        while True:
            while not self._queue:
                try:
                    data = self._sock.recv(65536)
                except (ConnectionError, OSError) as error:
                    raise GatewayClosed(f"connection lost: {error}")
                if not data:
                    raise GatewayClosed("connection closed by server")
                self._queue.extend(self._reader.feed(data))
            header, payload = self._queue.popleft()
            if header.get("type") == "ping":
                try:
                    self.send({"type": "pong"})
                except (GatewayError, OSError):
                    pass
                continue
            return header, payload

    def close(self, polite: bool = True) -> None:
        """Close the socket; ``polite`` sends a ``bye`` first."""
        if self.closed:
            return
        if polite:
            try:
                self.send({"type": "bye"})
            except (GatewayError, OSError):
                pass
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Drop the socket abruptly — simulates a client crash."""
        self.close(polite=False)

    def __enter__(self) -> "GatewayConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _handshake(conn: GatewayConnection, hello: Dict) -> Dict:
    conn.send(hello)
    header, _ = conn.recv()
    kind = header.get("type")
    if kind == "welcome":
        return header
    conn.close(polite=False)
    if kind == "goaway":
        raise GatewayClosed(
            f"server refused the session: {header.get('reason')}",
            header.get("resume"),
        )
    if kind == "error":
        raise GatewayError(
            f"{header.get('code', 'error')}: {header.get('message')}"
        )
    raise GatewayError(f"expected welcome, got {kind!r}")


class IngestClient:
    """Push a stream's chunks through a gateway's ingest session.

    Attributes
    ----------
    token:
        The server-minted resume token; hand it to a new client (with
        ``resume_token=``) after a crash.
    last_seq:
        Highest seq the *server* had fully processed at welcome — the
        resume point; re-push from ``last_seq + 1``.
    credits:
        The client's current view of its credit window.
    dropped:
        Seqs the server reported dropped (lossy backpressure policies).
    acked:
        ``seq -> match count`` for every acknowledged chunk.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        stream_id: int = 0,
        resume_token: Optional[str] = None,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._conn = GatewayConnection(
            host, port, timeout=timeout, max_frame_bytes=max_frame_bytes
        )
        hello: Dict[str, object] = {
            "type": "hello", "proto": WIRE_FORMAT, "role": "ingest",
            "stream_id": stream_id,
        }
        if resume_token:
            hello["resume_token"] = resume_token
        welcome = _handshake(self._conn, hello)
        self.token: str = welcome["token"]
        self.credits: int = int(welcome["credits"])
        self.last_seq: int = int(welcome["last_seq"])
        self.policy: str = str(welcome.get("policy", "block"))
        self.acked: Dict[int, int] = {}
        self.dropped: List[int] = []
        self.chunk_errors: Dict[int, str] = {}
        self._outstanding: set = set()

    # -- frame pump -----------------------------------------------------

    def _handle(self, header: Dict) -> None:
        kind = header.get("type")
        if kind == "ack":
            seq = int(header["seq"])
            self.credits += int(header.get("credit", 1))
            self._outstanding.discard(seq)
            self.acked[seq] = int(header.get("matches", 0))
            return
        if kind == "chunk_error":
            seq = int(header["seq"])
            self.credits += int(header.get("credit", 1))
            self._outstanding.discard(seq)
            self.chunk_errors[seq] = str(header.get("message", ""))
            return
        if kind == "drop":
            seqs = [int(seq) for seq in header.get("seqs", [])]
            self.credits += int(header.get("count", len(seqs)))
            for seq in seqs:
                self._outstanding.discard(seq)
            self.dropped.extend(seqs)
            return
        if kind == "goaway":
            raise GatewayClosed("server draining", header.get("resume"))
        if kind == "error":
            raise GatewayError(
                f"{header.get('code', 'error')}: {header.get('message')}"
            )
        raise GatewayError(f"unexpected {kind!r} frame on ingest session")

    def _pump_once(self) -> None:
        header, _ = self._conn.recv()
        self._handle(header)

    # -- pushing --------------------------------------------------------

    def push(self, seq: int, cell_ids) -> None:
        """Push one cell-id chunk, waiting for credit if starved."""
        while self.credits <= 0:
            self._pump_once()
        self._conn.send(
            {"type": "chunk", "seq": int(seq), "kind": "cells"},
            np.asarray(cell_ids, dtype=np.int64),
        )
        self.credits -= 1
        self._outstanding.add(int(seq))

    def push_encoded(self, seq: int, video: EncodedVideo) -> None:
        """Push one encoded-bitstream chunk (decoded server-side)."""
        while self.credits <= 0:
            self._pump_once()
        meta = {
            "width": video.width, "height": video.height,
            "block_size": video.block_size, "quality": video.quality,
            "gop_size": video.gop_size, "num_frames": video.num_frames,
            "fps": video.fps, "entropy_coding": video.entropy_coding,
        }
        self._conn.send(
            {"type": "chunk", "seq": int(seq), "kind": "encoded",
             "meta": meta},
            np.frombuffer(video.data, dtype=np.uint8),
        )
        self.credits -= 1
        self._outstanding.add(int(seq))

    def drain(self) -> None:
        """Block until every pushed chunk is acked or dropped."""
        while self._outstanding:
            self._pump_once()

    def end(self) -> int:
        """Flush the stream's tail; returns the server's total match
        count. The session stays open (e.g. for an admin to inspect)."""
        self.drain()
        self._conn.send({"type": "end"})
        while True:
            header, _ = self._conn.recv()
            if header.get("type") == "ended":
                return int(header["total_matches"])
            self._handle(header)

    def close(self) -> None:
        self._conn.close()

    def kill(self) -> None:
        """Crash the connection (no bye, no drain) — for resume tests."""
        self._conn.kill()

    def __enter__(self) -> "IngestClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WatchClient:
    """Consume the gateway's pushed match stream in canonical order."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        credits: int = 32,
        resume_token: Optional[str] = None,
        last_acked: Optional[int] = None,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._conn = GatewayConnection(
            host, port, timeout=timeout, max_frame_bytes=max_frame_bytes
        )
        hello: Dict[str, object] = {
            "type": "hello", "proto": WIRE_FORMAT, "role": "watch",
            "credits": int(credits),
        }
        if resume_token:
            hello["resume_token"] = resume_token
        if last_acked is not None:
            hello["last_acked"] = int(last_acked)
        welcome = _handshake(self._conn, hello)
        self.token: str = welcome["token"]
        self.next_match: int = int(welcome["next_match"])
        self.last_acked: int = self.next_match - 1
        self.total: Optional[int] = None

    def matches(self) -> Iterator[Dict]:
        """Yield match event headers until the stream ends.

        Each yielded event is acknowledged (and its credit refunded)
        before the next is requested, so ``last_acked`` always trails
        the consumed stream by at most one event — the resume cursor a
        replacement watcher passes as ``last_acked``.
        """
        while True:
            try:
                header, _ = self._conn.recv()
            except GatewayClosed:
                return
            kind = header.get("type")
            if kind == "match":
                event_id = int(header["id"])
                try:
                    self._conn.send(
                        {"type": "match_ack", "id": event_id, "credit": 1}
                    )
                except GatewayClosed:
                    # A draining server may close after pushing its
                    # final matches; the event is already delivered,
                    # and ``last_acked`` is our own resume cursor.
                    pass
                self.last_acked = event_id
                yield header
                continue
            if kind == "stream_end":
                self.total = int(header.get("total", -1))
                return
            if kind == "goaway":
                return
            if kind == "error":
                raise GatewayError(
                    f"{header.get('code', 'error')}: {header.get('message')}"
                )
            raise GatewayError(
                f"unexpected {kind!r} frame on watch session"
            )

    def close(self) -> None:
        self._conn.close()

    def kill(self) -> None:
        self._conn.kill()

    def __enter__(self) -> "WatchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AdminClient:
    """Request/response control plane: lifecycle, stats, checkpoints."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._conn = GatewayConnection(
            host, port, timeout=timeout, max_frame_bytes=max_frame_bytes
        )
        _handshake(self._conn, {
            "type": "hello", "proto": WIRE_FORMAT, "role": "admin",
        })
        self._rid = 0

    def _request(
        self, header: Dict, payload: Optional[np.ndarray] = None
    ) -> Dict:
        self._rid += 1
        header = dict(header, rid=self._rid)
        self._conn.send(header, payload)
        while True:
            reply, _ = self._conn.recv()
            if reply.get("type") == "goaway":
                raise GatewayClosed("server draining", reply.get("resume"))
            if reply.get("rid") != self._rid:
                continue
            if reply.get("type") == "error":
                raise GatewayError(
                    f"{reply.get('code', 'error')}: {reply.get('message')}"
                )
            return reply

    def subscribe(
        self,
        qid: int,
        cell_ids,
        num_frames: int,
        label: str = "",
        backfill: int = 0,
    ) -> int:
        """Admit a query mid-stream; returns the shard it landed on.

        The query is sketched server-side under the service's own hash
        family, so the caller ships raw cell ids — no family state
        crosses the wire. ``backfill=N`` asks the service to
        retrospectively probe the last N archived basic windows for
        this query (requires a server started with a sketch archive);
        progress is visible through :meth:`list_queries` —
        ``backfill_total`` / ``backfill_done`` / ``retro_matches``.
        """
        request = {"type": "subscribe", "qid": int(qid),
                   "num_frames": int(num_frames), "label": label}
        if backfill:
            request["backfill"] = int(backfill)
        reply = self._request(
            request, np.asarray(cell_ids, dtype=np.int64)
        )
        return int(reply["shard"])

    def unsubscribe(self, qid: int) -> None:
        self._request({"type": "unsubscribe", "qid": int(qid)})

    def list_queries(self) -> List[Dict]:
        return list(self._request({"type": "list_queries"})["queries"])

    def stats(self) -> Dict:
        """The merged ``repro.obs/1`` snapshot, gateway section included."""
        return dict(self._request({"type": "stats"})["snapshot"])

    def checkpoint(self) -> str:
        """Ask the gateway to write a service checkpoint; returns its
        path (requires the server to be started with a checkpoint
        directory)."""
        return str(self._request({"type": "checkpoint"})["path"])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
