"""Networked streaming detection: the ``repro.wire/1`` gateway.

The serving and ingestion layers are in-process APIs; this subpackage
puts them behind a socket so detection can run as a long-lived service:

* :mod:`repro.gateway.protocol` — the versioned length-prefixed binary
  frame format (JSON control header + raw numpy payload, CRC-checked).
* :mod:`repro.gateway.server` — the asyncio TCP server fronting one
  :class:`~repro.serve.DetectionService`: ingest / admin / watch
  sessions, credit-based flow control mapped onto the serving layer's
  backpressure policies, heartbeats, graceful drain, and replay-free
  reconnect/resume.
* :mod:`repro.gateway.client` — blocking clients for the three session
  kinds, used by the ``repro gateway`` / ``repro push`` /
  ``repro watch`` CLI verbs, the test suite and the benchmarks.

See ``docs/gateway.md`` for the protocol spec and the flow-control and
resume semantics.
"""

from repro.gateway.client import (
    AdminClient,
    GatewayClosed,
    GatewayConnection,
    IngestClient,
    WatchClient,
)
from repro.gateway.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorrupt,
    FrameReader,
    FrameTooLarge,
    WIRE_FORMAT,
    decode_frame,
    encode_frame,
)
from repro.gateway.server import GatewayHandle, GatewayServer, ServiceSink

__all__ = [
    "AdminClient",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameCorrupt",
    "FrameReader",
    "FrameTooLarge",
    "GatewayClosed",
    "GatewayConnection",
    "GatewayHandle",
    "GatewayServer",
    "IngestClient",
    "ServiceSink",
    "WatchClient",
    "WIRE_FORMAT",
    "decode_frame",
    "encode_frame",
]
