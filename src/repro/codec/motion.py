"""Block motion estimation and compensation.

Real MPEG P frames are not plain frame differences: each macroblock is
predicted from a *motion-shifted* block of the reference frame, and only
the residual is transformed. This module implements exhaustive
block-matching motion search over a ±``search_range`` window, vectorised
by candidate offset: for every offset the SAD of *all* blocks against
the shifted reference is computed in one array operation, then each
block picks its arg-min offset.

Used by :func:`repro.codec.gop.encode_video` when ``motion_search`` is
enabled; the bitstream then carries per-block motion vectors ahead of
the residual scans.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CodecError

__all__ = ["compensate", "motion_search"]


def _shifted(reference: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Reference frame translated by (dy, dx) with edge replication.

    Pixels shifted in from outside the frame take the nearest edge value,
    matching the unrestricted-motion-vector edge handling of real codecs.
    """
    rows, cols = reference.shape
    row_index = np.clip(np.arange(rows) + dy, 0, rows - 1)
    col_index = np.clip(np.arange(cols) + dx, 0, cols - 1)
    return reference[np.ix_(row_index, col_index)]


def motion_search(
    reference: np.ndarray,
    target: np.ndarray,
    block_size: int = 8,
    search_range: int = 4,
) -> np.ndarray:
    """Exhaustive block-matching search.

    Parameters
    ----------
    reference:
        The previously reconstructed frame (prediction source).
    target:
        The frame being encoded. Must share the reference's shape, with
        both sides multiples of ``block_size``.
    block_size:
        Macroblock side.
    search_range:
        Maximum absolute displacement per axis; the search visits all
        ``(2R+1)^2`` integer offsets.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(grid_rows, grid_cols, 2)``; entry
        ``[r, c]`` is the ``(dy, dx)`` minimising the block's sum of
        absolute differences (ties resolved toward the zero vector by
        search order).
    """
    if reference.shape != target.shape:
        raise CodecError(
            f"reference {reference.shape} and target {target.shape} differ"
        )
    rows, cols = target.shape
    if rows % block_size or cols % block_size:
        raise CodecError(
            f"frame {rows}x{cols} is not a multiple of block size {block_size}"
        )
    if search_range < 0:
        raise CodecError(f"search_range must be non-negative, got {search_range}")
    grid_rows = rows // block_size
    grid_cols = cols // block_size

    # Visit offsets in increasing |dy|+|dx| so ties favour small vectors.
    offsets = sorted(
        (
            (dy, dx)
            for dy in range(-search_range, search_range + 1)
            for dx in range(-search_range, search_range + 1)
        ),
        key=lambda o: (abs(o[0]) + abs(o[1]), o),
    )

    best_sad = np.full((grid_rows, grid_cols), np.inf)
    best_vector = np.zeros((grid_rows, grid_cols, 2), dtype=np.int64)
    target64 = target.astype(np.float64)
    for dy, dx in offsets:
        difference = np.abs(target64 - _shifted(reference, dy, dx))
        sad = (
            difference.reshape(grid_rows, block_size, grid_cols, block_size)
            .sum(axis=(1, 3))
        )
        better = sad < best_sad
        best_sad = np.where(better, sad, best_sad)
        best_vector[better] = (dy, dx)
    return best_vector


def compensate(
    reference: np.ndarray,
    vectors: np.ndarray,
    block_size: int = 8,
) -> np.ndarray:
    """Build the motion-compensated prediction frame.

    Each output block is the reference block displaced by that block's
    vector (edge-replicated at frame borders). Exact inverse of the
    encoder's prediction, so encoder and decoder stay in lockstep.
    """
    rows, cols = reference.shape
    grid_rows, grid_cols = vectors.shape[:2]
    if (grid_rows * block_size, grid_cols * block_size) != (rows, cols):
        raise CodecError(
            f"vector grid {grid_rows}x{grid_cols} does not tile a "
            f"{rows}x{cols} frame with {block_size}px blocks"
        )
    prediction = np.empty_like(reference, dtype=np.float64)
    for grid_row in range(grid_rows):
        for grid_col in range(grid_cols):
            dy, dx = (int(v) for v in vectors[grid_row, grid_col])
            row0 = grid_row * block_size
            col0 = grid_col * block_size
            source_rows = np.clip(
                np.arange(row0, row0 + block_size) + dy, 0, rows - 1
            )
            source_cols = np.clip(
                np.arange(col0, col0 + block_size) + dx, 0, cols - 1
            )
            prediction[row0 : row0 + block_size, col0 : col0 + block_size] = (
                reference[np.ix_(source_rows, source_cols)]
            )
    return prediction
