"""JPEG-style coefficient quantisation with a quality factor.

Quantisation is the lossy step of the codec and the mechanism through which
*re-compression attacks* perturb the DC coefficients the detector consumes:
encoding a clip at a different quality changes the quantisation matrix and
therefore the reconstructed block averages, just as the paper's VS2 stream
re-compresses its clips with different settings.

The luminance base matrix is the ITU-T T.81 Annex K table; the quality
scaling follows the convention popularised by libjpeg.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["dequantize_block", "quantization_matrix", "quantize_block"]

#: ITU-T T.81 Annex K luminance quantisation table (quality 50 baseline).
_BASE_LUMINANCE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quantization_matrix(quality: int, block_size: int = 8) -> np.ndarray:
    """Return the quantisation matrix for the given JPEG-style quality.

    Parameters
    ----------
    quality:
        Integer in [1, 100]. 50 reproduces the Annex K table; higher keeps
        more detail, lower discards more.
    block_size:
        Side of the (square) block. For sizes other than 8 the Annex K
        table is resampled by nearest neighbour, which preserves its
        low-frequency-lenient structure.
    """
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    if block_size <= 0:
        raise CodecError(f"block_size must be positive, got {block_size}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((_BASE_LUMINANCE * scale + 50.0) / 100.0)
    table = np.clip(table, 1.0, 255.0)
    if block_size != 8:
        idx = np.minimum((np.arange(block_size) * 8) // block_size, 7)
        table = table[np.ix_(idx, idx)]
    return table


def quantize_block(coefficients: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients to integers: ``round(F / Q)``."""
    if coefficients.shape != matrix.shape:
        raise CodecError(
            f"coefficient shape {coefficients.shape} does not match "
            f"quantisation matrix shape {matrix.shape}"
        )
    return np.round(coefficients / matrix).astype(np.int32)


def dequantize_block(levels: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Reconstruct coefficients from quantised levels: ``L * Q``."""
    if levels.shape != matrix.shape:
        raise CodecError(
            f"level shape {levels.shape} does not match "
            f"quantisation matrix shape {matrix.shape}"
        )
    return levels.astype(np.float64) * matrix
