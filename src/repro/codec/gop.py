"""Group-of-pictures encoder and the full / partial decoders.

Encoding follows the classic intra/predicted split:

* every ``gop_size``-th frame is an **I frame**: level-shifted, tiled into
  blocks, DCT-transformed, quantised and stored;
* the frames in between are **P frames**: the residual against the
  *reconstructed* previous frame is transformed and quantised, so decoder
  drift matches a real codec's behaviour.

Two decoders are provided:

* :func:`decode_video` — the full inverse pipeline (parse, dequantise,
  inverse DCT, motion-free prediction add-back).
* :func:`decode_dc_coefficients` — the **partial decoder** the paper's
  feature extractor uses: it walks the bitstream, reads only the first
  (DC) level of every block of every I frame, skips all AC levels and all
  P frames, and never performs an inverse DCT. For an orthonormal N x N
  DCT the dequantised DC relates to the block mean as ``DC = N * mean``,
  which is all the fingerprint needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.codec.bitstream import BitstreamReader, BitstreamWriter
from repro.codec.blocks import assemble_blocks, pad_to_blocks, split_into_blocks
from repro.codec.dct import dct2, idct2
from repro.codec.entropy import (
    BitReader,
    BitWriter,
    decode_block_scan,
    encode_block_scan,
    skip_block_scan_keep_dc,
)
from repro.codec.motion import compensate, motion_search
from repro.codec.quantize import dequantize_block, quantization_matrix, quantize_block
from repro.codec.zigzag import zigzag_order, zigzag_restore
from repro.errors import BitstreamError, CodecError

__all__ = [
    "EncodedVideo",
    "decode_dc_coefficients",
    "decode_video",
    "encode_video",
    "walk_dc_record",
]


@dataclass(frozen=True)
class EncodedVideo:
    """A serialised video bitstream plus its parsed header.

    Attributes
    ----------
    data:
        The raw byte string (magic + header + frame records).
    width, height:
        Original frame size in pixels (before block padding).
    block_size:
        Side of the square transform blocks.
    quality:
        JPEG-style quality factor in [1, 100] used at encode time.
    gop_size:
        Distance between consecutive I frames (1 = all-intra).
    num_frames:
        Total number of frames in the stream.
    fps:
        Nominal frame rate, for converting frame indices to seconds.
    entropy_coding:
        Whether block data is packed with exponential-Golomb codes
        (bit-level) instead of byte-aligned varints.
    """

    data: bytes
    width: int
    height: int
    block_size: int
    quality: int
    gop_size: int
    num_frames: int
    fps: float
    entropy_coding: bool = False

    @property
    def num_keyframes(self) -> int:
        """Number of I frames in the stream."""
        if self.num_frames == 0:
            return 0
        return 1 + (self.num_frames - 1) // self.gop_size

    @property
    def size_bytes(self) -> int:
        """Length of the serialised bitstream."""
        return len(self.data)


def _encode_levels(writer: BitstreamWriter, levels: np.ndarray) -> None:
    """Write one block's quantised levels as a truncated zig-zag scan."""
    scan = zigzag_order(levels)
    nonzero = np.nonzero(scan)[0]
    keep = int(nonzero[-1]) + 1 if nonzero.size else 1  # always keep the DC
    writer.write_uvarint(keep)
    for value in scan[:keep]:
        writer.write_svarint(int(value))


def _decode_levels(reader: BitstreamReader, block_size: int) -> np.ndarray:
    """Read one block's scan back into a square level array."""
    keep = reader.read_uvarint()
    total = block_size * block_size
    if keep > total:
        raise BitstreamError(
            f"block scan claims {keep} values but a block holds {total}"
        )
    scan = np.zeros(total, dtype=np.int64)
    for position in range(keep):
        scan[position] = reader.read_svarint()
    return zigzag_restore(scan, block_size)


def _skip_block_keep_dc(reader: BitstreamReader) -> int:
    """Read only the DC level of a block record, skipping the AC tail."""
    keep = reader.read_uvarint()
    if keep < 1:
        raise BitstreamError("block record with zero stored values")
    dc = reader.read_svarint()
    reader.skip_uvarints(keep - 1)
    return dc


def _skip_block(reader: BitstreamReader) -> None:
    """Skip a whole block record without decoding any level."""
    keep = reader.read_uvarint()
    reader.skip_uvarints(keep)


def encode_video(
    frames: np.ndarray,
    fps: float,
    quality: int = 75,
    gop_size: int = 12,
    block_size: int = 8,
    use_motion: bool = False,
    search_range: int = 4,
    entropy_coding: bool = False,
) -> EncodedVideo:
    """Encode a grayscale frame stack into a toy-MPEG bitstream.

    Parameters
    ----------
    frames:
        Array of shape ``(n, height, width)``; values are interpreted as
        luminance in [0, 255] (floats are fine).
    fps:
        Nominal frame rate, stored in the header.
    quality:
        JPEG-style quality in [1, 100]. Lower quality = coarser
        quantisation = stronger re-compression attack.
    gop_size:
        I-frame period (frame 0 is always an I frame).
    block_size:
        Transform block side.
    use_motion:
        Encode predicted frames with block motion compensation ("M"
        records carrying one ``(dy, dx)`` vector per block ahead of the
        residual scan) instead of plain frame differencing. Smaller
        residuals for panning/moving content at the cost of the motion
        search.
    search_range:
        Motion-search radius in pixels (only with ``use_motion``).
    entropy_coding:
        Pack block data with bit-level exponential-Golomb codes (DC +
        zero-run/level pairs) instead of byte-aligned varints — tighter
        streams, and a partial decoder that must genuinely walk
        variable-length codes. Each frame's coded payload is preceded by
        its byte length, playing the role of MPEG's slice resync marker.
    """
    if frames.ndim != 3:
        raise CodecError(f"expected (n, h, w) frames, got shape {frames.shape}")
    if frames.shape[0] == 0:
        raise CodecError("cannot encode an empty frame stack")
    if gop_size <= 0:
        raise CodecError(f"gop_size must be positive, got {gop_size}")
    if fps <= 0:
        raise CodecError(f"fps must be positive, got {fps}")

    num_frames, height, width = frames.shape
    q_matrix = quantization_matrix(quality, block_size)

    writer = BitstreamWriter()
    writer.write_magic()
    for value in (width, height, block_size, quality, gop_size, num_frames):
        writer.write_uvarint(value)
    writer.write_uvarint(round(fps * 1000))
    writer.write_uvarint(1 if entropy_coding else 0)  # format flags

    previous_reconstruction: np.ndarray | None = None
    vectors: np.ndarray | None = None
    for frame_index in range(num_frames):
        frame = frames[frame_index].astype(np.float64)
        is_intra = frame_index % gop_size == 0
        prediction: np.ndarray | None = None
        if is_intra:
            source = frame - 128.0
            writer.write_bytes(b"I")
        elif use_motion:
            assert previous_reconstruction is not None
            padded_reference = pad_to_blocks(previous_reconstruction, block_size)
            padded_frame = pad_to_blocks(frame, block_size)
            vectors = motion_search(
                padded_reference, padded_frame, block_size, search_range
            )
            prediction = compensate(padded_reference, vectors, block_size)
            source = padded_frame - prediction
            writer.write_bytes(b"M")
        else:
            assert previous_reconstruction is not None
            source = frame - previous_reconstruction
            writer.write_bytes(b"P")

        block_grid = split_into_blocks(source, block_size)
        grid_rows, grid_cols = block_grid.shape[:2]
        writer.write_uvarint(grid_rows * grid_cols)

        bit_writer = BitWriter() if entropy_coding else None
        reconstructed_blocks = np.empty_like(block_grid)
        for row in range(grid_rows):
            for col in range(grid_cols):
                if prediction is not None:
                    assert vectors is not None
                    if bit_writer is not None:
                        bit_writer.write_se(int(vectors[row, col, 0]))
                        bit_writer.write_se(int(vectors[row, col, 1]))
                    else:
                        writer.write_svarint(int(vectors[row, col, 0]))
                        writer.write_svarint(int(vectors[row, col, 1]))
                coefficients = dct2(block_grid[row, col])
                levels = quantize_block(coefficients, q_matrix)
                if bit_writer is not None:
                    encode_block_scan(bit_writer, zigzag_order(levels))
                else:
                    _encode_levels(writer, levels)
                reconstructed_blocks[row, col] = idct2(
                    dequantize_block(levels, q_matrix)
                )
        if bit_writer is not None:
            payload = bit_writer.getvalue()
            writer.write_uvarint(len(payload))
            writer.write_bytes(payload)

        padded_shape = (grid_rows * block_size, grid_cols * block_size)
        reconstruction = assemble_blocks(reconstructed_blocks, padded_shape)
        if is_intra:
            previous_reconstruction = reconstruction[:height, :width] + 128.0
        elif prediction is not None:
            previous_reconstruction = (
                prediction + reconstruction
            )[:height, :width]
        else:
            assert previous_reconstruction is not None
            previous_reconstruction = (
                previous_reconstruction + reconstruction[:height, :width]
            )
        previous_reconstruction = np.clip(previous_reconstruction, 0.0, 255.0)

    return EncodedVideo(
        data=writer.getvalue(),
        width=width,
        height=height,
        block_size=block_size,
        quality=quality,
        gop_size=gop_size,
        num_frames=num_frames,
        fps=fps,
        entropy_coding=entropy_coding,
    )


#: Sanity ceilings applied to parsed headers. A flipped bit in a varint
#: can turn a small field into an astronomically large one; decoding must
#: fail with a typed :class:`BitstreamError` *before* any allocation is
#: attempted, not with a numpy ``MemoryError``.
_MAX_FRAME_SIDE = 1 << 14
_MAX_BLOCK_SIZE = 256


def _read_header(
    reader: BitstreamReader,
    data_length: int = 0,
) -> Tuple[int, int, int, int, int, int, float, bool]:
    """Parse magic + header, returning the eight header fields.

    ``data_length`` (when non-zero) enables plausibility checks that
    bound the claimed stream dimensions by what the byte string could
    possibly encode — the typed-error guarantee for corrupt headers.
    """
    reader.read_magic()
    width = reader.read_uvarint()
    height = reader.read_uvarint()
    block_size = reader.read_uvarint()
    quality = reader.read_uvarint()
    gop_size = reader.read_uvarint()
    num_frames = reader.read_uvarint()
    fps = reader.read_uvarint() / 1000.0
    flags = reader.read_uvarint()
    if width <= 0 or height <= 0 or block_size <= 0 or gop_size <= 0 or fps <= 0:
        raise BitstreamError("corrupt header: non-positive structural field")
    if width > _MAX_FRAME_SIDE or height > _MAX_FRAME_SIDE:
        raise BitstreamError(
            f"corrupt header: implausible frame size {width}x{height}"
        )
    if block_size > _MAX_BLOCK_SIZE:
        raise BitstreamError(
            f"corrupt header: implausible block size {block_size}"
        )
    if not 1 <= quality <= 100:
        raise BitstreamError(
            f"corrupt header: quality {quality} outside [1, 100]"
        )
    if flags > 1:
        raise BitstreamError(f"unknown format flags {flags}")
    if data_length:
        # Every frame record costs at least two bytes (type byte + block
        # count), and every block at least two bits under entropy coding.
        grid_blocks = (-(-width // block_size)) * (-(-height // block_size))
        if num_frames > data_length:
            raise BitstreamError(
                f"corrupt header: {num_frames} frames cannot fit in "
                f"{data_length} bytes"
            )
        if num_frames * grid_blocks > 8 * data_length:
            raise BitstreamError(
                "corrupt header: claimed block count exceeds what the "
                "stream could encode"
            )
    return (width, height, block_size, quality, gop_size, num_frames, fps,
            bool(flags & 1))


def walk_dc_record(
    reader: BitstreamReader,
    num_blocks: int,
    entropy: bool,
) -> Tuple[bytes, Optional[List[int]]]:
    """Walk exactly one frame record from the reader's current position.

    Returns ``(frame_type, dc_levels)`` where ``dc_levels`` is the list
    of per-block DC levels for an I frame and ``None`` for a skipped
    predicted frame. Raises :class:`BitstreamError` if the record is
    malformed, truncated, or its block count disagrees with
    ``num_blocks`` — the primitive both the partial decoder and the
    resync scanner (:mod:`repro.codec.resync`) are built on.
    """
    frame_type = reader.read_bytes(1)
    if frame_type not in (b"I", b"P", b"M"):
        raise BitstreamError(f"unknown frame type {frame_type!r}")
    claimed = reader.read_uvarint()
    if claimed != num_blocks:
        raise BitstreamError(
            f"expected {num_blocks} blocks, record claims {claimed}"
        )
    if frame_type == b"I":
        dc_levels: List[int] = []
        if entropy:
            payload = reader.read_bytes(reader.read_uvarint())
            bit_reader = BitReader(payload)
            for _ in range(num_blocks):
                dc_levels.append(skip_block_scan_keep_dc(bit_reader))
        else:
            for _ in range(num_blocks):
                dc_levels.append(_skip_block_keep_dc(reader))
        return frame_type, dc_levels
    if entropy:
        # The payload-length prefix is the slice resync marker: a
        # predicted frame is skipped in one seek.
        reader.read_bytes(reader.read_uvarint())
    else:
        for _ in range(num_blocks):
            if frame_type == b"M":
                reader.skip_uvarints(2)  # the block's motion vector
            _skip_block(reader)
    return frame_type, None


def decode_video(encoded: EncodedVideo) -> np.ndarray:
    """Fully decode a bitstream back to a ``(n, h, w)`` float frame stack.

    Frames are the encoder's reconstructions (quantisation loss included),
    clipped to [0, 255].
    """
    reader = BitstreamReader(encoded.data)
    (width, height, block_size, quality, gop_size, num_frames, _fps,
     entropy) = _read_header(reader, len(encoded.data))
    q_matrix = quantization_matrix(quality, block_size)
    frames = np.empty((num_frames, height, width), dtype=np.float64)

    previous: np.ndarray | None = None
    for frame_index in range(num_frames):
        frame_type = reader.read_bytes(1)
        num_blocks = reader.read_uvarint()
        grid_cols = -(-width // block_size)
        grid_rows = -(-height // block_size)
        if num_blocks != grid_rows * grid_cols:
            raise BitstreamError(
                f"frame {frame_index}: expected {grid_rows * grid_cols} blocks, "
                f"header claims {num_blocks}"
            )
        blocks = np.empty((grid_rows, grid_cols, block_size, block_size))
        vectors = (
            np.zeros((grid_rows, grid_cols, 2), dtype=np.int64)
            if frame_type == b"M"
            else None
        )
        bit_reader: BitReader | None = None
        if entropy:
            payload = reader.read_bytes(reader.read_uvarint())
            bit_reader = BitReader(payload)
        for row in range(grid_rows):
            for col in range(grid_cols):
                if bit_reader is not None:
                    if vectors is not None:
                        vectors[row, col, 0] = bit_reader.read_se()
                        vectors[row, col, 1] = bit_reader.read_se()
                    scan = decode_block_scan(
                        bit_reader, block_size * block_size
                    )
                    levels = zigzag_restore(scan, block_size)
                else:
                    if vectors is not None:
                        vectors[row, col, 0] = reader.read_svarint()
                        vectors[row, col, 1] = reader.read_svarint()
                    levels = _decode_levels(reader, block_size)
                blocks[row, col] = idct2(dequantize_block(levels, q_matrix))
        padded_shape = (grid_rows * block_size, grid_cols * block_size)
        padded = assemble_blocks(blocks, padded_shape)
        if frame_type == b"I":
            current = padded[:height, :width] + 128.0
        elif frame_type == b"P":
            if previous is None:
                raise BitstreamError("P frame before any I frame")
            current = previous + padded[:height, :width]
        elif frame_type == b"M":
            if previous is None:
                raise BitstreamError("M frame before any I frame")
            assert vectors is not None
            reference = pad_to_blocks(previous, block_size)
            prediction = compensate(reference, vectors, block_size)
            current = (prediction + padded)[:height, :width]
        else:
            raise BitstreamError(f"unknown frame type {frame_type!r}")
        current = np.clip(current, 0.0, 255.0)
        frames[frame_index] = current
        previous = current
    return frames


def decode_dc_coefficients(
    encoded: EncodedVideo,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Partially decode: yield per-I-frame grids of dequantised DC values.

    This is the paper's compressed-domain entry point: no inverse DCT is
    computed and P frames are skipped wholesale. Each yielded item is
    ``(frame_index, dc_grid)`` where ``dc_grid`` has shape
    ``(grid_rows, grid_cols)`` and holds the dequantised DC coefficient of
    each block (level-shift of -128 still applied, exactly as stored).

    The block *mean* luminance is recoverable as
    ``dc_grid / block_size + 128`` because the orthonormal DCT's DC equals
    ``block_size * mean`` for a square block.
    """
    reader = BitstreamReader(encoded.data)
    (width, height, block_size, quality, gop_size, num_frames, _fps,
     entropy) = _read_header(reader, len(encoded.data))
    q_matrix = quantization_matrix(quality, block_size)
    dc_quant_step = float(q_matrix[0, 0])
    grid_cols = -(-width // block_size)
    grid_rows = -(-height // block_size)
    num_blocks = grid_rows * grid_cols

    for frame_index in range(num_frames):
        try:
            frame_type, dc_levels = walk_dc_record(reader, num_blocks, entropy)
        except BitstreamError as error:
            raise BitstreamError(f"frame {frame_index}: {error}") from error
        if frame_type == b"I":
            assert dc_levels is not None
            dc_grid = (
                np.asarray(dc_levels, dtype=np.float64).reshape(grid_rows, grid_cols)
                * dc_quant_step
            )
            yield frame_index, dc_grid
