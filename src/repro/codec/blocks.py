"""Frame <-> block tiling.

The codec operates on square blocks (8x8 by default, as in MPEG-1). Frames
whose sides are not multiples of the block size are edge-padded before
tiling; the original frame size is carried in the bitstream header so the
decoder can crop the padding away.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CodecError

__all__ = ["assemble_blocks", "pad_to_blocks", "split_into_blocks"]


def pad_to_blocks(frame: np.ndarray, block_size: int) -> np.ndarray:
    """Edge-pad a 2-D frame so both sides are multiples of ``block_size``."""
    if frame.ndim != 2:
        raise CodecError(f"expected a 2-D grayscale frame, got ndim={frame.ndim}")
    if block_size <= 0:
        raise CodecError(f"block_size must be positive, got {block_size}")
    rows, cols = frame.shape
    pad_rows = (-rows) % block_size
    pad_cols = (-cols) % block_size
    if pad_rows == 0 and pad_cols == 0:
        return frame
    return np.pad(frame, ((0, pad_rows), (0, pad_cols)), mode="edge")


def split_into_blocks(frame: np.ndarray, block_size: int) -> np.ndarray:
    """Tile a padded frame into blocks.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(rows // bs, cols // bs, bs, bs)`` — a view-free
        reshape, so the result owns its layout and is safe to mutate.
    """
    padded = pad_to_blocks(frame, block_size)
    rows, cols = padded.shape
    grid = padded.reshape(
        rows // block_size, block_size, cols // block_size, block_size
    )
    return np.ascontiguousarray(grid.transpose(0, 2, 1, 3))


def assemble_blocks(
    blocks: np.ndarray, frame_shape: Tuple[int, int]
) -> np.ndarray:
    """Inverse of :func:`split_into_blocks`, cropped to ``frame_shape``.

    Parameters
    ----------
    blocks:
        Array of shape ``(grid_rows, grid_cols, bs, bs)``.
    frame_shape:
        The original (rows, cols) before padding; the assembled frame is
        cropped back to this size.
    """
    if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
        raise CodecError(f"expected (gr, gc, bs, bs) blocks, got {blocks.shape}")
    grid_rows, grid_cols, block_size, _ = blocks.shape
    frame = blocks.transpose(0, 2, 1, 3).reshape(
        grid_rows * block_size, grid_cols * block_size
    )
    target_rows, target_cols = frame_shape
    if target_rows > frame.shape[0] or target_cols > frame.shape[1]:
        raise CodecError(
            f"frame shape {frame_shape} exceeds assembled size {frame.shape}"
        )
    return frame[:target_rows, :target_cols]
