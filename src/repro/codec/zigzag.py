"""Zig-zag coefficient ordering.

MPEG and JPEG serialise each quantised block in zig-zag order so that the
(usually zero) high-frequency coefficients cluster at the end of the scan.
Our bitstream stores blocks the same way, which is what makes *partial*
decoding cheap: the DC coefficient is always the first value of the scan,
so a DC-only decoder reads one value and skips the rest.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.errors import CodecError

__all__ = ["zigzag_indices", "zigzag_order", "zigzag_restore"]


@lru_cache(maxsize=16)
def zigzag_indices(size: int) -> Tuple[Tuple[int, int], ...]:
    """Return the (row, col) visit order for a ``size x size`` zig-zag scan.

    The scan starts at (0, 0), walks anti-diagonals alternately up-right and
    down-left, and ends at (size-1, size-1).
    """
    if size <= 0:
        raise CodecError(f"zig-zag size must be positive, got {size}")
    order: List[Tuple[int, int]] = []
    for diagonal in range(2 * size - 1):
        cells = [
            (row, diagonal - row)
            for row in range(size)
            if 0 <= diagonal - row < size
        ]
        if diagonal % 2 == 0:
            cells.reverse()  # even diagonals are walked bottom-left -> top-right
        order.extend(cells)
    return tuple(order)


def zigzag_order(block: np.ndarray) -> np.ndarray:
    """Serialise a square block into its zig-zag scan (1-D array)."""
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise CodecError(f"zig-zag needs a square 2-D block, got {block.shape}")
    indices = zigzag_indices(block.shape[0])
    rows = np.fromiter((r for r, _ in indices), dtype=np.intp)
    cols = np.fromiter((c for _, c in indices), dtype=np.intp)
    return block[rows, cols]


def zigzag_restore(scan: np.ndarray, size: int) -> np.ndarray:
    """Rebuild a square block from its zig-zag scan."""
    if scan.ndim != 1 or scan.shape[0] != size * size:
        raise CodecError(
            f"scan of length {scan.shape} cannot fill a {size}x{size} block"
        )
    block = np.empty((size, size), dtype=scan.dtype)
    for position, (row, col) in enumerate(zigzag_indices(size)):
        block[row, col] = scan[position]
    return block
