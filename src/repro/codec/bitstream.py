"""Byte-exact bitstream serialisation for the toy codec.

The encoded video is a real byte string with a magic number, versioned
header and per-frame records. The format deliberately skips entropy coding
(no Huffman tables) — coefficient levels are stored as zig-zag runs of
signed varints — but everything a *partial decoder* needs to exercise is
here: headers must be parsed, frame records must be walked, and the DC
coefficient of each block is the first value of each block record, so a
DC-only decoder can skip the AC tail without dequantising it.

Layout::

    magic    4 bytes  b"RVC1"
    header   varints: width, height, block_size, quality, gop_size, n_frames,
             fps_millis (frames per second * 1000, rounded)
    frames   n_frames records:
        frame_type   1 byte   b"I" or b"P"
        n_blocks     varint
        blocks       n_blocks records of zig-zag coefficient levels,
                     each encoded as: n_values varint, then signed varints
                     (trailing zeros of the scan are truncated)
"""

from __future__ import annotations

from typing import List

from repro.errors import BitstreamError

__all__ = ["BitstreamReader", "BitstreamWriter", "MAGIC"]

MAGIC = b"RVC1"


def _zigzag_encode_int(value: int) -> int:
    """Map a signed int to an unsigned one (protobuf zig-zag trick)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode_int(value: int) -> int:
    """Inverse of :func:`_zigzag_encode_int`."""
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


class BitstreamWriter:
    """Append-only writer producing the serialised byte string."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def write_magic(self) -> None:
        """Emit the 4-byte magic number."""
        self._chunks.append(MAGIC)

    def write_bytes(self, data: bytes) -> None:
        """Emit raw bytes."""
        self._chunks.append(data)

    def write_uvarint(self, value: int) -> None:
        """Emit an unsigned LEB128 varint."""
        if value < 0:
            raise BitstreamError(f"uvarint cannot encode negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._chunks.append(bytes(out))

    def write_svarint(self, value: int) -> None:
        """Emit a signed varint (zig-zag mapped LEB128)."""
        self.write_uvarint(_zigzag_encode_int(value))

    def getvalue(self) -> bytes:
        """Return everything written so far as one byte string."""
        return b"".join(self._chunks)


class BitstreamReader:
    """Sequential reader over a serialised byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        """Current byte offset."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        """Whether every byte has been consumed."""
        return self._pos >= len(self._data)

    def seek(self, offset: int) -> None:
        """Jump to an absolute byte offset (the resync scanner's hook)."""
        if not 0 <= offset <= len(self._data):
            raise BitstreamError(
                f"cannot seek to offset {offset} in a "
                f"{len(self._data)}-byte stream"
            )
        self._pos = offset

    def read_magic(self) -> None:
        """Consume and verify the magic number."""
        found = self.read_bytes(len(MAGIC))
        if found != MAGIC:
            raise BitstreamError(
                f"bad magic: expected {MAGIC!r}, found {found!r}"
            )

    def read_bytes(self, count: int) -> bytes:
        """Consume exactly ``count`` raw bytes."""
        if self._pos + count > len(self._data):
            raise BitstreamError(
                f"truncated stream: wanted {count} bytes at offset {self._pos}, "
                f"only {len(self._data) - self._pos} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_uvarint(self) -> int:
        """Consume one unsigned LEB128 varint."""
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise BitstreamError("truncated varint at end of stream")
            byte = self._data[self._pos]
            self._pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise BitstreamError("varint longer than 10 bytes; corrupt stream")

    def read_svarint(self) -> int:
        """Consume one signed (zig-zag) varint."""
        return _zigzag_decode_int(self.read_uvarint())

    def skip_uvarints(self, count: int) -> None:
        """Skip ``count`` varints without decoding their values."""
        for _ in range(count):
            self.read_uvarint()
