"""Toy MPEG-like intra-frame codec (the "compressed domain" substrate).

The paper's feature extractor (Section III-A) *partially decodes* incoming
MPEG bitstreams: it reads only the DC coefficients of the key (I) frames,
never performing the inverse DCT. To make that a real code path rather than
a stub, this subpackage implements a small but genuine intra-only codec:

* :mod:`repro.codec.dct` — exact 8x8 (or NxN) type-II/III DCT built from
  first principles with numpy matrix products.
* :mod:`repro.codec.quantize` — JPEG-style luminance quantisation with a
  quality factor, which is how re-compression attacks change coefficients.
* :mod:`repro.codec.zigzag` — the classic zig-zag coefficient ordering.
* :mod:`repro.codec.blocks` — frame <-> 8x8 block tiling with edge padding.
* :mod:`repro.codec.bitstream` — a byte-exact serialised bitstream format
  with headers, so "decoding" really parses bytes.
* :mod:`repro.codec.gop` — group-of-pictures encoder marking I frames and
  (trivially delta-coded) P frames, plus the full and *partial* decoders.

The only consumer contract that matters downstream is
:func:`repro.codec.gop.decode_dc_coefficients`: given an encoded stream it
yields, per I frame, the dequantised DC coefficient of every 8x8 block —
without inverse DCT, exactly like the paper.
"""

from repro.codec.blocks import assemble_blocks, pad_to_blocks, split_into_blocks
from repro.codec.bitstream import BitstreamReader, BitstreamWriter
from repro.codec.dct import dct2, idct2
from repro.codec.entropy import (
    BitReader,
    BitWriter,
    decode_block_scan,
    encode_block_scan,
)
from repro.codec.gop import (
    EncodedVideo,
    decode_dc_coefficients,
    decode_video,
    encode_video,
    walk_dc_record,
)
from repro.codec.motion import compensate, motion_search
from repro.codec.resync import (
    DCSegment,
    ResilientScanResult,
    resilient_dc_scan,
    resync_to_next_gop,
)
from repro.codec.quantize import (
    dequantize_block,
    quantization_matrix,
    quantize_block,
)
from repro.codec.zigzag import zigzag_indices, zigzag_order, zigzag_restore

__all__ = [
    "BitReader",
    "BitWriter",
    "BitstreamReader",
    "BitstreamWriter",
    "DCSegment",
    "EncodedVideo",
    "ResilientScanResult",
    "assemble_blocks",
    "compensate",
    "dct2",
    "decode_block_scan",
    "decode_dc_coefficients",
    "decode_video",
    "dequantize_block",
    "encode_block_scan",
    "encode_video",
    "idct2",
    "motion_search",
    "pad_to_blocks",
    "quantization_matrix",
    "quantize_block",
    "resilient_dc_scan",
    "resync_to_next_gop",
    "split_into_blocks",
    "walk_dc_record",
    "zigzag_indices",
    "zigzag_order",
    "zigzag_restore",
]
