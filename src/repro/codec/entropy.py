"""Bit-level entropy coding: exponential-Golomb codes over (run, level).

The base bitstream stores quantised levels as byte-aligned varints; real
video codecs pack them much tighter with variable-length codes. This
module provides the H.264-style building blocks:

* :class:`BitWriter` / :class:`BitReader` — MSB-first bit streams;
* unsigned/signed exponential-Golomb codes (``ue(v)`` / ``se(v)``) —
  universal codes, no tables to transmit;
* block-scan coding as (zero-run, level) pairs, the classic run-length
  scheme over the zig-zag scan.

With entropy coding enabled (``encode_video(entropy_coding=True)``) the
partial decoder can no longer skip a block by counting varints: it must
walk the variable-length codes exactly as a real MPEG decoder does —
which is precisely the realism the option buys.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import BitstreamError

__all__ = [
    "BitReader",
    "BitWriter",
    "decode_block_scan",
    "encode_block_scan",
    "skip_block_scan_keep_dc",
]


class BitWriter:
    """MSB-first bit accumulator producing a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit."""
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, most significant first."""
        if count < 0 or (count and value >> count):
            raise BitstreamError(
                f"value {value} does not fit in {count} bits"
            )
        for position in range(count - 1, -1, -1):
            self.write_bit((value >> position) & 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exponential-Golomb: ``(len(v+1)-1)`` zeros, then v+1."""
        if value < 0:
            raise BitstreamError(f"ue() cannot encode negative {value}")
        shifted = value + 1
        length = shifted.bit_length()
        self.write_bits(0, length - 1)
        self.write_bits(shifted, length)

    def write_se(self, value: int) -> None:
        """Signed exponential-Golomb via the standard zig-zag mapping."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final byte) and return the bytes."""
        if self._filled:
            padded = self._current << (8 - self._filled)
            return bytes(self._bytes) + bytes([padded])
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        """Bits written so far (before final padding)."""
        return 8 * len(self._bytes) + self._filled


class BitReader:
    """MSB-first bit consumer over a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # in bits

    @property
    def bits_remaining(self) -> int:
        """Unread bits (including any final padding)."""
        return 8 * len(self._data) - self._position

    def read_bit(self) -> int:
        """Consume one bit."""
        if self._position >= 8 * len(self._data):
            raise BitstreamError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Consume ``count`` bits, most significant first."""
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_ue(self) -> int:
        """Inverse of :meth:`BitWriter.write_ue`."""
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > 64:
                raise BitstreamError("ue() prefix too long; corrupt stream")
        return ((1 << zeros) | self.read_bits(zeros)) - 1

    def read_se(self) -> int:
        """Inverse of :meth:`BitWriter.write_se`."""
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)


def encode_block_scan(writer: BitWriter, scan: Sequence[int]) -> None:
    """Code one zig-zag scan as DC + (zero-run, level) pairs.

    Layout: ``se(DC)``, ``ue(num_pairs)``, then per nonzero AC value
    ``ue(preceding zero run), se(level)``. Trailing zeros are implicit.
    """
    if len(scan) == 0:
        raise BitstreamError("cannot encode an empty scan")
    writer.write_se(int(scan[0]))
    pairs: List[tuple] = []
    run = 0
    for value in scan[1:]:
        if value == 0:
            run += 1
        else:
            pairs.append((run, int(value)))
            run = 0
    writer.write_ue(len(pairs))
    for run_length, level in pairs:
        writer.write_ue(run_length)
        writer.write_se(level)


def decode_block_scan(reader: BitReader, scan_length: int) -> np.ndarray:
    """Inverse of :func:`encode_block_scan`."""
    if scan_length <= 0:
        raise BitstreamError(f"scan_length must be positive, got {scan_length}")
    scan = np.zeros(scan_length, dtype=np.int64)
    scan[0] = reader.read_se()
    position = 1
    for _ in range(reader.read_ue()):
        position += reader.read_ue()
        if position >= scan_length:
            raise BitstreamError("run-length overruns the block scan")
        scan[position] = reader.read_se()
        position += 1
    return scan


def skip_block_scan_keep_dc(reader: BitReader) -> int:
    """Walk one coded block, returning only its DC level.

    The AC codes must still be *decoded* (their lengths are data-
    dependent) — exactly the work a real partial decoder does — but no
    scan array is materialised.
    """
    dc = reader.read_se()
    for _ in range(reader.read_ue()):
        reader.read_ue()  # run
        reader.read_se()  # level
    return dc
