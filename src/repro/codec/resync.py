"""GOP-boundary resynchronisation for damaged bitstreams.

A single flipped bit inside a frame record usually derails every varint
after it, so a naive decoder loses the rest of the stream. Real MPEG
decoders recover by scanning forward to the next start code; the toy
codec has no start codes, but every I frame record begins with the byte
``b"I"`` followed by a block-count varint that must equal the grid size —
a strong enough predicate to probe candidate offsets with
:func:`repro.codec.gop.walk_dc_record` and accept the first offset whose
record parses cleanly.

Two layers are provided:

* :func:`resync_to_next_gop` — the scanning primitive: given raw bytes
  and a starting offset, find the next byte offset at which a complete
  I-frame record parses.
* :func:`resilient_dc_scan` — a fault-tolerant replacement for
  :func:`~repro.codec.gop.decode_dc_coefficients`: it walks the stream,
  and on any :class:`~repro.errors.BitstreamError` /
  :class:`~repro.errors.CodecError` records the damage, resynchronises at
  the next decodable GOP header and keeps going, returning *segments* of
  decoded DC grids together with enough anchoring information for the
  caller to keep its window clock aligned.

Frame-index anchoring: the segment that starts at the stream head is
anchored at frame 0. After a resync the absolute frame index of the
recovered record is unknown (the toy format stores no frame numbers), so
interior segments are *unanchored* — except the **final** segment, which
can be back-anchored when the reader drains cleanly to the end of the
stream: its first record must sit at ``num_frames - records_remaining``,
and the I/P pattern of the recovered records is validated against the
GOP structure before the anchor is trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.bitstream import BitstreamReader
from repro.codec.gop import EncodedVideo, _read_header, walk_dc_record
from repro.codec.quantize import quantization_matrix
from repro.errors import BitstreamError, CodecError

__all__ = ["DCSegment", "ResilientScanResult", "resilient_dc_scan",
           "resync_to_next_gop"]


def resync_to_next_gop(
    data: bytes,
    offset: int,
    *,
    num_blocks: int,
    entropy: bool,
) -> Optional[int]:
    """Scan forward from ``offset`` for the next decodable I-frame record.

    Returns the byte offset at which a complete I-frame record parses, or
    ``None`` if no such offset exists before the end of ``data``. Probing
    is exact, not heuristic: a candidate offset is accepted only if
    :func:`walk_dc_record` walks a full I record from it without error,
    so a stray ``0x49`` byte inside coefficient data cannot cause a false
    lock unless it is followed by an entire well-formed record.
    """
    reader = BitstreamReader(data)
    position = max(0, offset)
    while True:
        candidate = data.find(b"I", position)
        if candidate < 0:
            return None
        reader.seek(candidate)
        try:
            frame_type, dc_levels = walk_dc_record(reader, num_blocks, entropy)
        except BitstreamError:
            pass
        else:
            if frame_type == b"I" and dc_levels is not None:
                return candidate
        position = candidate + 1


@dataclass
class DCSegment:
    """A maximal run of contiguously decoded frame records.

    Attributes
    ----------
    kf_slots:
        Absolute keyframe slots (``frame_index // gop_size``) of the
        decoded I frames, or ``None`` when the segment could not be
        anchored to an absolute position (interior segments between two
        corruption points).
    dc_grids:
        One ``(grid_rows, grid_cols)`` float array of dequantised DC
        values per decoded I frame, in stream order.
    record_count:
        Total frame records (I and P/M) the segment walked.
    """

    kf_slots: Optional[List[int]]
    dc_grids: List[np.ndarray] = field(default_factory=list)
    record_count: int = 0


@dataclass
class ResilientScanResult:
    """Everything :func:`resilient_dc_scan` recovered from one bitstream."""

    segments: List[DCSegment]
    decode_errors: int
    resyncs: int
    bytes_skipped: int
    reached_end: bool

    @property
    def keyframes_decoded(self) -> int:
        """I frames recovered across every segment."""
        return sum(len(segment.dc_grids) for segment in self.segments)


def _validate_anchor(
    anchor: int,
    frame_types: List[bytes],
    gop_size: int,
) -> bool:
    """Check that records starting at ``anchor`` match the I/P cadence."""
    if anchor < 0:
        return False
    for offset, frame_type in enumerate(frame_types):
        is_intra_slot = (anchor + offset) % gop_size == 0
        if is_intra_slot != (frame_type == b"I"):
            return False
    return True


def resilient_dc_scan(encoded: EncodedVideo) -> ResilientScanResult:
    """DC-decode a possibly damaged bitstream, resyncing past corruption.

    Header corruption is *not* survivable — without trustworthy grid
    dimensions no record can be validated — so a bad header raises
    :class:`BitstreamError` and the caller should treat the whole chunk
    as lost (the :class:`EncodedVideo` metadata fields remain intact for
    frame accounting; fault injection only mutates ``data``).

    Record-level corruption is survived: the scan resumes at the next
    offset where a complete I-frame record parses, opening a new
    :class:`DCSegment`. The first segment is anchored at frame 0; the
    last is back-anchored from the stream tail when the reader drains
    exactly to the end; segments in between (two or more corruption
    points) carry ``kf_slots=None``.
    """
    data = encoded.data
    reader = BitstreamReader(data)
    try:
        (width, height, block_size, _quality, gop_size, num_frames, _fps,
         entropy) = _read_header(reader, len(data))
    except CodecError:
        raise
    except Exception as error:  # pragma: no cover - typed-error backstop
        raise BitstreamError(f"unreadable header: {error}") from error
    grid_cols = -(-width // block_size)
    grid_rows = -(-height // block_size)
    num_blocks = grid_rows * grid_cols
    dc_quant_step = float(quantization_matrix(encoded.quality, block_size)[0, 0])
    expected_keyframes = encoded.num_keyframes

    segments: List[DCSegment] = []
    segment_types: List[List[bytes]] = []
    decode_errors = 0
    resyncs = 0
    bytes_skipped = 0
    reached_end = False

    segment = DCSegment(kf_slots=[])
    frame_types: List[bytes] = []
    records_walked = 0
    keyframes_decoded = 0

    def close_segment() -> None:
        if segment.record_count:
            segments.append(segment)
            segment_types.append(frame_types)

    while records_walked < num_frames:
        if reader.exhausted:
            reached_end = True
            break
        record_start = reader.position
        try:
            frame_type, dc_levels = walk_dc_record(reader, num_blocks, entropy)
        except CodecError:
            decode_errors += 1
            close_segment()
            segment = DCSegment(kf_slots=None)
            frame_types = []
            if keyframes_decoded >= expected_keyframes:
                # Everything recoverable is in hand; don't chase ghosts
                # in a corrupted tail.
                break
            next_gop = resync_to_next_gop(
                data, record_start + 1, num_blocks=num_blocks, entropy=entropy
            )
            if next_gop is None:
                bytes_skipped += len(data) - record_start
                break
            bytes_skipped += next_gop - record_start
            reader.seek(next_gop)
            resyncs += 1
            continue
        segment.record_count += 1
        records_walked += 1
        frame_types.append(frame_type)
        if frame_type == b"I":
            if keyframes_decoded >= expected_keyframes:
                # More I frames than the metadata promises: the walk has
                # drifted into corrupted territory that happens to parse.
                decode_errors += 1
                segment.record_count -= 1
                records_walked -= 1
                frame_types.pop()
                close_segment()
                segment = DCSegment(kf_slots=None)
                frame_types = []
                break
            assert dc_levels is not None
            grid = (
                np.asarray(dc_levels, dtype=np.float64)
                .reshape(grid_rows, grid_cols)
                * dc_quant_step
            )
            segment.dc_grids.append(grid)
            keyframes_decoded += 1
    else:
        reached_end = reader.exhausted

    close_segment()

    # Anchor the head segment at frame 0 when it was never interrupted
    # before its first record (i.e. it is literally the stream head).
    if segments and segments[0].kf_slots is not None:
        slots = []
        for offset, frame_type in enumerate(segment_types[0]):
            if frame_type == b"I":
                slots.append(offset // gop_size)
        segments[0].kf_slots = slots

    # Back-anchor the tail segment: if the reader drained exactly to the
    # end of the stream, the final segment's records must occupy the last
    # ``record_count`` frame slots.
    if (
        reached_end
        and len(segments) > 1
        and segments[-1].kf_slots is None
    ):
        tail = segments[-1]
        tail_types = segment_types[-1]
        anchor = num_frames - tail.record_count
        if _validate_anchor(anchor, tail_types, gop_size):
            slots = []
            for offset, frame_type in enumerate(tail_types):
                if frame_type == b"I":
                    slots.append((anchor + offset) // gop_size)
            # Anchoring is only trusted when it doesn't collide with the
            # anchored head segment.
            head_slots = segments[0].kf_slots or []
            if not head_slots or not slots or slots[0] > head_slots[-1]:
                tail.kf_slots = slots

    return ResilientScanResult(
        segments=segments,
        decode_errors=decode_errors,
        resyncs=resyncs,
        bytes_skipped=bytes_skipped,
        reached_end=reached_end,
    )
