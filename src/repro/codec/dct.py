"""Two-dimensional discrete cosine transform, built from first principles.

The forward transform is the orthonormal type-II DCT used by JPEG/MPEG:

.. math::

    F(k) = c(k) \\sqrt{2/N} \\sum_{n=0}^{N-1} x(n)
           \\cos\\left(\\frac{(2n+1) k \\pi}{2N}\\right)

with ``c(0) = 1/sqrt(2)`` and ``c(k) = 1`` otherwise. In two dimensions the
separable transform is ``M @ X @ M.T`` where ``M`` is the 1-D basis matrix.
The inverse (type-III) is ``M.T @ F @ M`` because ``M`` is orthogonal.

The basis matrices are cached per size, so transforming a long video is a
stream of small matrix products.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodecError

__all__ = ["dct2", "dct_matrix", "idct2"]


@lru_cache(maxsize=16)
def dct_matrix(size: int) -> np.ndarray:
    """Return the orthonormal type-II DCT basis matrix of shape (size, size).

    Row ``k`` holds the ``k``-th cosine basis vector; ``dct_matrix(N) @ x``
    is the 1-D DCT-II of ``x``. The matrix is orthogonal:
    ``M @ M.T == I`` (up to floating point).
    """
    if size <= 0:
        raise CodecError(f"DCT size must be positive, got {size}")
    n = np.arange(size)
    k = n.reshape(-1, 1)
    basis = np.cos((2 * n + 1) * k * np.pi / (2 * size))
    basis *= np.sqrt(2.0 / size)
    basis[0, :] /= np.sqrt(2.0)
    return basis


def dct2(block: np.ndarray) -> np.ndarray:
    """Forward 2-D orthonormal DCT-II of a square block.

    Parameters
    ----------
    block:
        A 2-D array. Rows and columns may differ in length; separate basis
        matrices are applied per axis.

    Returns
    -------
    numpy.ndarray
        Coefficient array of the same shape; element (0, 0) is the DC
        coefficient, equal to ``mean(block) * sqrt(rows * cols)``.
    """
    if block.ndim != 2:
        raise CodecError(f"dct2 expects a 2-D block, got ndim={block.ndim}")
    rows, cols = block.shape
    m_rows = dct_matrix(rows)
    m_cols = dct_matrix(cols)
    return m_rows @ block.astype(np.float64) @ m_cols.T


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (type-III), exact inverse of :func:`dct2`."""
    if coefficients.ndim != 2:
        raise CodecError(
            f"idct2 expects a 2-D block, got ndim={coefficients.ndim}"
        )
    rows, cols = coefficients.shape
    m_rows = dct_matrix(rows)
    m_cols = dct_matrix(cols)
    return m_rows.T @ coefficients.astype(np.float64) @ m_cols
