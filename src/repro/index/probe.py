"""ProbeIndex — Figure 5 of the paper.

Given a basic-window sketch ``sk`` and the Hash-Query index, return the
*related query list* ``R_L``: one element per query sharing at least one
min-hash value with the window, each carrying the full 2K-bit signature of
the window against that query. The walk proceeds hash function by hash
function:

1. **Bit signature setting** — every element already in ``R_L`` advances
   its ``lp`` pointer down one row and records the relation between the
   query's value there and ``sk[i]``.
2. **Pruning** — elements whose partial signature already violates
   Lemma 2 are dropped immediately (their ``<`` count can only grow).
3. **Relevant-query search** — binary search row ``i`` for values equal
   to ``sk[i]``; positions belonging to queries not yet in ``R_L`` spawn
   new elements, whose earlier relations (hashes ``0..i−1``) are filled
   by walking the ``up`` chain and whose query id comes from the row-0
   entry that walk ends on.

A query with *zero* equal min-hash values never enters ``R_L`` — its
estimated similarity is 0, so it cannot satisfy any threshold δ > 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import IndexError_
from repro.index.hq import HashQueryIndex
from repro.minhash.sketch import Sketch
from repro.signature.bitsig import BitSignature
from repro.signature.pruning import lemma2_bound
from repro.utils.bitops import count_ones

__all__ = ["RelatedQuery", "probe_index"]


@dataclass
class RelatedQuery:
    """An ``R_L`` element: ⟨qid, bitsig, lp⟩ plus the query length.

    Attributes
    ----------
    qid:
        The related query's id.
    length_windows:
        The query's length in basic windows (drives per-query expiry).
    ge, lt:
        The two planes of the window-vs-query bit signature (see
        :class:`~repro.signature.bitsig.BitSignature`).
    lp:
        Probe cursor: the column of this query's current-row entry (the
        ``lp`` of Figure 5). In a *returned* element the walk has
        advanced through all K rows, so ``lp`` is the query's column in
        row ``K-1``; both probe implementations honour this contract
        (asserted by ``tests/test_index.py``).
    """

    qid: int
    length_windows: int
    ge: int = 0
    lt: int = 0
    lp: int = -1

    def signature(self, num_hashes: int) -> BitSignature:
        """Materialise the accumulated planes as a checked signature."""
        return BitSignature(ge=self.ge, lt=self.lt, num_hashes=num_hashes)


def probe_index_reference(
    sketch: Sketch,
    index: HashQueryIndex,
    threshold: float,
    prune: bool = True,
) -> List[RelatedQuery]:
    """The literal row-by-row walk of Figure 5 (reference implementation).

    :func:`probe_index` computes the same result with batched numpy
    operations; the equivalence is asserted by the test suite. This
    version exists as the executable specification.

    Parameters
    ----------
    sketch:
        The basic window's K-min-hash sketch.
    index:
        The Hash-Query structure over the subscribed queries.
    threshold:
        δ, used by the in-probe Lemma 2 pruning.
    prune:
        Disable to keep even hopeless queries in ``R_L`` (used by the
        pruning ablation benchmark).

    Returns
    -------
    list of RelatedQuery
        Complete signatures (all K relations set) for every query sharing
        at least one min-hash value with the window and, when pruning is
        on, not yet excluded by Lemma 2.
    """
    if sketch.num_hashes != index.num_hashes:
        raise IndexError_(
            f"sketch width {sketch.num_hashes} does not match index "
            f"K={index.num_hashes}"
        )
    values = sketch.values
    num_hashes = index.num_hashes
    bound = lemma2_bound(num_hashes, threshold)

    related: List[RelatedQuery] = []
    for i in range(num_hashes):
        probe_value = int(values[i])
        row = index.rows[i]
        survivors: List[RelatedQuery] = []
        occupied_columns: Dict[int, bool] = {}
        # (1) advance existing elements and set their bit at hash i.
        for element in related:
            if i > 0:
                element.lp = index.rows[i - 1][element.lp].down
            entry_value = row[element.lp].value
            if probe_value <= entry_value:
                element.ge |= 1 << i
                if probe_value < entry_value:
                    element.lt |= 1 << i
            # (2) prune hopeless elements as early as possible.
            if prune and count_ones(element.lt) > bound:
                continue
            survivors.append(element)
            occupied_columns[element.lp] = True
        related = survivors

        # (3) find queries newly relevant at hash i (equal values).
        for column in index.equal_positions(i, probe_value):
            if column in occupied_columns:
                continue
            chain = index.walk_up_to_root(i, column)
            root = index.rows[0][chain[0]]
            assert root.qid is not None
            element = RelatedQuery(
                qid=root.qid, length_windows=root.length_windows, lp=column
            )
            for j in range(i):
                earlier_value = index.rows[j][chain[j]].value
                if int(values[j]) <= earlier_value:
                    element.ge |= 1 << j
                    if int(values[j]) < earlier_value:
                        element.lt |= 1 << j
            element.ge |= 1 << i  # relation at hash i is "=" by construction
            if prune and count_ones(element.lt) > bound:
                continue
            related.append(element)

    return related


def _batched_bisect(
    matrix: np.ndarray, targets: np.ndarray, side: str
) -> np.ndarray:
    """Row-wise ``bisect_left``/``bisect_right`` over a row-sorted matrix."""
    num_rows, num_columns = matrix.shape
    row_indices = np.arange(num_rows)
    steps = max(1, num_columns).bit_length() + 1
    lo = np.zeros(num_rows, dtype=np.int64)
    hi = np.full(num_rows, num_columns, dtype=np.int64)
    for _ in range(steps):
        active = lo < hi
        mid = (lo + hi) // 2
        safe = np.minimum(mid, num_columns - 1)
        if side == "left":
            descend = matrix[row_indices, safe] < targets
        else:
            descend = matrix[row_indices, safe] <= targets
        lo = np.where(active & descend, mid + 1, lo)
        hi = np.where(active & ~descend, mid, hi)
    return lo


def _equal_ranges(matrix: np.ndarray, targets: np.ndarray) -> tuple:
    """Batched per-row equal-run bounds over a row-sorted matrix.

    For every row ``i`` of the ``(K, m)`` matrix, returns ``left[i]`` and
    ``right[i]`` such that ``matrix[i, left:right] == targets[i]`` — the
    vectorised form of the probe's BinarySearch/EqualSearch primitive.
    """
    left = _batched_bisect(matrix, targets, "left")
    right = _batched_bisect(matrix, targets, "right")
    return left, right


def probe_index(
    sketch: Sketch,
    index: HashQueryIndex,
    threshold: float,
    prune: bool = True,
) -> List[RelatedQuery]:
    """Batched probe — same output as :func:`probe_index_reference`.

    The per-row binary searches of Figure 5 run as one vectorised search
    over the index's ``(K, m)`` value matrix; each related query's full
    relation vector is then materialised in one shot from its (pointer-
    recovered) sketch column. Pruning by Lemma 2 on the *complete*
    signature yields exactly the rows the reference walk keeps, because
    the ``<`` count is monotone over prefix rows: it crosses the bound at
    some row if and only if the full count exceeds it.
    """
    if sketch.num_hashes != index.num_hashes:
        raise IndexError_(
            f"sketch width {sketch.num_hashes} does not match index "
            f"K={index.num_hashes}"
        )
    if index.num_queries == 0:
        return []
    values = sketch.values
    bound = lemma2_bound(index.num_hashes, threshold)

    matrix = index.values_matrix
    qids = index.qid_matrix
    left, right = _equal_ranges(matrix, values)
    rows_with_equals = np.flatnonzero(right > left)
    if rows_with_equals.size == 0:
        return []

    # First equal row per query, preserving the reference discovery order
    # (row-major, then column order inside the equal run).
    related: List[RelatedQuery] = []
    seen = set()
    for i in rows_with_equals:
        for column in range(int(left[i]), int(right[i])):
            qid = int(qids[i, column])
            if qid in seen:
                continue
            seen.add(qid)
            query_values = index.cached_sketch_values(qid)
            lt = _pack_bits(values < query_values)
            if prune and count_ones(lt) > bound:
                continue
            related.append(
                RelatedQuery(
                    qid=qid,
                    length_windows=index.length_of(qid),
                    ge=_pack_bits(values <= query_values),
                    lt=lt,
                    # The reference walk leaves every surviving element's
                    # cursor on its row-(K-1) entry; report the same
                    # final position, not the first-equal row's column.
                    lp=index.last_row_column_of(qid),
                )
            )
    return related


def _pack_bits(flags: np.ndarray) -> int:
    """Pack a boolean vector into an int with bit ``r`` = ``flags[r]``."""
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")
