"""The Hash-Query array ``HQ[K][m]`` (paper Figure 3/4).

Each of the ``K`` rows holds one triple ⟨value, up, down⟩ per subscribed
query, sorted by ``value``:

* ``value`` — the query's min-hash value under hash function ``i``;
* ``up``   — the *position* (column) of the same query's hash ``i−1``
  value in row ``i−1`` (undefined on row 0);
* ``down`` — the position of the same query's hash ``i+1`` value in row
  ``i+1`` (undefined on the last row).

Row 0 entries additionally carry the query id and the query length, which
is what an up-walk terminates on. Binary search over a row finds the
entries equal to a probe value; the up/down chains recover the rest of
that query's sketch without ever touching non-relevant queries.

Queries can be subscribed and unsubscribed online; insertion/removal at a
position shifts the tail of a row, so the neighbouring rows' pointers that
cross the shifted region are patched (the "up and down should also be
updated" maintenance from Section V-C.1).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.minhash.sketch import Sketch

__all__ = ["HashQueryIndex", "IndexEntry"]


@dataclass
class IndexEntry:
    """One ⟨value, up, down⟩ triple; row-0 entries also know their query.

    ``up``/``down`` are column positions in the adjacent rows, or ``-1``
    where undefined (``up`` on row 0, ``down`` on the last row).
    """

    value: int
    up: int = -1
    down: int = -1
    qid: Optional[int] = None
    length_windows: int = 0


class HashQueryIndex:
    """The ``K``-row Hash-Query structure with online maintenance.

    Parameters
    ----------
    num_hashes:
        ``K`` — every subscribed sketch must have this width.
    """

    def __init__(self, num_hashes: int) -> None:
        if num_hashes <= 0:
            raise IndexError_(f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self.rows: List[List[IndexEntry]] = [[] for _ in range(num_hashes)]
        # Parallel sorted value lists per row, kept in lockstep with
        # ``rows`` so probes can binary-search without attribute access.
        self._row_values: List[List[int]] = [[] for _ in range(num_hashes)]
        # Lazily built (K, m) matrix of row values for the batched probe;
        # invalidated by any structural change.
        self._matrix: Optional[np.ndarray] = None
        # Lazily built column -> qid maps per row (denormalised view used
        # only to report probe results; the structure of record remains
        # the pointer-linked rows).
        self._qid_matrix: Optional[np.ndarray] = None
        self._sketch_cache: Optional[Dict[int, np.ndarray]] = None
        self._length_cache: Optional[Dict[int, int]] = None
        self._last_row_columns: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        sketches: Dict[int, Sketch],
        lengths_windows: Dict[int, int],
    ) -> "HashQueryIndex":
        """BuildIndex(QS): bulk-construct from query sketches.

        Parameters
        ----------
        sketches:
            Mapping query id -> K-min-hash sketch.
        lengths_windows:
            Mapping query id -> query length measured in basic windows
            (used for per-query candidate expiry, Section V-B remark (2)).
        """
        if not sketches:
            raise IndexError_("cannot build an index over zero queries")
        qids = sorted(sketches)
        for qid in qids:
            if qid not in lengths_windows:
                raise IndexError_(f"missing length for query {qid}")
            if lengths_windows[qid] <= 0:
                raise IndexError_(
                    f"length for query {qid} must be positive, "
                    f"got {lengths_windows[qid]}"
                )
        first = sketches[qids[0]]
        for qid in qids:
            if sketches[qid].num_hashes != first.num_hashes:
                raise IndexError_(
                    f"query {qid} sketch width differs from the others"
                )

        index = cls(first.num_hashes)
        num_queries = len(qids)
        # (m, K) value matrix, query row order matching ``qids``.
        values = np.stack([sketches[qid].values for qid in qids])

        # Column position of each query per row, via stable per-row sorts.
        orders = np.argsort(values, axis=0, kind="stable")  # (m, K): rank -> query
        positions = np.empty_like(orders)  # (m, K): query -> rank
        ranks = np.arange(num_queries)
        for i in range(index.num_hashes):
            positions[orders[:, i], i] = ranks

        for i in range(index.num_hashes):
            row: List[IndexEntry] = []
            for rank in range(num_queries):
                query_index = int(orders[rank, i])
                entry = IndexEntry(
                    value=int(values[query_index, i]),
                    up=int(positions[query_index, i - 1]) if i > 0 else -1,
                    down=(
                        int(positions[query_index, i + 1])
                        if i + 1 < index.num_hashes
                        else -1
                    ),
                )
                if i == 0:
                    qid = qids[query_index]
                    entry.qid = qid
                    entry.length_windows = lengths_windows[qid]
                row.append(entry)
            index.rows[i] = row
            index._row_values[i] = [entry.value for entry in row]
        return index

    @property
    def num_queries(self) -> int:
        """Number of currently subscribed queries."""
        return len(self.rows[0])

    @property
    def query_ids(self) -> List[int]:
        """Subscribed query ids (in row-0 value order)."""
        return [entry.qid for entry in self.rows[0] if entry.qid is not None]

    def insert(self, qid: int, sketch: Sketch, length_windows: int) -> None:
        """Subscribe a query online.

        Inserts one triple into every row at its value-sorted position and
        patches every pointer that crosses a shifted region.
        """
        if sketch.num_hashes != self.num_hashes:
            raise IndexError_(
                f"sketch width {sketch.num_hashes} does not match index "
                f"K={self.num_hashes}"
            )
        if length_windows <= 0:
            raise IndexError_(
                f"length_windows must be positive, got {length_windows}"
            )
        if any(entry.qid == qid for entry in self.rows[0]):
            raise IndexError_(f"query {qid} is already subscribed")

        previous_position = -1
        for i in range(self.num_hashes):
            value = int(sketch.values[i])
            position = bisect_right(self._row_values[i], value)
            entry = IndexEntry(value=value, up=previous_position)
            if i == 0:
                entry.qid = qid
                entry.length_windows = length_windows
            # Pointers in the row above that land at or past the insertion
            # point now refer to shifted columns.
            if i > 0:
                for above in self.rows[i - 1]:
                    if above.down >= position:
                        above.down += 1
                self.rows[i - 1][previous_position].down = position
            # Pointers in the row below still reference this row's old
            # layout; shift the crossers.
            if i + 1 < self.num_hashes:
                for below in self.rows[i + 1]:
                    if below.up >= position:
                        below.up += 1
            self.rows[i].insert(position, entry)
            self._row_values[i].insert(position, value)
            previous_position = position
        self._invalidate_caches()

    def remove(self, qid: int) -> None:
        """Unsubscribe a query online (inverse pointer maintenance)."""
        position = -1
        for column, entry in enumerate(self.rows[0]):
            if entry.qid == qid:
                position = column
                break
        if position < 0:
            raise IndexError_(f"query {qid} is not subscribed")

        for i in range(self.num_hashes):
            entry = self.rows[i][position]
            next_position = entry.down
            del self.rows[i][position]
            del self._row_values[i][position]
            if i > 0:
                for above in self.rows[i - 1]:
                    if above.down > position:
                        above.down -= 1
            if i + 1 < self.num_hashes:
                for below in self.rows[i + 1]:
                    if below.up > position:
                        below.up -= 1
            position = next_position
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # batched views
    # ------------------------------------------------------------------

    def _invalidate_caches(self) -> None:
        self._matrix = None
        self._qid_matrix = None
        self._sketch_cache = None
        self._length_cache = None
        self._last_row_columns = None

    def cached_sketch_values(self, qid: int) -> np.ndarray:
        """Memoised :meth:`sketch_values_of` (one down-walk per query)."""
        if getattr(self, "_sketch_cache", None) is None:
            self._sketch_cache = {}
        if qid not in self._sketch_cache:
            self._sketch_cache[qid] = self.sketch_values_of(qid)
        return self._sketch_cache[qid]

    def length_of(self, qid: int) -> int:
        """Query length in windows, from the row-0 entries (memoised)."""
        if getattr(self, "_length_cache", None) is None:
            self._length_cache = {
                entry.qid: entry.length_windows for entry in self.rows[0]
            }
        if qid not in self._length_cache:
            raise IndexError_(f"query {qid} is not subscribed")
        return self._length_cache[qid]

    @property
    def values_matrix(self) -> np.ndarray:
        """The row values as a ``(K, m)`` int64 matrix (rows sorted).

        Built lazily and invalidated on insert/remove; backs the batched
        binary search of the fast probe.
        """
        if self._matrix is None:
            self._matrix = np.asarray(self._row_values, dtype=np.int64).reshape(
                self.num_hashes, self.num_queries
            )
        return self._matrix

    def warm_caches(self) -> None:
        """Materialise every lazy view (offline, like index construction).

        The paper min-hashes query sequences offline; the derived lookup
        structures used by the batched probe belong to the same offline
        phase. Calling this after build/insert/remove keeps the online
        probe path free of one-time construction costs.
        """
        _ = self.values_matrix
        _ = self.qid_matrix
        for entry in self.rows[0]:
            assert entry.qid is not None
            self.cached_sketch_values(entry.qid)
            self.length_of(entry.qid)
            self.last_row_column_of(entry.qid)

    def last_row_column_of(self, qid: int) -> int:
        """Column of query ``qid`` in row ``K-1`` (memoised).

        This is where the Figure 5 walk's ``lp`` cursor ends after the
        probe has advanced through all K rows; the batched probe reads
        it here so its returned :class:`~repro.index.probe.RelatedQuery`
        elements agree with the reference walk field-for-field.
        """
        if getattr(self, "_last_row_columns", None) is None:
            last_row = self.qid_matrix[self.num_hashes - 1]
            self._last_row_columns = {
                int(q): column for column, q in enumerate(last_row)
            }
        if qid not in self._last_row_columns:
            raise IndexError_(f"query {qid} is not subscribed")
        return self._last_row_columns[qid]

    @property
    def qid_matrix(self) -> np.ndarray:
        """Per-row column -> query id map, shape ``(K, m)``.

        Materialised by following every down-chain once; equivalent to
        performing the probe's up-walks ahead of time.
        """
        if self._qid_matrix is None:
            qids = np.empty((self.num_hashes, self.num_queries), dtype=np.int64)
            for root_column, root in enumerate(self.rows[0]):
                column = root_column
                for i in range(self.num_hashes):
                    qids[i, column] = root.qid
                    column = self.rows[i][column].down
            self._qid_matrix = qids
        return self._qid_matrix

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def equal_positions(self, row: int, value: int) -> range:
        """Columns of row ``row`` whose value equals ``value`` (may be empty).

        This is the BinarySearch/EqualSearch primitive of the probe
        algorithm: binary search for the equal run's bounds.
        """
        if not 0 <= row < self.num_hashes:
            raise IndexError_(f"row {row} outside [0, {self.num_hashes})")
        values = self._row_values[row]
        lo = bisect_left(values, value)
        hi = bisect_right(values, value)
        return range(lo, hi)

    def walk_up_to_root(self, row: int, column: int) -> List[int]:
        """Follow ``up`` pointers from (row, column) to row 0.

        Returns the visited columns, index ``i`` of the result being the
        column in row ``i`` (so the result has ``row + 1`` entries and the
        first one identifies the query).
        """
        if not 0 <= row < self.num_hashes:
            raise IndexError_(f"row {row} outside [0, {self.num_hashes})")
        if not 0 <= column < len(self.rows[row]):
            raise IndexError_(
                f"column {column} outside row {row} of size {len(self.rows[row])}"
            )
        columns = [0] * (row + 1)
        columns[row] = column
        current = column
        for i in range(row, 0, -1):
            current = self.rows[i][current].up
            columns[i - 1] = current
        return columns

    def query_of_column(self, row: int, column: int) -> IndexEntry:
        """Row-0 entry (query id + length) reached by an up-walk."""
        root_column = self.walk_up_to_root(row, column)[0]
        return self.rows[0][root_column]

    def sketch_values_of(self, qid: int) -> np.ndarray:
        """Recover a query's full sketch by a down-walk (Section V-C.1)."""
        position = -1
        for column, entry in enumerate(self.rows[0]):
            if entry.qid == qid:
                position = column
                break
        if position < 0:
            raise IndexError_(f"query {qid} is not subscribed")
        values = np.empty(self.num_hashes, dtype=np.int64)
        for i in range(self.num_hashes):
            entry = self.rows[i][position]
            values[i] = entry.value
            position = entry.down
        return values

    def canonical_state(self) -> Dict[int, Tuple[Tuple[int, ...], int]]:
        """Order-independent content view: qid → (sketch values, length).

        Two indexes holding the same queries are semantically equal iff
        their canonical states match — regardless of how equal-valued
        columns are ordered, which legitimately differs between an
        incrementally maintained index and one rebuilt from scratch.
        The online-maintenance fuzz compares this (plus
        :meth:`check_invariants` on both sides) after every
        insert/remove interleaving.
        """
        return {
            qid: (
                tuple(int(v) for v in self.sketch_values_of(qid)),
                self.length_of(qid),
            )
            for qid in self.query_ids
        }

    def check_invariants(self) -> None:
        """Validate structural invariants (used by tests).

        * every row is value-sorted and has one entry per query;
        * up/down chains are mutually inverse;
        * row-0 entries carry distinct query ids.
        """
        m = self.num_queries
        seen_qids = set()
        for entry in self.rows[0]:
            if entry.qid is None:
                raise IndexError_("row-0 entry without a query id")
            if entry.qid in seen_qids:
                raise IndexError_(f"duplicate query id {entry.qid} in row 0")
            seen_qids.add(entry.qid)
        for i, row in enumerate(self.rows):
            if len(row) != m:
                raise IndexError_(
                    f"row {i} has {len(row)} entries, expected {m}"
                )
            if self._row_values[i] != [e.value for e in row]:
                raise IndexError_(f"row {i} value cache out of sync")
            for column in range(1, m):
                if row[column - 1].value > row[column].value:
                    raise IndexError_(f"row {i} is not sorted at column {column}")
            for column, entry in enumerate(row):
                if i + 1 < self.num_hashes:
                    below = self.rows[i + 1][entry.down]
                    if below.up != column:
                        raise IndexError_(
                            f"down/up pointer mismatch at row {i}, column {column}"
                        )
