"""The Hash-Query index over continuous-query sketches (Section V-C).

With many subscribed query videos, comparing every basic window against
every query sketch wastes both CPU and memory: a window is typically
relevant to at most a handful of queries. The Hash-Query structure stores
the ``m x K`` query min-hash values as ``K`` value-sorted rows linked by
``up``/``down`` position pointers, so that probing a window sketch touches
only the queries that share at least one min-hash value with it — and
yields their bit signatures as a by-product.
"""

from repro.index.hq import HashQueryIndex, IndexEntry
from repro.index.probe import RelatedQuery, probe_index, probe_index_reference

__all__ = [
    "HashQueryIndex",
    "IndexEntry",
    "RelatedQuery",
    "probe_index",
    "probe_index_reference",
]
