"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the workflow a user of the original system would
need without writing Python:

* ``demo``   — build a seeded synthetic workload (VS1 or VS2), run the
  detector and print the detection report with precision/recall.
* ``sweep``  — sweep one detector parameter (K, delta or w) over the
  same workload and print the resulting series, the way the paper's
  figures are produced.
* ``stats``  — run the detector once and emit its full observability
  snapshot (phase timers + engine counters) as JSON plus a one-line
  logfmt digest.
* ``inspect``— encode a synthetic clip through the toy codec and report
  the bitstream structure plus partial-decode statistics.
* ``serve``  — run the same workload through the sharded multi-worker
  detection service (``repro.serve``): pick a worker count and backend,
  optionally checkpoint every N chunks and resume a killed run from the
  latest snapshot with ``--resume``.
* ``ingest`` — run the fault-tolerant multi-stream ingestion layer
  (``repro.ingest``): N synthetic bitstream sources, optional fault
  injection (bit flips, truncation, drops, duplicates, stalls), a
  degradation policy for damaged GOPs and a scheduling policy across
  streams. A query copy is planted in every stream so detection can be
  eyeballed end to end.
* ``gateway`` — serve detection over TCP (``repro.gateway``): builds
  the workload's query set, fronts a sharded service with the
  ``repro.wire/1`` protocol and runs until interrupted (graceful
  drain + final checkpoint on SIGINT/SIGTERM).
* ``push``   — stream the workload's chunks into a running gateway as
  an ingest client; ``--kill-after`` crashes mid-stream and prints the
  resume token, ``--resume-token`` continues where that left off.
* ``watch``  — subscribe to a running gateway's match stream and print
  events in canonical order as they happen.

``demo``, ``sweep``, ``stats``, ``serve`` and ``ingest`` all accept
``--metrics-out PATH`` to write the same ``repro.obs/1`` JSON snapshot
benchmarks dump next to their figures (sweeps write one snapshot per
swept value; serve writes the cross-worker merged snapshot).

``serve`` and ``ingest`` exit cleanly on SIGINT/SIGTERM: in-flight
chunks drain, stream tails flush (ingest) and — when a checkpoint
directory is configured — a final snapshot is written so ``--resume``
can continue the run.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from typing import List, Optional, Sequence

from repro.codec.gop import decode_dc_coefficients, encode_video
from repro.config import (
    CombinationOrder,
    DetectorConfig,
    Representation,
    ScaleProfile,
)
from repro.core.results import merge_matches
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.obs.registry import MetricsRegistry
from repro.obs.export import logfmt_digest
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary

__all__ = ["build_parser", "main"]


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    """Workload-construction options shared by demo/sweep/stats."""
    parser.add_argument("--stream", choices=("vs1", "vs2"), default="vs2",
                        help="original inserts (vs1) or attacked ones (vs2)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--stream-seconds", type=float, default=900.0)


def _add_detector_args(parser: argparse.ArgumentParser) -> None:
    """Detector-configuration options shared by demo/stats."""
    parser.add_argument("--hashes", type=int, default=400, metavar="K")
    parser.add_argument("--threshold", type=float, default=0.7,
                        metavar="DELTA")
    parser.add_argument("--window-seconds", type=float, default=5.0,
                        metavar="W")
    parser.add_argument("--order", choices=("sequential", "geometric"),
                        default="sequential")
    parser.add_argument("--representation", choices=("bit", "sketch"),
                        default="bit")
    parser.add_argument("--no-index", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous content-based copy detection over "
        "streaming videos (ICDE 2008 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="build a synthetic workload and run the detector"
    )
    _add_workload_args(demo)
    _add_detector_args(demo)
    demo.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the run's JSON metrics snapshot here")

    sweep = subparsers.add_parser(
        "sweep", help="sweep one detector parameter over a workload"
    )
    sweep.add_argument("parameter", choices=("hashes", "threshold", "window"))
    sweep.add_argument("values", nargs="+", type=float,
                       help="parameter values to sweep")
    _add_workload_args(sweep)
    sweep.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write one JSON metrics snapshot per swept "
                       "value here")

    stats = subparsers.add_parser(
        "stats", help="run the detector and emit its metrics snapshot"
    )
    _add_workload_args(stats)
    _add_detector_args(stats)
    stats.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the JSON snapshot here instead of stdout")
    stats.add_argument("--no-timers", action="store_true",
                       help="disable phase wall-clock timers (counters "
                       "only)")

    serve = subparsers.add_parser(
        "serve", help="run the sharded multi-worker detection service"
    )
    _add_workload_args(serve)
    _add_detector_args(serve)
    serve.add_argument("--workers", type=int, default=2,
                       help="shard / worker count")
    serve.add_argument("--backend", choices=("serial", "thread", "process"),
                       default="serial",
                       help="executor: in-process, threads, or OS processes")
    serve.add_argument("--plan", choices=("count", "load"), default="load",
                       help="shard balancing strategy")
    serve.add_argument("--queue-capacity", type=int, default=4,
                       help="bound on each worker's ingestion queue")
    serve.add_argument("--policy",
                       choices=("block", "drop_oldest", "shed"),
                       default="block",
                       help="backpressure policy when a queue is full "
                       "(only 'block' preserves exact single-process "
                       "equivalence)")
    serve.add_argument("--chunk-seconds", type=float, default=30.0,
                       help="stream seconds per ingested chunk")
    serve.add_argument("--self-sketch", action="store_true",
                       help="disable the sketch-once front end: every "
                       "worker re-sketches the raw stream itself (the "
                       "bit-for-bit reference protocol)")
    serve.add_argument("--batch-chunks", type=int, default=4,
                       help="sketch-once mode: chunks sketched and "
                       "shipped per WindowBatch")
    serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="directory for service snapshots")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N", help="snapshot every N chunks")
    serve.add_argument("--checkpoint-keep", type=int, default=0,
                       metavar="N", help="retain only the newest N "
                       "snapshots (0 = keep everything; pruning never "
                       "deletes the only loadable snapshot)")
    serve.add_argument("--archive-dir", metavar="DIR", default=None,
                       help="retain every basic window's sketch in a "
                       "repro.arch/1 segment archive under DIR, "
                       "enabling --subscribe-at ...:backfill=N")
    serve.add_argument("--archive-retain", metavar="SPEC", default=None,
                       help="archive retention bounds as KEY=VALUE "
                       "pairs joined by ',': windows=N, bytes=N, "
                       "seconds=S (e.g. 'windows=5000,bytes=64000000'; "
                       "with no --archive-dir the archive stays "
                       "in-memory, bounded by windows=)")
    serve.add_argument("--archive-segment-windows", type=int,
                       default=256, metavar="N",
                       help="windows per sealed archive segment (also "
                       "the archive's resident-memory bound)")
    serve.add_argument("--stop-after", type=int, default=0, metavar="N",
                       help="stop (without flushing) after N chunks — "
                       "pairs with --resume to exercise recovery")
    serve.add_argument("--resume", action="store_true",
                       help="resume from the latest snapshot in "
                       "--checkpoint-dir")
    serve.add_argument("--subscribe-at", action="append", default=[],
                       metavar="WINDOW:QUERYFILE[:backfill=N]",
                       help="subscribe every query in the "
                       "repro.persistence query-set file QUERYFILE at "
                       "the chunk barrier after WINDOW chunks "
                       "(0 = before the first chunk; repeatable; on "
                       "--resume, barriers the checkpoint already "
                       "contains are skipped). An optional "
                       ":backfill=N suffix retrospectively probes the "
                       "last N archived basic windows for each query "
                       "(requires --archive-dir or --archive-retain)")
    serve.add_argument("--unsubscribe-at", action="append", default=[],
                       metavar="WINDOW:QID",
                       help="unsubscribe query QID at the chunk barrier "
                       "after WINDOW chunks (repeatable, resume-aware "
                       "like --subscribe-at)")
    serve.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write the merged cross-worker JSON snapshot "
                       "here")
    serve.add_argument("--pace", type=float, default=0.0, metavar="SECONDS",
                       help="sleep between chunks to simulate live "
                       "arrival (also makes signal-driven shutdown "
                       "deterministic to test)")
    serve.add_argument("--supervise", action="store_true",
                       help="wrap the executor in the shard supervisor: "
                       "dead/stalled/poisoned workers are respawned and "
                       "their shard replayed from the last rolling "
                       "snapshot (thread/process backends only)")
    serve.add_argument("--chaos", metavar="PLAN", default=None,
                       help="deterministic fault injection (implies "
                       "--supervise): either explicit events "
                       "'kind:worker@seq[:seconds]' comma-separated "
                       "(kinds: kill, stall, poison) or 'seed:N' to "
                       "generate one event per worker")
    serve.add_argument("--shard-snapshot-every", type=int, default=8,
                       metavar="N",
                       help="supervisor rolling-snapshot cadence: probe "
                       "each shard's state every N stream messages "
                       "(bounds replay-buffer depth; default 8)")
    serve.add_argument("--recovery-deadline", type=float, default=5.0,
                       metavar="SECONDS",
                       help="supervisor recv deadline before a worker "
                       "counts as stalled (default 5.0)")
    serve.add_argument("--max-restarts", type=int, default=3, metavar="N",
                       help="restarts per shard before the circuit "
                       "breaker quarantines it (default 3)")

    ingest = subparsers.add_parser(
        "ingest",
        help="run the fault-tolerant multi-stream ingestion scheduler",
    )
    ingest.add_argument("--streams", type=int, default=3,
                        help="number of concurrent synthetic streams")
    ingest.add_argument("--chunks", type=int, default=10,
                        help="chunks per stream")
    ingest.add_argument("--chunk-seconds", type=float, default=2.0,
                        help="stream seconds per chunk")
    ingest.add_argument("--faults", choices=("none", "light", "heavy"),
                        default="light",
                        help="fault-injection preset applied to every "
                        "stream")
    ingest.add_argument("--policy", choices=("round_robin", "deficit"),
                        default="round_robin",
                        help="scheduling discipline across streams")
    ingest.add_argument("--degrade",
                        choices=("skip_window", "zero_fill", "fail"),
                        default="skip_window",
                        help="what to do with undecodable key frames")
    ingest.add_argument("--pool", type=int, default=0,
                        help="detector worker threads (0 = inline)")
    ingest.add_argument("--queue-capacity", type=int, default=4,
                        help="per-stream chunk queue bound")
    ingest.add_argument("--seed", type=int, default=42)
    ingest.add_argument("--entropy", action="store_true",
                        help="use exp-Golomb entropy coding in the "
                        "synthetic bitstreams")
    ingest.add_argument("--hashes", type=int, default=128, metavar="K")
    ingest.add_argument("--threshold", type=float, default=0.7,
                        metavar="DELTA")
    ingest.add_argument("--window-seconds", type=float, default=2.0,
                        metavar="W")
    ingest.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the nested repro.ingest/1 JSON "
                        "snapshot here")

    gateway = subparsers.add_parser(
        "gateway",
        help="serve detection over TCP (the repro.wire/1 protocol)",
    )
    _add_workload_args(gateway)
    _add_detector_args(gateway)
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks a free one)")
    gateway.add_argument("--workers", type=int, default=2,
                         help="shard / worker count")
    gateway.add_argument("--backend",
                         choices=("serial", "thread", "process"),
                         default="thread")
    gateway.add_argument("--policy",
                         choices=("block", "drop_oldest", "shed"),
                         default="block",
                         help="backpressure policy behind the credit "
                         "window (lossy policies surface as counted "
                         "drop notices)")
    gateway.add_argument("--credits", type=int, default=8,
                         help="ingest credit window (bounds server-side "
                         "buffered chunks)")
    gateway.add_argument("--heartbeat", type=float, default=10.0,
                         metavar="SECONDS")
    gateway.add_argument("--idle-timeout", type=float, default=60.0,
                         metavar="SECONDS")
    gateway.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="write a final service snapshot here on "
                         "shutdown (and on admin checkpoint requests)")
    gateway.add_argument("--port-file", metavar="PATH", default=None,
                         help="write the bound port here once listening "
                         "(for scripts that need to find a 0-port "
                         "server)")

    push = subparsers.add_parser(
        "push", help="stream workload chunks into a running gateway"
    )
    _add_workload_args(push)
    push.add_argument("--host", default="127.0.0.1")
    push.add_argument("--port", type=int, required=True)
    push.add_argument("--chunk-seconds", type=float, default=30.0,
                      help="stream seconds per pushed chunk")
    push.add_argument("--kill-after", type=int, default=0, metavar="N",
                      help="crash the connection after N chunks and "
                      "print the resume token (tests reconnect/resume)")
    push.add_argument("--resume-token", default=None, metavar="TOKEN",
                      help="resume a crashed push session; re-pushes "
                      "from the server's last acknowledged chunk")
    push.add_argument("--no-end", action="store_true",
                      help="leave the stream open (no tail flush) after "
                      "the last chunk")

    watch = subparsers.add_parser(
        "watch", help="print a running gateway's match stream"
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, required=True)
    watch.add_argument("--credits", type=int, default=32,
                       help="match-event flow-control window granted to "
                       "the server")
    watch.add_argument("--resume-token", default=None, metavar="TOKEN")
    watch.add_argument("--last-acked", type=int, default=None, metavar="ID",
                       help="resume the event stream after this match id")

    inspect = subparsers.add_parser(
        "inspect", help="encode a synthetic clip and inspect the bitstream"
    )
    inspect.add_argument("--seconds", type=float, default=10.0)
    inspect.add_argument("--quality", type=int, default=75)
    inspect.add_argument("--gop", type=int, default=12)
    inspect.add_argument("--motion", action="store_true",
                         help="use motion-compensated prediction")
    inspect.add_argument("--entropy", action="store_true",
                         help="use exp-Golomb entropy coding")
    inspect.add_argument("--seed", type=int, default=0)
    return parser


def _build_workload(args: argparse.Namespace) -> PreparedWorkload:
    profile = ScaleProfile(
        stream_seconds=args.stream_seconds,
        num_queries=args.queries,
        query_min_seconds=20.0,
        query_max_seconds=50.0,
    )
    library = ClipLibrary.generate(profile, seed=args.seed)
    doctor = StreamDoctor(profile, seed=args.seed)
    stream = (
        doctor.build_vs1(library)
        if args.stream == "vs1"
        else doctor.build_vs2(library, noise_sigma=2.0)
    )
    print(f"Built {stream.name}: {stream.clip.num_frames} key frames, "
          f"{len(stream.ground_truth)} insertions, "
          f"{len(library)} continuous queries")
    return PreparedWorkload.prepare(stream, library)


def _detector_config(args: argparse.Namespace) -> DetectorConfig:
    return DetectorConfig(
        num_hashes=args.hashes,
        threshold=args.threshold,
        window_seconds=args.window_seconds,
        order=CombinationOrder(args.order),
        representation=Representation(args.representation),
        use_index=not args.no_index,
    )


def _write_metrics(path: str, payload: object) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"metrics snapshot written to {path}")


def _command_demo(args: argparse.Namespace) -> int:
    prepared = _build_workload(args)
    config = _detector_config(args)
    result = run_detector(prepared, config)
    window_frames = max(
        1, round(args.window_seconds * prepared.keyframes_per_second)
    )
    detections = merge_matches(result.matches, gap_frames=window_frames)
    rows = [
        [d.qid, d.start_frame, d.end_frame, f"{d.peak_similarity:.2f}"]
        for d in detections
    ]
    print()
    print(format_table(
        ["query", "start frame", "end frame", "peak sim"],
        rows,
        title="Detections",
    ))
    print()
    print(f"precision={result.quality.precision:.3f} "
          f"recall={result.quality.recall:.3f} "
          f"cpu={result.cpu_seconds:.3f}s "
          f"avg_signatures={result.stats.avg_signatures:.1f}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    prepared = _build_workload(args)
    precisions: List[float] = []
    recalls: List[float] = []
    cpu: List[float] = []
    snapshots: List[dict] = []
    for value in args.values:
        if args.parameter == "hashes":
            config = DetectorConfig(num_hashes=int(value))
        elif args.parameter == "threshold":
            config = DetectorConfig(threshold=value)
        else:
            config = DetectorConfig(window_seconds=value)
        result = run_detector(prepared, config)
        precisions.append(result.quality.precision)
        recalls.append(result.quality.recall)
        cpu.append(result.cpu_seconds)
        snapshots.append(
            {"parameter": args.parameter, "value": value,
             "metrics": result.metrics}
        )
    print()
    print(format_series("precision", args.values, precisions))
    print(format_series("recall", args.values, recalls))
    print(format_series("cpu_seconds", args.values, cpu))
    if args.metrics_out:
        _write_metrics(args.metrics_out, snapshots)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    prepared = _build_workload(args)
    config = _detector_config(args)
    registry = MetricsRegistry(timing_enabled=not args.no_timers)
    result = run_detector(prepared, config, registry=registry)
    print()
    print(logfmt_digest(registry))
    if args.metrics_out:
        _write_metrics(args.metrics_out, result.metrics)
    else:
        print()
        print(json.dumps(result.metrics, indent=2, sort_keys=True))
    return 0


def _churn_schedule(args: argparse.Namespace) -> list:
    """Parse --subscribe-at/--unsubscribe-at into a sorted op list.

    Returns ``(window, kind, payload)`` tuples; subscribes sort before
    unsubscribes at the same barrier so a swap never empties a shard.
    """
    schedule = []
    for spec in args.subscribe_at:
        window, sep, rest = spec.partition(":")
        path, _, option = rest.rpartition(":")
        if path and option.startswith("backfill="):
            if not option[len("backfill="):].isdigit():
                raise ValueError(
                    f"--subscribe-at backfill needs a number, got {spec!r}"
                )
            backfill = int(option[len("backfill="):])
        else:
            path, backfill = rest, 0
        if not sep or not path or not window.isdigit():
            raise ValueError(
                f"--subscribe-at needs WINDOW:QUERYFILE[:backfill=N], "
                f"got {spec!r}"
            )
        schedule.append((int(window), 0, "subscribe", (path, backfill)))
    for spec in args.unsubscribe_at:
        window, sep, qid = spec.partition(":")
        if not sep or not window.isdigit() or not qid.lstrip("-").isdigit():
            raise ValueError(
                f"--unsubscribe-at needs WINDOW:QID, got {spec!r}"
            )
        schedule.append((int(window), 1, "unsubscribe", int(qid)))
    schedule.sort(key=lambda item: item[:2])
    return [(window, kind, payload) for window, _, kind, payload in schedule]


def _parse_archive_retain(spec: str) -> dict:
    """Parse ``--archive-retain`` KEY=VALUE pairs into SketchArchive
    retention kwargs."""
    keys = {"windows": ("retain_windows", int),
            "bytes": ("retain_bytes", int),
            "seconds": ("retain_seconds", float)}
    bounds = {}
    for part in spec.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in keys:
            raise ValueError(
                "--archive-retain needs windows=/bytes=/seconds= "
                f"pairs, got {part!r}"
            )
        name, cast = keys[key]
        try:
            bounds[name] = cast(value)
        except ValueError:
            raise ValueError(
                f"--archive-retain {key}= needs a number, got {value!r}"
            )
    return bounds


def _command_serve(args: argparse.Namespace) -> int:
    from repro.archive import SketchArchive
    from repro.core.query import QuerySet
    from repro.evaluation.metrics import score_matches
    from repro.minhash.family import MinHashFamily
    from repro.persistence import load_query_set
    from repro.serve import (
        BackpressurePolicy,
        ChaosPlan,
        CheckpointManager,
        DetectionService,
        SupervisorConfig,
    )

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    supervise = args.supervise or args.chaos is not None
    if supervise and args.backend == "serial":
        print("--supervise/--chaos require --backend thread or process",
              file=sys.stderr)
        return 2
    try:
        churn = _churn_schedule(args)
        retain = (
            _parse_archive_retain(args.archive_retain)
            if args.archive_retain
            else {}
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    wants_backfill = any(
        kind == "subscribe" and payload[1]
        for _, kind, payload in churn
    )
    if wants_backfill and not (args.archive_dir or args.archive_retain):
        print("--subscribe-at ...:backfill=N requires --archive-dir "
              "or --archive-retain", file=sys.stderr)
        return 2
    prepared = _build_workload(args)
    config = _detector_config(args)
    chunk_frames = max(
        1, round(args.chunk_seconds * prepared.keyframes_per_second)
    )
    stream = prepared.stream_cell_ids
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, len(stream), chunk_frames)
    ]
    manager = (
        CheckpointManager(
            args.checkpoint_dir, keep_last=args.checkpoint_keep or None
        )
        if args.checkpoint_dir
        else None
    )
    policy = BackpressurePolicy(args.policy)
    chaos_plan = None
    if args.chaos:
        # Chaos positions count stream messages per worker: one per
        # chunk when self-sketching, one per WindowBatch otherwise.
        per_worker = (
            len(chunks) if args.self_sketch
            else max(1, -(-len(chunks) // max(1, args.batch_chunks)))
        )
        try:
            if args.chaos.startswith("seed:"):
                chaos_plan = ChaosPlan.generate(
                    int(args.chaos[len("seed:"):]),
                    args.workers,
                    horizon=per_worker,
                )
            else:
                chaos_plan = ChaosPlan.parse(args.chaos)
        except Exception as error:
            print(f"bad --chaos plan: {error}", file=sys.stderr)
            return 2
    supervisor_config = (
        SupervisorConfig(
            recv_deadline=args.recovery_deadline,
            snapshot_every=args.shard_snapshot_every,
            max_restarts=args.max_restarts,
        )
        if supervise
        else None
    )
    # The CLI always derives its family deterministically (seed 0), so an
    # archive built here carries the same fingerprint on fresh starts and
    # resumes alike; on resume, recovery reconciles the checkpointed ring
    # against whatever segments survived on disk.
    archive = None
    if args.archive_dir or args.archive_retain:
        family = MinHashFamily(num_hashes=config.num_hashes, seed=0)
        archive = SketchArchive(
            family.fingerprint,
            config.num_hashes,
            directory=args.archive_dir,
            segment_windows=args.archive_segment_windows,
            **retain,
        )
    if args.resume:
        service = DetectionService.restore(
            manager,
            expected_config=config,
            backend=args.backend,
            queue_capacity=args.queue_capacity,
            policy=policy,
            sketch_once=not args.self_sketch,
            batch_chunks=args.batch_chunks,
            archive=archive,
            backfill_async=False,
            supervisor=supervisor_config,
            chaos=chaos_plan,
        )
        start = service.chunks_ingested
        print(f"resumed from chunk {start} "
              f"({len(service.matches)} matches already collected)")
    else:
        family = MinHashFamily(num_hashes=config.num_hashes, seed=0)
        queries = QuerySet.from_cell_ids(
            prepared.query_cell_ids, prepared.query_frames, family
        )
        service = DetectionService(
            config,
            queries,
            prepared.keyframes_per_second,
            num_workers=args.workers,
            backend=args.backend,
            strategy=args.plan,
            queue_capacity=args.queue_capacity,
            policy=policy,
            sketch_once=not args.self_sketch,
            batch_chunks=args.batch_chunks,
            archive=archive,
            backfill_async=False,
            supervisor=supervisor_config,
            chaos=chaos_plan,
        )
        start = 0
    print(f"serving {len(chunks)} chunks from chunk {start} across "
          f"{service.num_workers} {args.backend} worker(s), "
          f"shards {service.shard_sizes()}")

    def apply_churn(barrier: int) -> None:
        for window, kind, payload in churn:
            if window != barrier:
                continue
            if kind == "subscribe":
                path, backfill = payload
                loaded = load_query_set(path, expected_config=config)
                for qid in sorted(loaded.query_ids):
                    shard = service.subscribe(loaded.get(qid), backfill=backfill)
                    suffix = f", backfill={backfill}" if backfill else ""
                    print(f"chunk {barrier}: subscribed query {qid} to "
                          f"shard {shard} (epoch {service.epoch}{suffix})")
            else:
                service.unsubscribe(payload)
                print(f"chunk {barrier}: unsubscribed query {payload} "
                      f"(epoch {service.epoch})")

    if args.resume:
        # Churn at barriers the checkpoint already covers replayed
        # before the snapshot was written; re-applying would double it.
        replayed = sum(1 for window, _, _ in churn if window <= start)
        if replayed:
            print(f"skipping {replayed} lifecycle op(s) already in the "
                  f"checkpoint (barrier <= {start}, epoch {service.epoch})")
    else:
        apply_churn(0)
    stopped_early = False
    signalled: List[int] = []
    previous_handlers = {
        sig: signal.signal(sig, lambda signum, frame: signalled.append(signum))
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        for position in range(start, len(chunks)):
            service.process_chunk(chunks[position])
            ingested = service.chunks_ingested
            apply_churn(ingested)
            if archive is not None:
                # Synchronous backfill keeps retro output deterministic:
                # pending probes run at chunk barriers, never mid-chunk.
                service.pump_backfill()
            if manager and args.checkpoint_every and (
                ingested % args.checkpoint_every == 0
            ):
                path = service.checkpoint(manager)
                print(f"checkpointed at chunk {ingested}: {path}")
            if args.stop_after and ingested >= args.stop_after:
                stopped_early = True
                break
            if signalled:
                # Graceful drain: the chunk boundary we are on is a
                # legal checkpoint barrier — snapshot and exit clean.
                print(f"received {signal.Signals(signalled[0]).name}, "
                      "draining")
                stopped_early = True
                break
            if args.pace > 0:
                time.sleep(args.pace)
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
    if stopped_early:
        if manager:
            path = service.checkpoint(manager)
            print(f"stopped after chunk {service.chunks_ingested}; "
                  f"snapshot {path} — rerun with --resume to continue")
        else:
            print(f"stopped after chunk {service.chunks_ingested} "
                  "(no --checkpoint-dir, nothing saved)")
    else:
        if archive is not None:
            service.drain_backfill()
        service.flush()
        quality = score_matches(
            service.matches,
            prepared.ground_truth,
            max(1, round(
                args.window_seconds * prepared.keyframes_per_second
            )),
        )
        retro = (
            f" retro={len(service.retro_matches)}"
            if archive is not None
            else ""
        )
        print(f"matches={len(service.matches)}{retro} "
              f"precision={quality.precision:.3f} "
              f"recall={quality.recall:.3f}")
    if supervise:
        counters = service.metrics_snapshot()["counters"]
        summary = " ".join(
            f"{name}={counters.get(f'serve.supervisor.{name}', 0)}"
            for name in ("kills", "stalls", "poisoned", "restarts",
                         "replayed_batches", "quarantines")
        )
        print(f"supervisor: {summary}")
        degraded = service.degraded_shards()
        if degraded:
            print(f"degraded shards: {sorted(degraded)} — matches are "
                  "partial for their queries")
    if args.metrics_out:
        _write_metrics(args.metrics_out, service.metrics_snapshot())
    service.close()
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.core.query import QuerySet
    from repro.features.pipeline import FingerprintExtractor
    from repro.ingest import (
        FAULT_PRESETS,
        DegradationPolicy,
        FaultInjector,
        INGEST_FORMAT,
        SchedulingPolicy,
        StreamScheduler,
        StreamSession,
        SyntheticSource,
    )
    from repro.minhash.family import MinHashFamily
    from repro.utils.rng import derive_seed
    from repro.video.synth import ClipSynthesizer, SynthesisConfig

    if args.streams < 1:
        print("--streams must be >= 1", file=sys.stderr)
        return 2
    config = DetectorConfig(
        num_hashes=args.hashes,
        threshold=args.threshold,
        window_seconds=args.window_seconds,
    )
    extractor = FingerprintExtractor()
    plan = FAULT_PRESETS[args.faults]
    policy = DegradationPolicy(args.degrade)

    # Plant one query copy into every stream at a known chunk so each
    # stream has something to detect; fault injection may destroy it.
    query_synth = ClipSynthesizer(
        SynthesisConfig(video_format=INGEST_FORMAT),
        seed=derive_seed(args.seed, "ingest-query"),
    )
    query_clip = query_synth.generate_clip(args.chunk_seconds, "query")
    copy_at = min(2, args.chunks - 1)
    sources = [
        SyntheticSource(
            stream_id,
            args.seed,
            args.chunks,
            chunk_seconds=args.chunk_seconds,
            entropy_coding=args.entropy,
            copies={copy_at: query_clip},
        )
        for stream_id in range(args.streams)
    ]
    # Query fingerprints come from the *encoded* copy so the query and
    # stream sides see identical quantisation.
    query_ids = extractor.cell_ids_from_encoded(
        sources[0].encode_chunk(copy_at)
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=0)
    queries = QuerySet.from_cell_ids(
        {1: query_ids}, {1: int(query_ids.shape[0])}, family,
        labels={1: "planted-copy"},
    )

    hint = int(round(
        args.chunk_seconds * sources[0].keyframes_per_second
    ))
    pairs = []
    for source in sources:
        session = StreamSession(
            source.stream_id,
            config,
            queries,
            source.keyframes_per_second,
            extractor=extractor,
            policy=policy,
            chunk_keyframes_hint=hint,
        )
        feed = (
            source
            if args.faults == "none"
            else FaultInjector(
                source, plan,
                seed=derive_seed(args.seed, f"faults-{source.stream_id}"),
            )
        )
        pairs.append((feed, session))

    scheduler = StreamScheduler(
        pairs,
        policy=SchedulingPolicy(args.policy),
        pool_size=args.pool,
        queue_capacity=args.queue_capacity,
    )
    print(f"ingesting {args.streams} stream(s) x {args.chunks} chunks "
          f"({args.faults} faults, {args.degrade} degradation, "
          f"{args.policy} scheduling, pool={args.pool})")
    # SIGINT/SIGTERM stop the scheduler at the next round boundary:
    # in-flight chunks drain, tails flush, then the report prints.
    previous_handlers = {
        sig: signal.signal(
            sig, lambda signum, frame: scheduler.request_stop()
        )
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        matches_by_stream = scheduler.run()
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)

    rows = []
    for feed, session in pairs:
        counter = session.registry.counter
        rows.append([
            session.stream_id,
            counter("ingest.chunks_processed"),
            counter("ingest.frames_decoded"),
            counter("ingest.frames_damaged"),
            counter("ingest.frames_missing"),
            len(matches_by_stream[session.stream_id]),
            "failed" if session.failed else "ok",
        ])
    print()
    print(format_table(
        ["stream", "chunks", "decoded", "damaged", "missing",
         "matches", "state"],
        rows,
        title="Ingestion report",
    ))
    print()
    recon = scheduler.reconciliation()
    print(" ".join(f"{key}={value}" for key, value in recon.items()))
    if args.metrics_out:
        _write_metrics(args.metrics_out, scheduler.metrics_snapshot())
    return 0


def _command_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.query import QuerySet
    from repro.gateway import GatewayServer
    from repro.minhash.family import MinHashFamily
    from repro.serve import BackpressurePolicy, DetectionService

    prepared = _build_workload(args)
    config = _detector_config(args)
    family = MinHashFamily(num_hashes=config.num_hashes, seed=0)
    queries = QuerySet.from_cell_ids(
        prepared.query_cell_ids, prepared.query_frames, family
    )
    service = DetectionService(
        config,
        queries,
        prepared.keyframes_per_second,
        num_workers=args.workers,
        backend=args.backend,
        policy=BackpressurePolicy(args.policy),
    )
    server = GatewayServer(
        service,
        host=args.host,
        port=args.port,
        credits=args.credits,
        policy=BackpressurePolicy(args.policy),
        heartbeat_seconds=args.heartbeat,
        idle_timeout_seconds=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
    )

    async def _serve() -> None:
        await server.start()
        print(f"gateway listening on {server.host}:{server.port} "
              f"({service.num_workers} {args.backend} worker(s), "
              f"{args.policy} policy, {args.credits} credits)", flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
        await server.wait_stopped()

    asyncio.run(_serve())
    print(f"gateway drained: {len(service.matches)} matches collected, "
          f"{service.chunks_ingested} chunks ingested")
    service.close()
    return 0


def _command_push(args: argparse.Namespace) -> int:
    from repro.gateway import IngestClient

    prepared = _build_workload(args)
    chunk_frames = max(
        1, round(args.chunk_seconds * prepared.keyframes_per_second)
    )
    stream = prepared.stream_cell_ids
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, len(stream), chunk_frames)
    ]
    client = IngestClient(
        args.host, args.port, resume_token=args.resume_token
    )
    start = client.last_seq + 1
    if args.resume_token:
        print(f"resumed: server already holds chunks through seq "
              f"{client.last_seq}")
    pushed = 0
    for seq in range(start, len(chunks)):
        client.push(seq, chunks[seq])
        pushed += 1
        if args.kill_after and pushed >= args.kill_after:
            print(f"killing the connection after {pushed} chunk(s); "
                  f"continue with --resume-token {client.token}")
            client.kill()
            return 0
    if args.no_end:
        client.drain()
        print(f"pushed {pushed} chunk(s), stream left open "
              f"(dropped={len(client.dropped)})")
    else:
        total = client.end()
        print(f"pushed {pushed} chunk(s): {total} total matches "
              f"(dropped={len(client.dropped)})")
    client.close()
    return 0


def _command_watch(args: argparse.Namespace) -> int:
    from repro.gateway import WatchClient

    client = WatchClient(
        args.host,
        args.port,
        credits=args.credits,
        resume_token=args.resume_token,
        last_acked=args.last_acked,
    )
    print(f"watching from match {client.next_match} "
          f"(resume token {client.token})", flush=True)
    count = 0
    for event in client.matches():
        print(f"match id={event['id']} qid={event['qid']} "
              f"window={event['window_index']} "
              f"frames={event['start_frame']}..{event['end_frame']} "
              f"sim={event['similarity']:.3f}", flush=True)
        count += 1
    if client.total is not None:
        print(f"stream ended: {client.total} total matches "
              f"({count} seen this session)")
    client.close()
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    synth = ClipSynthesizer(seed=args.seed)
    clip = synth.generate_clip(args.seconds, label="inspect", fps=10.0)
    encoded = encode_video(
        clip.frames,
        fps=clip.fps,
        quality=args.quality,
        gop_size=args.gop,
        use_motion=args.motion,
        entropy_coding=args.entropy,
    )
    dc_frames = list(decode_dc_coefficients(encoded))
    raw_bytes = clip.frames.size  # one byte per pixel, uncompressed
    print(format_table(
        ["field", "value"],
        [
            ["frames", encoded.num_frames],
            ["I frames", encoded.num_keyframes],
            ["frame size", f"{encoded.width}x{encoded.height}"],
            ["quality", encoded.quality],
            ["GOP", encoded.gop_size],
            ["prediction", "motion-compensated" if args.motion else "difference"],
            ["entropy coding", "exp-Golomb" if args.entropy else "varint"],
            ["bitstream bytes", encoded.size_bytes],
            ["compression", f"{raw_bytes / encoded.size_bytes:.1f}x"],
            ["partial-decode I frames", len(dc_frames)],
            ["DC grid per I frame",
             f"{dc_frames[0][1].shape[0]}x{dc_frames[0][1].shape[1]}"],
        ],
        title="Bitstream report",
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "gateway":
        return _command_gateway(args)
    if args.command == "push":
        return _command_push(args)
    if args.command == "watch":
        return _command_watch(args)
    return _command_inspect(args)


if __name__ == "__main__":
    sys.exit(main())
