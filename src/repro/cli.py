"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the workflow a user of the original system would
need without writing Python:

* ``demo``   — build a seeded synthetic workload (VS1 or VS2), run the
  detector and print the detection report with precision/recall.
* ``sweep``  — sweep one detector parameter (K, delta or w) over the
  same workload and print the resulting series, the way the paper's
  figures are produced.
* ``inspect``— encode a synthetic clip through the toy codec and report
  the bitstream structure plus partial-decode statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.codec.gop import decode_dc_coefficients, encode_video
from repro.config import (
    CombinationOrder,
    DetectorConfig,
    Representation,
    ScaleProfile,
)
from repro.core.results import merge_matches
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import StreamDoctor
from repro.workloads.library import ClipLibrary

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous content-based copy detection over "
        "streaming videos (ICDE 2008 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="build a synthetic workload and run the detector"
    )
    demo.add_argument("--stream", choices=("vs1", "vs2"), default="vs2",
                      help="original inserts (vs1) or attacked ones (vs2)")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--queries", type=int, default=6)
    demo.add_argument("--stream-seconds", type=float, default=900.0)
    demo.add_argument("--hashes", type=int, default=400, metavar="K")
    demo.add_argument("--threshold", type=float, default=0.7, metavar="DELTA")
    demo.add_argument("--window-seconds", type=float, default=5.0, metavar="W")
    demo.add_argument("--order", choices=("sequential", "geometric"),
                      default="sequential")
    demo.add_argument("--representation", choices=("bit", "sketch"),
                      default="bit")
    demo.add_argument("--no-index", action="store_true")

    sweep = subparsers.add_parser(
        "sweep", help="sweep one detector parameter over a workload"
    )
    sweep.add_argument("parameter", choices=("hashes", "threshold", "window"))
    sweep.add_argument("values", nargs="+", type=float,
                       help="parameter values to sweep")
    sweep.add_argument("--stream", choices=("vs1", "vs2"), default="vs2")
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--queries", type=int, default=6)
    sweep.add_argument("--stream-seconds", type=float, default=900.0)

    inspect = subparsers.add_parser(
        "inspect", help="encode a synthetic clip and inspect the bitstream"
    )
    inspect.add_argument("--seconds", type=float, default=10.0)
    inspect.add_argument("--quality", type=int, default=75)
    inspect.add_argument("--gop", type=int, default=12)
    inspect.add_argument("--motion", action="store_true",
                         help="use motion-compensated prediction")
    inspect.add_argument("--entropy", action="store_true",
                         help="use exp-Golomb entropy coding")
    inspect.add_argument("--seed", type=int, default=0)
    return parser


def _build_workload(args: argparse.Namespace) -> PreparedWorkload:
    profile = ScaleProfile(
        stream_seconds=args.stream_seconds,
        num_queries=args.queries,
        query_min_seconds=20.0,
        query_max_seconds=50.0,
    )
    library = ClipLibrary.generate(profile, seed=args.seed)
    doctor = StreamDoctor(profile, seed=args.seed)
    stream = (
        doctor.build_vs1(library)
        if args.stream == "vs1"
        else doctor.build_vs2(library, noise_sigma=2.0)
    )
    print(f"Built {stream.name}: {stream.clip.num_frames} key frames, "
          f"{len(stream.ground_truth)} insertions, "
          f"{len(library)} continuous queries")
    return PreparedWorkload.prepare(stream, library)


def _command_demo(args: argparse.Namespace) -> int:
    prepared = _build_workload(args)
    config = DetectorConfig(
        num_hashes=args.hashes,
        threshold=args.threshold,
        window_seconds=args.window_seconds,
        order=CombinationOrder(args.order),
        representation=Representation(args.representation),
        use_index=not args.no_index,
    )
    result = run_detector(prepared, config)
    window_frames = max(
        1, round(args.window_seconds * prepared.keyframes_per_second)
    )
    detections = merge_matches(result.matches, gap_frames=window_frames)
    rows = [
        [d.qid, d.start_frame, d.end_frame, f"{d.peak_similarity:.2f}"]
        for d in detections
    ]
    print()
    print(format_table(
        ["query", "start frame", "end frame", "peak sim"],
        rows,
        title="Detections",
    ))
    print()
    print(f"precision={result.quality.precision:.3f} "
          f"recall={result.quality.recall:.3f} "
          f"cpu={result.cpu_seconds:.3f}s "
          f"avg_signatures={result.stats.avg_signatures:.1f}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    prepared = _build_workload(args)
    precisions: List[float] = []
    recalls: List[float] = []
    cpu: List[float] = []
    for value in args.values:
        if args.parameter == "hashes":
            config = DetectorConfig(num_hashes=int(value))
        elif args.parameter == "threshold":
            config = DetectorConfig(threshold=value)
        else:
            config = DetectorConfig(window_seconds=value)
        result = run_detector(prepared, config)
        precisions.append(result.quality.precision)
        recalls.append(result.quality.recall)
        cpu.append(result.cpu_seconds)
    print()
    print(format_series("precision", args.values, precisions))
    print(format_series("recall", args.values, recalls))
    print(format_series("cpu_seconds", args.values, cpu))
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    synth = ClipSynthesizer(seed=args.seed)
    clip = synth.generate_clip(args.seconds, label="inspect", fps=10.0)
    encoded = encode_video(
        clip.frames,
        fps=clip.fps,
        quality=args.quality,
        gop_size=args.gop,
        use_motion=args.motion,
        entropy_coding=args.entropy,
    )
    dc_frames = list(decode_dc_coefficients(encoded))
    raw_bytes = clip.frames.size  # one byte per pixel, uncompressed
    print(format_table(
        ["field", "value"],
        [
            ["frames", encoded.num_frames],
            ["I frames", encoded.num_keyframes],
            ["frame size", f"{encoded.width}x{encoded.height}"],
            ["quality", encoded.quality],
            ["GOP", encoded.gop_size],
            ["prediction", "motion-compensated" if args.motion else "difference"],
            ["entropy coding", "exp-Golomb" if args.entropy else "varint"],
            ["bitstream bytes", encoded.size_bytes],
            ["compression", f"{raw_bytes / encoded.size_bytes:.1f}x"],
            ["partial-decode I frames", len(dc_frames)],
            ["DC grid per I frame",
             f"{dc_frames[0][1].shape[0]}x{dc_frames[0][1].shape[1]}"],
        ],
        title="Bitstream report",
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "sweep":
        return _command_sweep(args)
    return _command_inspect(args)


if __name__ == "__main__":
    sys.exit(main())
