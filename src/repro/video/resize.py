"""Bilinear image resizing, implemented from scratch with numpy.

Used by the resolution-change attack (:func:`repro.video.edits.
change_resolution`). Bilinear interpolation is separable; we gather the
four neighbours with fancy indexing, so resizing a whole frame stack is a
handful of vectorised operations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VideoError

__all__ = ["bilinear_resize", "bilinear_resize_stack"]


def _sample_grid(src_len: int, dst_len: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Source coordinates for resizing ``src_len`` -> ``dst_len`` samples.

    Uses the half-pixel-centre convention (same as OpenCV's
    ``INTER_LINEAR``), which keeps content centred rather than anchored to
    the top-left corner.

    Returns ``(low_index, high_index, fraction)`` arrays of length
    ``dst_len``.
    """
    scale = src_len / dst_len
    coords = (np.arange(dst_len) + 0.5) * scale - 0.5
    coords = np.clip(coords, 0.0, src_len - 1.0)
    low = np.floor(coords).astype(np.intp)
    high = np.minimum(low + 1, src_len - 1)
    frac = coords - low
    return low, high, frac


def bilinear_resize(frame: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize a single 2-D frame to ``(height, width)`` bilinearly."""
    if frame.ndim != 2:
        raise VideoError(f"expected a 2-D frame, got ndim={frame.ndim}")
    return bilinear_resize_stack(frame[np.newaxis], height, width)[0]


def bilinear_resize_stack(frames: np.ndarray, height: int, width: int) -> np.ndarray:
    """Resize a ``(n, h, w)`` frame stack to ``(n, height, width)``."""
    if frames.ndim != 3:
        raise VideoError(f"expected (n, h, w) frames, got shape {frames.shape}")
    if height <= 0 or width <= 0:
        raise VideoError(f"target size must be positive, got {height}x{width}")
    src = frames.astype(np.float64)
    row_lo, row_hi, row_frac = _sample_grid(src.shape[1], height)
    col_lo, col_hi, col_frac = _sample_grid(src.shape[2], width)

    top = src[:, row_lo, :]
    bottom = src[:, row_hi, :]
    rows = top + (bottom - top) * row_frac[np.newaxis, :, np.newaxis]

    left = rows[:, :, col_lo]
    right = rows[:, :, col_hi]
    return left + (right - left) * col_frac[np.newaxis, np.newaxis, :]
