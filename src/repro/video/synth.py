"""Procedural video content synthesis.

The reproduction has no access to the paper's Google Video clips, so this
module manufactures clips whose *fingerprint-relevant statistics* mimic
natural video:

* content is organised into **shots** whose lengths follow a clipped
  exponential distribution;
* each shot has a distinctive low-frequency spatial luminance pattern
  (random coarse grid, bilinearly upsampled) — this is what the 3x3 block
  averages of Section III-A measure;
* within a shot, frames evolve by a slow luminance random walk plus mild
  per-frame texture noise, so consecutive key frames land in the same or
  adjacent partition cells (temporal coherence);
* different shots and different clips are statistically independent, so
  their fingerprints decorrelate (discriminability).

All randomness is derived from a parent seed and the clip *label*, so the
same label always regenerates byte-identical content regardless of the
order in which clips are requested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import require_positive
from repro.video.clip import VideoClip
from repro.video.formats import NTSC, VideoFormat
from repro.video.resize import bilinear_resize

__all__ = ["ClipSynthesizer", "SynthesisConfig"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunable knobs of the content generator.

    Parameters
    ----------
    video_format:
        Frame size and rate of generated clips.
    shot_seconds_mean:
        Mean shot duration (exponential, clipped to [min, max] below).
    shot_seconds_min, shot_seconds_max:
        Clipping bounds on shot duration.
    pattern_grid:
        Side of the coarse random grid defining a shot's spatial pattern.
        4 gives 16 luminance regions, comfortably resolvable by a 3x3
        block fingerprint.
    luminance_low, luminance_high:
        Range of the coarse pattern values before texture is added.
    drift_sigma:
        Per-frame standard deviation of the within-shot *global* luminance
        random walk (lighting changes; removed by Eq. (1) normalisation,
        kept for pixel-domain realism).
    motion_sigma:
        Per-frame innovation of each coarse region's *independent*
        mean-reverting luminance process (object/camera motion proxy;
        an OU walk with reversion rate :attr:`motion_reversion`, so its
        stationary spread is ``motion_sigma / sqrt(1 - motion_reversion**2)``).
        This is the component that matters downstream: it jitters the
        normalised block features within a shot, so a shot whose feature
        point sits near a partition boundary contributes the cells on
        *both* sides to its sequence's id set — exactly the dithering
        real video exhibits and the set-similarity measure relies on.
    motion_reversion:
        AR(1) coefficient of the motion process, in [0, 1).
    texture_sigma:
        Standard deviation of static per-shot texture.
    flicker_sigma:
        Standard deviation of independent per-frame noise (sensor noise /
        film grain proxy).
    """

    video_format: VideoFormat = NTSC
    shot_seconds_mean: float = 4.0
    shot_seconds_min: float = 1.5
    shot_seconds_max: float = 12.0
    pattern_grid: int = 4
    luminance_low: float = 40.0
    luminance_high: float = 190.0
    drift_sigma: float = 1.2
    motion_sigma: float = 3.0
    motion_reversion: float = 0.95
    texture_sigma: float = 5.0
    flicker_sigma: float = 1.5

    def __post_init__(self) -> None:
        require_positive("shot_seconds_mean", self.shot_seconds_mean)
        require_positive("shot_seconds_min", self.shot_seconds_min)
        require_positive("pattern_grid", self.pattern_grid)
        if self.shot_seconds_max < self.shot_seconds_min:
            raise ValueError("shot_seconds_max must be >= shot_seconds_min")
        if self.luminance_high <= self.luminance_low:
            raise ValueError("luminance_high must exceed luminance_low")


class ClipSynthesizer:
    """Deterministic generator of shot-structured synthetic clips.

    Parameters
    ----------
    config:
        Generation knobs; defaults model the reduced-scale NTSC format.
    seed:
        Parent seed. Clips are derived from ``(seed, label)``, so two
        synthesizers with the same seed produce identical clips for the
        same labels.
    """

    def __init__(self, config: SynthesisConfig | None = None, seed: int = 0) -> None:
        self.config = config or SynthesisConfig()
        self.seed = seed

    def generate_clip(
        self,
        duration_seconds: float,
        label: str,
        fps: float | None = None,
    ) -> VideoClip:
        """Generate a clip of (at least) the requested duration.

        Parameters
        ----------
        duration_seconds:
            Target duration; the clip has ``round(duration * fps)`` frames
            (minimum 1).
        label:
            Identity of the clip; the content is a pure function of
            ``(synthesizer seed, label)``.
        fps:
            Frame cadence; defaults to the format's rate. Workloads that
            operate on key frames only pass the key-frame cadence here and
            treat every generated frame as an I frame.
        """
        require_positive("duration_seconds", duration_seconds)
        cfg = self.config
        frame_rate = fps if fps is not None else cfg.video_format.fps
        require_positive("fps", frame_rate)
        num_frames = max(1, round(duration_seconds * frame_rate))
        rng = make_rng(derive_seed(self.seed, f"clip:{label}"))

        height = cfg.video_format.height
        width = cfg.video_format.width
        frames = np.empty((num_frames, height, width), dtype=np.float64)

        produced = 0
        shot_index = 0
        while produced < num_frames:
            shot_seconds = float(
                np.clip(
                    rng.exponential(cfg.shot_seconds_mean),
                    cfg.shot_seconds_min,
                    cfg.shot_seconds_max,
                )
            )
            shot_frames = min(
                num_frames - produced, max(1, round(shot_seconds * frame_rate))
            )
            frames[produced : produced + shot_frames] = self._render_shot(
                rng, shot_frames, height, width
            )
            produced += shot_frames
            shot_index += 1

        return VideoClip(frames=frames, fps=frame_rate, label=label)

    def _render_shot(
        self,
        rng: np.random.Generator,
        num_frames: int,
        height: int,
        width: int,
    ) -> np.ndarray:
        """Render one shot: coarse pattern + texture + drift + flicker."""
        cfg = self.config
        grid = cfg.pattern_grid
        coarse = rng.uniform(
            cfg.luminance_low, cfg.luminance_high, size=(grid, grid)
        )
        base = bilinear_resize(coarse, height, width)
        base += rng.normal(0.0, cfg.texture_sigma, size=(height, width))

        # Global lighting drift (normalised away downstream) plus
        # independent per-region motion walks (the feature-level jitter).
        drift = np.cumsum(rng.normal(0.0, cfg.drift_sigma, size=num_frames))
        motion_steps = rng.normal(
            0.0, cfg.motion_sigma, size=(num_frames, grid, grid)
        )
        # OU / AR(1) recursion: bounded wandering around the base pattern.
        motion_coarse = np.empty_like(motion_steps)
        state = np.zeros((grid, grid))
        for t in range(num_frames):
            state = cfg.motion_reversion * state + motion_steps[t]
            motion_coarse[t] = state
        motion = np.empty((num_frames, height, width))
        for t in range(num_frames):
            motion[t] = bilinear_resize(motion_coarse[t], height, width)

        flicker = rng.normal(
            0.0, cfg.flicker_sigma, size=(num_frames, height, width)
        )
        frames = (
            base[np.newaxis, :, :]
            + drift[:, np.newaxis, np.newaxis]
            + motion
            + flicker
        )
        return np.clip(frames, 0.0, 255.0)
