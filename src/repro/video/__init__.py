"""Video substrate: clip model, synthetic content, editing attacks.

The paper evaluates on real videos downloaded from Google Video; offline we
substitute a procedural content generator (:mod:`repro.video.synth`) whose
frames have the statistical properties the detector actually consumes —
shot-coherent block-luminance patterns that decorrelate across shots and
across clips. Every editing attack used to build the paper's VS2 stream is
implemented in :mod:`repro.video.edits` and :mod:`repro.video.reorder`.
"""

from repro.video.clip import VideoClip, concat_clips
from repro.video.color import (
    ColorClip,
    chroma_shift,
    colorize,
    luma_leakage,
    rgb_to_yuv,
    yuv_to_rgb,
)
from repro.video.edits import (
    EditPipeline,
    adjust_brightness,
    adjust_contrast,
    change_resolution,
    color_shift,
    add_noise,
    recompress,
    resample_fps,
)
from repro.video.formats import NTSC, PAL, VideoFormat
from repro.video.reorder import reorder_at_shots, reorder_segments, split_into_segments
from repro.video.resize import bilinear_resize, bilinear_resize_stack
from repro.video.shots import detect_shot_boundaries, shot_spans
from repro.video.synth import ClipSynthesizer, SynthesisConfig

__all__ = [
    "ClipSynthesizer",
    "ColorClip",
    "EditPipeline",
    "NTSC",
    "PAL",
    "SynthesisConfig",
    "VideoClip",
    "VideoFormat",
    "add_noise",
    "adjust_brightness",
    "adjust_contrast",
    "bilinear_resize",
    "bilinear_resize_stack",
    "change_resolution",
    "chroma_shift",
    "color_shift",
    "colorize",
    "concat_clips",
    "detect_shot_boundaries",
    "luma_leakage",
    "recompress",
    "reorder_at_shots",
    "reorder_segments",
    "resample_fps",
    "rgb_to_yuv",
    "shot_spans",
    "split_into_segments",
    "yuv_to_rgb",
]
