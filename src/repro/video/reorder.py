"""Temporal re-ordering attack.

The paper's VS2 stream "partition[s] the edited short videos into segments,
reorder[s] these segments without affecting the contents". This module
implements exactly that: split a clip into contiguous segments and emit
them in a seeded random permutation. Set-based similarity (Definition 2)
is invariant to this attack; the Seq and Warp baselines are not — which is
the comparison Figures 13-15 make.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import VideoError
from repro.utils.rng import make_rng
from repro.video.clip import VideoClip, concat_clips

__all__ = ["reorder_at_shots", "reorder_segments", "split_into_segments"]


def split_into_segments(clip: VideoClip, num_segments: int) -> List[VideoClip]:
    """Split a clip into ``num_segments`` contiguous, near-equal pieces."""
    if num_segments <= 0:
        raise VideoError(f"num_segments must be positive, got {num_segments}")
    if num_segments > clip.num_frames:
        raise VideoError(
            f"cannot split {clip.num_frames} frames into {num_segments} segments"
        )
    boundaries = np.linspace(0, clip.num_frames, num_segments + 1).astype(int)
    return [
        clip.subclip(int(boundaries[i]), int(boundaries[i + 1]))
        for i in range(num_segments)
    ]


def reorder_segments(
    clip: VideoClip,
    num_segments: int,
    seed: int = 0,
) -> Tuple[VideoClip, Tuple[int, ...]]:
    """Reorder a clip's segments with a seeded non-identity permutation.

    Returns
    -------
    (VideoClip, tuple of int)
        The reordered clip and the permutation applied: output segment
        ``k`` is input segment ``permutation[k]``. With a single segment
        the identity is unavoidable and returned as-is.
    """
    segments = split_into_segments(clip, num_segments)
    if num_segments == 1:
        return clip.with_label(f"{clip.label}+reorder1"), (0,)
    rng = make_rng(seed, f"reorder:{clip.label}")
    permutation = rng.permutation(num_segments)
    if np.array_equal(permutation, np.arange(num_segments)):
        # Force a non-trivial shuffle so the attack is never a no-op.
        permutation = np.roll(permutation, 1)
    reordered = concat_clips(
        [segments[int(p)] for p in permutation],
        label=f"{clip.label}+reorder{num_segments}",
    )
    return reordered, tuple(int(p) for p in permutation)


def reorder_at_shots(
    clip: VideoClip,
    seed: int = 0,
    **shot_kwargs,
) -> Tuple[VideoClip, Tuple[int, ...]]:
    """Reorder a clip along its *detected shot* boundaries.

    The paper's editors "reorder these segments without affecting the
    contents" — i.e. they cut between shots. This variant segments the
    clip with :func:`repro.video.shots.shot_spans` and shuffles the
    shots; with fewer than two detected shots the clip is returned
    unchanged (there is nothing content-preserving to reorder).

    Returns
    -------
    (VideoClip, tuple of int)
        The reordered clip and the shot permutation applied.
    """
    from repro.video.shots import shot_spans  # local: avoids cycle

    spans = shot_spans(clip, **shot_kwargs)
    if len(spans) < 2:
        return clip.with_label(f"{clip.label}+shotreorder1"), (0,)
    rng = make_rng(seed, f"shot-reorder:{clip.label}")
    permutation = rng.permutation(len(spans))
    if np.array_equal(permutation, np.arange(len(spans))):
        permutation = np.roll(permutation, 1)
    shots = [clip.subclip(start, stop) for start, stop in spans]
    reordered = concat_clips(
        [shots[int(p)] for p in permutation],
        label=f"{clip.label}+shotreorder{len(spans)}",
    )
    return reordered, tuple(int(p) for p in permutation)
