"""The in-memory video clip model.

A :class:`VideoClip` is an immutable-by-convention stack of grayscale
(luminance) frames plus a frame rate and a label. Luminance is stored as
float64 in [0, 255]; editing operations return new clips and never mutate
their input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import VideoError

__all__ = ["VideoClip", "concat_clips"]


@dataclass(frozen=True)
class VideoClip:
    """A grayscale video clip.

    Attributes
    ----------
    frames:
        Array of shape ``(num_frames, height, width)``, luminance in
        [0, 255] as float64.
    fps:
        Nominal frame rate (frames per second).
    label:
        Free-form identifier, e.g. ``"clip-042"`` or ``"vs2-stream"``.
    """

    frames: np.ndarray = field(repr=False)
    fps: float
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.frames, np.ndarray) or self.frames.ndim != 3:
            raise VideoError("frames must be a (n, h, w) numpy array")
        if self.frames.shape[0] == 0:
            raise VideoError("a clip must contain at least one frame")
        if self.fps <= 0:
            raise VideoError(f"fps must be positive, got {self.fps}")
        if float(self.frames.min()) < -1e-6 or float(self.frames.max()) > 255.0 + 1e-6:
            raise VideoError("luminance values must lie in [0, 255]")

    @property
    def num_frames(self) -> int:
        """Number of frames in the clip."""
        return int(self.frames.shape[0])

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return int(self.frames.shape[1])

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return int(self.frames.shape[2])

    @property
    def duration(self) -> float:
        """Clip length in seconds."""
        return self.num_frames / self.fps

    def frame_at(self, index: int) -> np.ndarray:
        """Return frame ``index`` (supports negative indexing)."""
        return self.frames[index]

    def subclip(self, start: int, stop: int) -> "VideoClip":
        """Return the frame range ``[start, stop)`` as a new clip.

        ``start`` and ``stop`` are frame indices; the range must be
        non-empty and inside the clip.
        """
        if not 0 <= start < stop <= self.num_frames:
            raise VideoError(
                f"subclip [{start}, {stop}) is outside clip of "
                f"{self.num_frames} frames"
            )
        return VideoClip(
            frames=self.frames[start:stop].copy(),
            fps=self.fps,
            label=f"{self.label}[{start}:{stop}]",
        )

    def with_frames(self, frames: np.ndarray, label: str | None = None) -> "VideoClip":
        """Return a clip with replaced frames (same fps, optional relabel)."""
        return VideoClip(frames=frames, fps=self.fps, label=label or self.label)

    def with_label(self, label: str) -> "VideoClip":
        """Return the same clip under a new label (frames are shared)."""
        return VideoClip(frames=self.frames, fps=self.fps, label=label)

    def __len__(self) -> int:
        return self.num_frames

    def __repr__(self) -> str:
        return (
            f"VideoClip(label={self.label!r}, frames={self.num_frames}, "
            f"size={self.width}x{self.height}, fps={self.fps:g})"
        )


def concat_clips(clips: Sequence[VideoClip], label: str = "") -> VideoClip:
    """Concatenate clips into one; all must share frame size and fps."""
    if not clips:
        raise VideoError("cannot concatenate an empty clip list")
    first = clips[0]
    for clip in clips[1:]:
        if (clip.height, clip.width) != (first.height, first.width):
            raise VideoError(
                f"frame size mismatch: {clip.label!r} is "
                f"{clip.width}x{clip.height}, expected {first.width}x{first.height}"
            )
        if abs(clip.fps - first.fps) > 1e-9:
            raise VideoError(
                f"fps mismatch: {clip.label!r} has {clip.fps}, expected {first.fps}"
            )
    frames = np.concatenate([clip.frames for clip in clips], axis=0)
    return VideoClip(frames=frames, fps=first.fps, label=label or "concat")
