"""Color video support: RGB clips, BT.601 conversion, chroma attacks.

The detector consumes only the luminance plane (MPEG DC coefficients of
Y blocks), so the main pipeline models video as grayscale. The VS2
"color alteration" attack, however, is fundamentally a *chroma*
operation — and the grayscale model has to assume how much of it leaks
into Y (`repro.video.edits._COLOR_LUMA_LEAKAGE`). This module removes
the assumption: it provides genuine RGB clips, the BT.601 luma/chroma
transform, and a channel-gain color-balance attack, so the leakage can
be *measured* instead of postulated (see ``tests/test_color.py``).

The pieces also make end-to-end color workflows possible: synthesise a
gray clip, :func:`colorize` it with smooth chroma fields, attack the
colors, and hand :meth:`ColorClip.luminance` back to the standard
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import VideoError
from repro.utils.rng import make_rng
from repro.video.clip import VideoClip
from repro.video.resize import bilinear_resize

__all__ = [
    "ColorClip",
    "chroma_shift",
    "colorize",
    "luma_leakage",
    "rgb_to_yuv",
    "yuv_to_rgb",
]

#: BT.601 luma weights (the Y' of Y'CbCr, the MPEG-1 colour space).
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_yuv(rgb: np.ndarray) -> np.ndarray:
    """BT.601 full-range RGB -> YUV. Shape ``(..., 3)`` preserved.

    Y in [0, 255]; U, V centred on 0 in roughly [-128, 128].
    """
    if rgb.shape[-1] != 3:
        raise VideoError(f"expected (..., 3) RGB, got shape {rgb.shape}")
    r = rgb[..., 0]
    g = rgb[..., 1]
    b = rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    u = 0.492 * (b - y)
    v = 0.877 * (r - y)
    return np.stack([y, u, v], axis=-1)


def yuv_to_rgb(yuv: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_yuv` (values not clipped)."""
    if yuv.shape[-1] != 3:
        raise VideoError(f"expected (..., 3) YUV, got shape {yuv.shape}")
    y = yuv[..., 0]
    u = yuv[..., 1]
    v = yuv[..., 2]
    r = y + v / 0.877
    b = y + u / 0.492
    g = (y - 0.299 * r - 0.114 * b) / 0.587
    return np.stack([r, g, b], axis=-1)


@dataclass(frozen=True)
class ColorClip:
    """An RGB video clip.

    Attributes
    ----------
    frames:
        Array of shape ``(n, height, width, 3)``, RGB in [0, 255].
    fps:
        Frame rate.
    label:
        Identifier.
    """

    frames: np.ndarray = field(repr=False)
    fps: float
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.frames, np.ndarray) or self.frames.ndim != 4:
            raise VideoError("frames must be a (n, h, w, 3) numpy array")
        if self.frames.shape[-1] != 3:
            raise VideoError(
                f"last axis must be RGB, got {self.frames.shape[-1]} channels"
            )
        if self.frames.shape[0] == 0:
            raise VideoError("a clip must contain at least one frame")
        if self.fps <= 0:
            raise VideoError(f"fps must be positive, got {self.fps}")
        low = float(self.frames.min())
        high = float(self.frames.max())
        if low < -1e-6 or high > 255.0 + 1e-6:
            raise VideoError("RGB values must lie in [0, 255]")

    @property
    def num_frames(self) -> int:
        """Number of frames."""
        return int(self.frames.shape[0])

    def luminance(self) -> VideoClip:
        """The BT.601 luma plane as a grayscale :class:`VideoClip` —
        exactly what the compressed-domain fingerprint sees."""
        y = np.clip(self.frames @ _LUMA_WEIGHTS, 0.0, 255.0)
        return VideoClip(frames=y, fps=self.fps, label=f"{self.label}+Y")


def colorize(clip: VideoClip, seed: int = 0, saturation: float = 40.0) -> ColorClip:
    """Invent plausible chroma for a grayscale clip.

    Chroma is piecewise-smooth in space (a coarse random UV field,
    bilinearly upsampled, constant over time) — matching how natural
    scenes carry lower-frequency chroma than luma. The result's
    luminance equals the input clip up to clipping.
    """
    if saturation < 0:
        raise VideoError(f"saturation must be non-negative, got {saturation}")
    rng = make_rng(seed, f"colorize:{clip.label}")
    coarse_u = rng.uniform(-saturation, saturation, size=(4, 4))
    coarse_v = rng.uniform(-saturation, saturation, size=(4, 4))
    u = bilinear_resize(coarse_u, clip.height, clip.width)
    v = bilinear_resize(coarse_v, clip.height, clip.width)
    yuv = np.stack(
        [
            clip.frames,
            np.broadcast_to(u, clip.frames.shape),
            np.broadcast_to(v, clip.frames.shape),
        ],
        axis=-1,
    )
    rgb = yuv_to_rgb(yuv)
    # Chroma carries no luma weight, so scaling the chroma component
    # (rgb - y) per pixel keeps Y exact while folding out-of-gamut
    # colours back inside [0, 255] — desaturate instead of clip, the
    # way a broadcast-legal encoder does.
    y = clip.frames[..., np.newaxis]
    chroma = rgb - y
    with np.errstate(divide="ignore", invalid="ignore"):
        room_high = np.where(chroma > 0, (255.0 - y) / chroma, np.inf)
        room_low = np.where(chroma < 0, (0.0 - y) / chroma, np.inf)
    scale = np.minimum(1.0, np.minimum(room_high, room_low).min(axis=-1))
    rgb = y + chroma * scale[..., np.newaxis]
    rgb = np.clip(rgb, 0.0, 255.0)  # guard float round-off only
    return ColorClip(frames=rgb, fps=clip.fps, label=f"{clip.label}+rgb")


def chroma_shift(
    clip: ColorClip,
    strength: float,
    seed: int = 0,
    luma_preserving: bool = True,
) -> ColorClip:
    """A color-balance alteration: per-channel gains of magnitude
    ``strength``.

    Two fidelities of the attack:

    * ``luma_preserving=True`` (default) — after applying the gains,
      each pixel's RGB is rescaled so its BT.601 luma is *exactly* the
      original. This is what a color edit on MPEG's own Y'CbCr
      representation does (Cb/Cr change, Y' untouched) and what a
      colorist's "change the color, not the brightness" means. The only
      residual luma movement comes from gamut clipping.
    * ``luma_preserving=False`` — the raw physics: channel gains with
      only the *global* luma-weighted gain normalised to 1. Per-pixel
      luma then moves with the local channel mix; use
      :func:`luma_leakage` to measure by how much. This is the upper
      bound an RGB-domain edit (one that never touches Y'CbCr) can leak.
    """
    if not 0.0 <= strength <= 1.0:
        raise VideoError(f"strength must be in [0, 1], got {strength}")
    rng = make_rng(seed, f"chroma-shift:{clip.label}")
    gains = rng.uniform(1.0 - strength, 1.0 + strength, size=3)
    # Re-normalise: the luma-weighted gain becomes exactly 1.
    gains = gains / float(gains @ _LUMA_WEIGHTS)
    shifted = clip.frames * gains
    if luma_preserving:
        y_original = clip.frames @ _LUMA_WEIGHTS
        y_shifted = shifted @ _LUMA_WEIGHTS
        ratio = np.where(y_shifted > 1e-9, y_original / np.maximum(y_shifted, 1e-9), 1.0)
        shifted = shifted * ratio[..., np.newaxis]
    shifted = np.clip(shifted, 0.0, 255.0)
    return ColorClip(
        frames=shifted, fps=clip.fps, label=f"{clip.label}+chroma{strength:g}"
    )


def luma_leakage(original: ColorClip, edited: ColorClip) -> float:
    """Mean relative luminance change between two color clips.

    The empirical counterpart of the grayscale model's
    ``_COLOR_LUMA_LEAKAGE`` constant: how much of a chroma attack
    reaches the plane the detector reads.
    """
    if original.frames.shape != edited.frames.shape:
        raise VideoError("clips must share shape to compare leakage")
    y_original = original.frames @ _LUMA_WEIGHTS
    y_edited = edited.frames @ _LUMA_WEIGHTS
    return float(
        (np.abs(y_edited - y_original) / np.maximum(y_original, 1.0)).mean()
    )
