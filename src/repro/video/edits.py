"""Editing attacks used to build the paper's VS2 stream.

Section VI of the paper edits its 200 short videos before re-inserting
them: "we alter 20-50% of the color as well as the brightness, add noises
and change the resolutions of the short videos, re-compress them using
different frame rate (PAL: 352x288, 25 fps)". Every one of those attacks
is implemented here as a pure function ``VideoClip -> VideoClip``, plus an
:class:`EditPipeline` that composes a seeded random attack combination per
clip the way the paper's manual editing did.

Temporal reordering (the attack the paper's similarity measure is designed
to survive) lives in :mod:`repro.video.reorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.codec.gop import decode_video, encode_video
from repro.errors import VideoError
from repro.utils.rng import make_rng
from repro.video.clip import VideoClip
from repro.video.formats import PAL, VideoFormat
from repro.video.resize import bilinear_resize_stack

__all__ = [
    "EditPipeline",
    "add_noise",
    "adjust_brightness",
    "adjust_contrast",
    "change_resolution",
    "color_shift",
    "compose",
    "recompress",
    "resample_fps",
]


def _clipped(frames: np.ndarray) -> np.ndarray:
    """Clamp luminance back into [0, 255]."""
    return np.clip(frames, 0.0, 255.0)


def adjust_brightness(clip: VideoClip, factor: float) -> VideoClip:
    """Scale luminance by ``factor`` (1.0 = unchanged).

    The paper alters brightness by 20-50 %, i.e. factors in
    [0.5, 0.8] ∪ [1.2, 1.5].
    """
    if factor <= 0:
        raise VideoError(f"brightness factor must be positive, got {factor}")
    return clip.with_frames(
        _clipped(clip.frames * factor), label=f"{clip.label}+bright{factor:g}"
    )


def adjust_contrast(clip: VideoClip, factor: float, pivot: float = 128.0) -> VideoClip:
    """Stretch luminance around ``pivot`` by ``factor``."""
    if factor <= 0:
        raise VideoError(f"contrast factor must be positive, got {factor}")
    frames = (clip.frames - pivot) * factor + pivot
    return clip.with_frames(_clipped(frames), label=f"{clip.label}+contrast{factor:g}")


#: Fraction of a chrominance alteration that leaks into luminance.
#: A hue/saturation shift of strength s moves Y' = 0.299R + 0.587G +
#: 0.114B only fractionally: an editor's color-balance change holds
#: perceived lightness roughly constant, so the channel weights largely
#: cancel and only ~5 % of the chrominance change reaches Y.
_COLOR_LUMA_LEAKAGE = 0.02


def color_shift(clip: VideoClip, strength: float, seed: int = 0) -> VideoClip:
    """Simulate a color-balance change on the luminance plane.

    A color alteration of ``strength`` (0.2-0.5 for the paper's "20-50 %"
    edits) changes hue/saturation strongly but luminance only through the
    channel-weight imbalance — modelled as a smooth spatial gain field of
    amplitude ``strength * _COLOR_LUMA_LEAKAGE`` generated from ``seed``.
    """
    if not 0.0 <= strength <= 1.0:
        raise VideoError(f"color shift strength must be in [0, 1], got {strength}")
    rng = make_rng(seed, "color-shift")
    amplitude = strength * _COLOR_LUMA_LEAKAGE
    coarse = rng.uniform(1.0 - amplitude, 1.0 + amplitude, size=(3, 3))
    gain = bilinear_resize_stack(coarse[np.newaxis], clip.height, clip.width)[0]
    return clip.with_frames(
        _clipped(clip.frames * gain[np.newaxis]),
        label=f"{clip.label}+color{strength:g}",
    )


def add_noise(clip: VideoClip, sigma: float, seed: int = 0) -> VideoClip:
    """Add zero-mean Gaussian luminance noise of std ``sigma``."""
    if sigma < 0:
        raise VideoError(f"noise sigma must be non-negative, got {sigma}")
    rng = make_rng(seed, "noise")
    noisy = clip.frames + rng.normal(0.0, sigma, size=clip.frames.shape)
    return clip.with_frames(_clipped(noisy), label=f"{clip.label}+noise{sigma:g}")


def change_resolution(clip: VideoClip, height: int, width: int) -> VideoClip:
    """Bilinearly resample the clip to a new frame size."""
    frames = bilinear_resize_stack(clip.frames, height, width)
    return clip.with_frames(
        _clipped(frames), label=f"{clip.label}+res{width}x{height}"
    )


def resample_fps(clip: VideoClip, fps: float) -> VideoClip:
    """Retime the clip to a new frame rate (NTSC -> PAL style).

    Frames are picked by nearest-neighbour temporal sampling, preserving
    wall-clock duration: a 30 s clip stays 30 s but its frame count scales
    by ``fps / clip.fps``. This is the tempo-scaling effect bounded by the
    paper's λ parameter.
    """
    if fps <= 0:
        raise VideoError(f"fps must be positive, got {fps}")
    new_count = max(1, round(clip.duration * fps))
    positions = np.linspace(0.0, clip.num_frames - 1, new_count)
    indices = np.round(positions).astype(np.intp)
    return VideoClip(
        frames=clip.frames[indices].copy(),
        fps=fps,
        label=f"{clip.label}+fps{fps:g}",
    )


def recompress(clip: VideoClip, quality: int, gop_size: int = 1) -> VideoClip:
    """Round-trip the clip through the toy codec at a new quality.

    This is the re-compression attack: quantisation at a different quality
    perturbs every DC coefficient the detector will later extract.
    ``gop_size=1`` (all-intra) keeps the round trip affordable for long
    clips while still exercising the full transform/quantise path.
    """
    encoded = encode_video(
        clip.frames, fps=clip.fps, quality=quality, gop_size=gop_size
    )
    frames = decode_video(encoded)
    return clip.with_frames(_clipped(frames), label=f"{clip.label}+q{quality}")


@dataclass(frozen=True)
class EditPipeline:
    """The paper's VS2 attack recipe as a reproducible pipeline.

    For each clip the pipeline draws attack strengths from a seeded RNG
    (so each clip is edited differently, as with manual editing) and
    applies, in order: brightness, color, noise, resolution change,
    frame-rate resampling and optional re-compression.

    Parameters
    ----------
    target_format:
        Output broadcast format (the paper uses PAL).
    alter_low, alter_high:
        Range of the brightness/color alteration magnitude (paper:
        0.2-0.5, i.e. "20-50 %").
    noise_sigma:
        Gaussian noise level in luminance units.
    recompress_quality:
        Codec quality of the final re-compression; ``None`` disables the
        (slow) codec round trip, which large stream builds use since the
        quantisation perturbation is subsumed by the noise attack.
    chroma_domain:
        When True, the color alteration runs on a genuine RGB rendition
        of the clip (:mod:`repro.video.color`: colorize, channel-gain
        chroma shift, back to luminance) instead of the grayscale gain
        model — slower, but the luma leakage is then measured physics
        rather than the modelled constant.
    seed:
        Parent seed; per-clip randomness derives from it and the clip label.
    """

    target_format: VideoFormat = PAL
    alter_low: float = 0.2
    alter_high: float = 0.5
    noise_sigma: float = 4.0
    recompress_quality: int | None = None
    chroma_domain: bool = False
    seed: int = 0

    def apply(self, clip: VideoClip) -> VideoClip:
        """Return the attacked version of ``clip``."""
        rng = make_rng(self.seed, f"edit:{clip.label}")
        magnitude = float(rng.uniform(self.alter_low, self.alter_high))
        direction = 1.0 if rng.random() < 0.5 else -1.0
        brightness = 1.0 + direction * magnitude

        color_strength = float(rng.uniform(self.alter_low, self.alter_high))
        color_seed = int(rng.integers(1 << 31))
        if self.chroma_domain:
            # A real color video is color *before* it is edited: render
            # an RGB version first, then brighten and color-balance in
            # RGB (gamut clipping and all), then return to the luma
            # plane for the remaining geometric attacks.
            from repro.video.color import ColorClip, chroma_shift, colorize

            rendition = colorize(clip, seed=color_seed)
            rendition = ColorClip(
                frames=np.clip(rendition.frames * brightness, 0.0, 255.0),
                fps=rendition.fps,
                label=rendition.label,
            )
            rendition = chroma_shift(rendition, color_strength, seed=color_seed)
            edited = rendition.luminance().with_label(clip.label)
        else:
            edited = adjust_brightness(clip, brightness)
            edited = color_shift(edited, color_strength, seed=color_seed)
        edited = add_noise(edited, self.noise_sigma, seed=int(rng.integers(1 << 31)))
        edited = change_resolution(
            edited, self.target_format.height, self.target_format.width
        )
        edited = resample_fps(edited, self.target_format.fps)
        if self.recompress_quality is not None:
            edited = recompress(edited, self.recompress_quality)
        return edited.with_label(f"{clip.label}+vs2")


def compose(*operations: Callable[[VideoClip], VideoClip]) -> Callable[[VideoClip], VideoClip]:
    """Compose clip transforms left-to-right into a single transform."""

    def _composed(clip: VideoClip) -> VideoClip:
        for operation in operations:
            clip = operation(clip)
        return clip

    return _composed
