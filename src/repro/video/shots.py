"""Shot boundary detection over block-feature trajectories.

The paper's VS2 editing "partition[s] the edited short videos into
segments, reorder[s] these segments without affecting the contents" — a
human editor cuts at *shot boundaries*, not mid-shot. This module finds
those boundaries the standard compressed-domain way: a cut is a frame
whose D-block feature vector jumps far above the local motion level.

Detection operates on the same block means the fingerprint uses, so it
runs on raw frames or on partially decoded bitstreams alike.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import VideoError
from repro.features.dc_extract import block_means_from_frames
from repro.video.clip import VideoClip

__all__ = ["detect_shot_boundaries", "shot_spans"]


def detect_shot_boundaries(
    clip: VideoClip,
    threshold_factor: float = 4.0,
    min_shot_frames: int = 2,
) -> List[int]:
    """Frame indices where a new shot begins (excluding frame 0).

    A boundary is declared at frame ``t`` when the mean absolute block
    feature change from ``t-1`` to ``t`` exceeds ``threshold_factor``
    times the median change over the clip (the median tracks within-shot
    motion; cuts are far outliers). Boundaries closer than
    ``min_shot_frames`` to the previous one are suppressed.

    Parameters
    ----------
    clip:
        The clip to segment.
    threshold_factor:
        Outlier multiple over the median frame-to-frame change.
    min_shot_frames:
        Minimum shot length; tighter boundaries are dropped.

    Returns
    -------
    list of int
        Sorted boundary frame indices in ``(0, num_frames)``.
    """
    if threshold_factor <= 1.0:
        raise VideoError(
            f"threshold_factor must exceed 1, got {threshold_factor}"
        )
    if min_shot_frames < 1:
        raise VideoError(
            f"min_shot_frames must be positive, got {min_shot_frames}"
        )
    if clip.num_frames < 2:
        return []
    means = block_means_from_frames(clip.frames)
    jumps = np.abs(np.diff(means, axis=0)).mean(axis=1)
    floor = float(np.median(jumps))
    if floor <= 0.0:
        floor = float(jumps.mean()) or 1.0
    threshold = threshold_factor * floor

    boundaries: List[int] = []
    last = 0
    for offset, jump in enumerate(jumps):
        frame = offset + 1  # jump[t] is the change from frame t to t+1
        if jump > threshold and frame - last >= min_shot_frames:
            boundaries.append(frame)
            last = frame
    return boundaries


def shot_spans(clip: VideoClip, **kwargs) -> List[tuple]:
    """Contiguous ``(start, stop)`` frame spans of the detected shots."""
    boundaries = detect_shot_boundaries(clip, **kwargs)
    edges = [0] + boundaries + [clip.num_frames]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]
