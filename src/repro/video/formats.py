"""Broadcast video format descriptors.

The paper's two streams use different broadcast formats: the inserted
originals are NTSC (352x240 @ 29.97 fps) and VS2 re-compresses them as PAL
(352x288 @ 25 fps). We keep the same aspect/fps relationships at a reduced
spatial scale so the pure-Python codec stays fast; the *ratios* (NTSC/PAL
frame-rate factor, resolution change) are what the resampling and resize
attacks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["NTSC", "PAL", "VideoFormat"]


@dataclass(frozen=True)
class VideoFormat:
    """A named (width, height, fps) triple.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"NTSC"``.
    width, height:
        Frame size in pixels.
    fps:
        Nominal frame rate.
    """

    name: str
    width: int
    height: int
    fps: float

    def __post_init__(self) -> None:
        require_positive("width", self.width)
        require_positive("height", self.height)
        require_positive("fps", self.fps)

    def scaled(self, factor: float) -> "VideoFormat":
        """Return a spatially scaled variant (fps unchanged).

        Sizes are rounded to the nearest multiple of 8 (the codec block
        size) with a floor of 8 so the result is always encodable without
        padding.
        """
        require_positive("factor", factor)

        def _snap(value: int) -> int:
            return max(8, round(value * factor / 8) * 8)

        return VideoFormat(
            name=f"{self.name}x{factor:g}",
            width=_snap(self.width),
            height=_snap(self.height),
            fps=self.fps,
        )


#: NTSC as used by the paper's inserted shorts (352x240 @ 29.97 fps),
#: reduced 4x spatially for the pure-Python codec.
NTSC = VideoFormat(name="NTSC", width=88, height=64, fps=29.97)

#: PAL as used by the paper's VS2 re-compression (352x288 @ 25 fps),
#: reduced 4x spatially.
PAL = VideoFormat(name="PAL", width=88, height=72, fps=25.0)
