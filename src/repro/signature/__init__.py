"""Bit-vector signatures of sketches (paper Section V-A/B).

When a candidate sketch is compared against a query sketch, only the
*relationships* (>, =, <) between corresponding hash values matter, never
the values themselves — and the relationship of a min-merge is a pure
function of the parts' relationships. Encoding the K relationships into a
2K-bit vector turns sketch combination into a bitwise OR and similarity
into two population counts (Lemma 1), and admits the monotone pruning rule
of Lemma 2 ("< positions only ever grow").
"""

from repro.signature.bitsig import BitSignature
from repro.signature.pruning import lemma2_bound, violates_lemma2

__all__ = ["BitSignature", "lemma2_bound", "violates_lemma2"]
