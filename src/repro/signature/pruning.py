"""Lemma 2 pruning of hopeless (candidate, query) pairs.

The ``<`` relations of a signature are monotone under combination: once a
candidate's min at hash ``r`` drops below the query's, no later window can
raise it again. A matching copy needs at least ``K·δ`` equal positions, so
at most ``K(1−δ)`` positions may be ``<``; a signature whose ``n1``
exceeds that bound can never recover, and — as argued in the paper — every
longer candidate built on top of it inherits at least as many ``<``
positions and can be discarded with it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SignatureError
from repro.signature.bitsig import BitSignature

__all__ = ["lemma2_bound", "lemma2_prunable", "violates_lemma2"]


def lemma2_bound(num_hashes: int, threshold: float) -> int:
    """The largest admissible ``n1``: ``floor(K (1 − δ))``.

    A tiny epsilon guards against floating point making ``K(1−δ)`` land
    just below an exact integer (e.g. K=800, δ=0.7 → 240.00000000000003).
    """
    if num_hashes <= 0:
        raise SignatureError(f"num_hashes must be positive, got {num_hashes}")
    if not 0.0 <= threshold <= 1.0:
        raise SignatureError(f"threshold must be in [0, 1], got {threshold}")
    return math.floor(num_hashes * (1.0 - threshold) + 1e-9)


def violates_lemma2(signature: BitSignature, threshold: float) -> bool:
    """Whether the signature can be pruned (``n1 > K(1−δ)``)."""
    return signature.n1 > lemma2_bound(signature.num_hashes, threshold)


def lemma2_prunable(
    n1_counts: np.ndarray, num_hashes: int, threshold: float
) -> np.ndarray:
    """Vectorized Lemma 2: the boolean prune mask for a block of ``n1``.

    Element-wise form of :func:`violates_lemma2` over an integer array of
    ``<``-relation counts (any shape), sharing the same bound so scalar
    and columnar paths prune identically.
    """
    return n1_counts > lemma2_bound(num_hashes, threshold)
