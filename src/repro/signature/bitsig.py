"""The 2K-bit relationship signature (Definition 3, Lemma 1).

For hash function ``r`` the candidate/query relationship is one of
``>``, ``=``, ``<``, encoded into the bit pair at positions
``(2r, 2r+1)`` as::

    ">"  ->  00        (candidate min is larger than the query's)
    "="  ->  01
    "<"  ->  11        (candidate min is smaller — can never equalise)

With the even bit as the *low* plane and the odd bit as the *high* plane,
the OR of two pairs is exactly the relationship of the min-merged sketches
(the six-case table of Section V-A), because the encoding is monotone in
the order ``>`` < ``=`` < ``<``.

Implementation: the two planes are stored as separate K-bit Python ints,
``ge`` (even positions: 1 unless the relation is ``>``) and ``lt`` (odd
positions: 1 iff the relation is ``<``). Then

* combine = OR of both planes,
* ``n0`` (zeros on even positions) = ``K − popcount(ge)`` = #(``>``),
* ``n1`` (ones on odd positions) = ``popcount(lt)`` = #(``<``),
* Lemma 1: ``sim = 1 − (n0 + n1) / K``.

The module also provides the *packed-plane* kernels used by the columnar
engines: planes stored as little-endian ``uint64`` word arrays of width
``⌈K/64⌉`` (`plane_words`), so whole ``(C, Q)`` blocks of signatures OR,
popcount and Lemma-2-prune as bulk bitwise numpy operations. Word ``w``,
bit ``b`` of a packed plane is bit ``64w + b`` of the equivalent Python
int, making the two representations freely convertible
(`planes_from_signature` / `signature_from_planes`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignatureError
from repro.minhash.sketch import Sketch
from repro.utils.bitops import count_ones, low_mask

__all__ = [
    "BitSignature",
    "encode_planes",
    "encode_planes_many",
    "pack_bool_planes",
    "plane_words",
    "planes_from_signature",
    "popcount_planes",
    "signature_from_planes",
]

PLANE_WORD_BITS = 64


def plane_words(num_hashes: int) -> int:
    """``W = ⌈K/64⌉``, the packed width of one K-bit plane."""
    return (num_hashes + PLANE_WORD_BITS - 1) // PLANE_WORD_BITS


def pack_bool_planes(flags: np.ndarray) -> np.ndarray:
    """Pack ``(..., K)`` booleans into ``(..., W)`` little-endian uint64.

    Bit ``r`` of the flat K-bit plane is ``flags[..., r]``, matching the
    ``np.packbits(..., bitorder="little")`` / ``int.from_bytes`` layout
    used by the scalar :meth:`BitSignature` constructors.
    """
    packed = np.packbits(flags, axis=-1, bitorder="little")
    pad = (-packed.shape[-1]) % 8
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    packed = np.ascontiguousarray(packed)
    return packed.view("<u8").reshape(flags.shape[:-1] + (-1,))


if hasattr(np, "bitwise_count"):

    def popcount_planes(planes: np.ndarray) -> np.ndarray:
        """Per-plane popcount: sums ``(..., W)`` words to ``(...,)`` ints."""
        return np.bitwise_count(planes).sum(axis=-1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _BYTE_POPCOUNT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def popcount_planes(planes: np.ndarray) -> np.ndarray:
        """Per-plane popcount via a byte lookup table (numpy < 2.0)."""
        as_bytes = planes.reshape(planes.shape[:-1] + (-1,)).view(np.uint8)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)


def encode_planes(
    window_values: np.ndarray, query_matrix: np.ndarray
) -> tuple:
    """Packed window-vs-query planes for a stack of queries.

    Compares one window's ``(K,)`` min-hash values against a ``(Q, K)``
    query-value matrix and returns ``(ge, lt)`` planes of shape
    ``(Q, W)`` — the batched form of :meth:`BitSignature.encode`.
    """
    ge = pack_bool_planes(window_values[np.newaxis, :] <= query_matrix)
    lt = pack_bool_planes(window_values[np.newaxis, :] < query_matrix)
    return ge, lt


def encode_planes_many(
    window_matrix: np.ndarray, query_matrix: np.ndarray
) -> tuple:
    """Packed planes for a whole *batch* of windows at once.

    Compares ``(nw, K)`` window min-hash values against a ``(Q, K)``
    query-value matrix and returns ``(ge, lt)`` planes of shape
    ``(nw, Q, W)`` — row ``i`` equals ``encode_planes(window_matrix[i],
    query_matrix)`` bit for bit. This is the sketch-once front end's
    kernel: one broadcasted compare + pack covers every (window, query)
    pair of a chunk batch, so per-shard workers never re-encode.
    """
    ge = pack_bool_planes(window_matrix[:, np.newaxis, :] <= query_matrix)
    lt = pack_bool_planes(window_matrix[:, np.newaxis, :] < query_matrix)
    return ge, lt


def planes_from_signature(signature: "BitSignature") -> tuple:
    """One signature's ``(ge, lt)`` planes as ``(W,)`` uint64 arrays."""
    width = plane_words(signature.num_hashes) * 8
    ge = np.frombuffer(signature.ge.to_bytes(width, "little"), dtype="<u8")
    lt = np.frombuffer(signature.lt.to_bytes(width, "little"), dtype="<u8")
    return ge, lt


def signature_from_planes(
    ge: np.ndarray, lt: np.ndarray, num_hashes: int
) -> "BitSignature":
    """Rebuild a scalar :class:`BitSignature` from packed plane rows."""
    return BitSignature._raw(
        int.from_bytes(ge.tobytes(), "little"),
        int.from_bytes(lt.tobytes(), "little"),
        num_hashes,
    )


def _pack_bits(flags: np.ndarray) -> int:
    """Pack a boolean vector into an int with bit ``r`` = ``flags[r]``."""
    packed = np.packbits(flags, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


@dataclass(frozen=True)
class BitSignature:
    """A candidate-vs-query relationship signature.

    Attributes
    ----------
    ge:
        K-bit plane; bit ``r`` is 1 iff candidate min ``<=`` query min at
        hash ``r`` (i.e. the relation is *not* ``>``).
    lt:
        K-bit plane; bit ``r`` is 1 iff candidate min ``<`` query min.
    num_hashes:
        ``K``; the signature occupies ``2K`` bits as in the paper.
    """

    ge: int
    lt: int
    num_hashes: int

    def __post_init__(self) -> None:
        if self.num_hashes <= 0:
            raise SignatureError(f"num_hashes must be positive, got {self.num_hashes}")
        mask = low_mask(self.num_hashes)
        if self.ge < 0 or self.lt < 0 or self.ge > mask or self.lt > mask:
            raise SignatureError("signature planes exceed the K-bit width")
        if self.lt & ~self.ge:
            raise SignatureError(
                "invalid encoding: a '<' position must also be set in the "
                "ge plane (the pair 10 does not exist)"
            )

    @classmethod
    def _raw(cls, ge: int, lt: int, num_hashes: int) -> "BitSignature":
        """Unchecked constructor for internal hot paths.

        Skips ``__post_init__`` validation; callers guarantee the planes
        already satisfy the encoding invariant (OR of valid signatures is
        valid, packed masks are valid by construction).
        """
        signature = object.__new__(cls)
        object.__setattr__(signature, "ge", ge)
        object.__setattr__(signature, "lt", lt)
        object.__setattr__(signature, "num_hashes", num_hashes)
        return signature

    @classmethod
    def encode(cls, candidate: Sketch, query: Sketch) -> "BitSignature":
        """Encode the relationships between two sketches (Definition 3)."""
        if candidate.family != query.family:
            raise SignatureError(
                "cannot encode a signature across different hash families"
            )
        c = candidate.values
        q = query.values
        ge = _pack_bits(c <= q)
        lt = _pack_bits(c < q)
        return cls._raw(ge, lt, candidate.num_hashes)

    def combine(self, other: "BitSignature") -> "BitSignature":
        """Signature of the min-merged candidate: bitwise OR (Section V-A)."""
        if self.num_hashes != other.num_hashes:
            raise SignatureError(
                f"cannot combine signatures of widths {self.num_hashes} "
                f"and {other.num_hashes}"
            )
        return BitSignature._raw(
            self.ge | other.ge, self.lt | other.lt, self.num_hashes
        )

    @property
    def n0(self) -> int:
        """Number of ``>`` relations (zeros on even bit positions)."""
        return self.num_hashes - count_ones(self.ge)

    @property
    def n1(self) -> int:
        """Number of ``<`` relations (ones on odd bit positions)."""
        return count_ones(self.lt)

    @property
    def equal_count(self) -> int:
        """Number of ``=`` relations, ``K − n0 − n1``."""
        return self.num_hashes - self.n0 - self.n1

    @property
    def similarity(self) -> float:
        """Lemma 1: ``1 − (n0 + n1) / K``."""
        return 1.0 - (self.n0 + self.n1) / self.num_hashes

    def interleaved(self) -> int:
        """The literal 2K-bit vector of Definition 3 (for inspection).

        Bit ``2r`` is the even-position bit and bit ``2r+1`` the odd one,
        so the pair reads ``00``/``01``/``11`` for ``>``/``=``/``<``.
        """
        vector = 0
        for r in range(self.num_hashes):
            pair = ((self.ge >> r) & 1) | (((self.lt >> r) & 1) << 1)
            vector |= pair << (2 * r)
        return vector

    def relation(self, r: int) -> str:
        """The relation symbol at hash function ``r``: '>', '=' or '<'."""
        if not 0 <= r < self.num_hashes:
            raise SignatureError(f"hash index {r} outside [0, {self.num_hashes})")
        if (self.lt >> r) & 1:
            return "<"
        if (self.ge >> r) & 1:
            return "="
        return ">"
