"""End-to-end frame fingerprinting.

:class:`FingerprintExtractor` wires together the Section III-A stages:
block averaging (compressed- or pixel-domain), Eq. (1) normalisation, and
d-of-D coefficient selection. Its output is the ``(n, d)`` feature matrix
consumed by the grid-pyramid partitioner; a convenience method goes all the
way to 1-D cell ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.codec.gop import EncodedVideo
from repro.config import FingerprintConfig
from repro.features.dc_extract import (
    block_means_from_dc_grids,
    block_means_from_encoded,
    block_means_from_frames,
)
from repro.features.normalize import normalize_features
from repro.features.select import CoefficientSelector
from repro.partition.gridpyramid import GridPyramidPartitioner
from repro.video.clip import VideoClip

__all__ = ["FingerprintExtractor"]


@dataclass(frozen=True)
class FingerprintExtractor:
    """Frame -> normalised d-dimensional feature vector -> cell id.

    Parameters
    ----------
    config:
        Block grid, ``d`` and ``u`` (see :class:`repro.config.
        FingerprintConfig`).
    strategy:
        Coefficient-selection strategy passed to
        :class:`~repro.features.select.CoefficientSelector`.
    """

    config: FingerprintConfig = field(default_factory=FingerprintConfig)
    strategy: str = "spread"

    @cached_property
    def selector(self) -> CoefficientSelector:
        """The d-of-D selector implied by the configuration.

        Cached: the selector is immutable and derived only from the
        (frozen) configuration, but constructing one recomputes the
        coefficient ranking, which used to happen on every frame batch.
        ``cached_property`` stores the instance in ``__dict__`` directly,
        which works on a frozen dataclass because it never goes through
        the blocked ``__setattr__``.
        """
        return CoefficientSelector(
            d=self.config.d,
            num_blocks=self.config.num_blocks,
            strategy=self.strategy,
            grid_rows=self.config.block_rows,
            grid_cols=self.config.block_cols,
        )

    @cached_property
    def partitioner(self) -> GridPyramidPartitioner:
        """The grid-pyramid partitioner implied by the configuration.

        Cached for the same reason as :attr:`selector`.
        """
        return GridPyramidPartitioner(d=self.config.d, u=self.config.u)

    def features_from_frames(self, frames: np.ndarray) -> np.ndarray:
        """Raw frames -> ``(n, d)`` normalised features (pixel path)."""
        block_means = block_means_from_frames(
            frames, self.config.block_rows, self.config.block_cols
        )
        return self.selector.apply(normalize_features(block_means))

    def features_from_clip(self, clip: VideoClip) -> np.ndarray:
        """Clip -> ``(n, d)`` normalised features (pixel path)."""
        return self.features_from_frames(clip.frames)

    def features_from_encoded(self, encoded: EncodedVideo) -> np.ndarray:
        """Bitstream -> per-key-frame features via the partial decoder."""
        block_means = block_means_from_encoded(
            encoded, self.config.block_rows, self.config.block_cols
        )
        return self.selector.apply(normalize_features(block_means))

    def cell_ids_from_frames(self, frames: np.ndarray) -> np.ndarray:
        """Raw frames -> 1-D grid-pyramid cell ids (the frame signature)."""
        return self.partitioner.cell_ids(self.features_from_frames(frames))

    def cell_ids_from_clip(self, clip: VideoClip) -> np.ndarray:
        """Clip -> 1-D grid-pyramid cell ids."""
        return self.cell_ids_from_frames(clip.frames)

    def cell_ids_from_encoded(self, encoded: EncodedVideo) -> np.ndarray:
        """Bitstream -> per-key-frame cell ids via the partial decoder."""
        return self.partitioner.cell_ids(self.features_from_encoded(encoded))

    def features_from_dc_grids(
        self, dc_grids: list, block_size: int
    ) -> np.ndarray:
        """Pre-decoded DC grids -> ``(n, d)`` normalised features.

        Entry point for the damage-tolerant decode path
        (:func:`repro.codec.resync.resilient_dc_scan`), which recovers DC
        grids in segments instead of one bitstream walk. Produces exactly
        the features :meth:`features_from_encoded` would for the same
        key frames of an undamaged stream.
        """
        block_means = block_means_from_dc_grids(
            dc_grids, block_size, self.config.block_rows, self.config.block_cols
        )
        return self.selector.apply(normalize_features(block_means))

    def cell_ids_from_dc_grids(
        self, dc_grids: list, block_size: int
    ) -> np.ndarray:
        """Pre-decoded DC grids -> 1-D grid-pyramid cell ids."""
        return self.partitioner.cell_ids(
            self.features_from_dc_grids(dc_grids, block_size)
        )
