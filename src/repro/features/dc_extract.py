"""Block mean-luminance extraction (the "DC coefficient" step).

Each key frame is spatially partitioned into ``rows x cols`` equal blocks
(the paper uses 3x3) and the average DC coefficient value of each block is
computed. Region boundaries are *fractional*: a 64-row frame and a 72-row
frame are both split into exact thirds, with boundary pixel rows weighted
proportionally. This keeps the fingerprint consistent across resolution
changes — the very attack the feature is supposed to survive.

Two paths produce the same ``(num_keyframes, D)`` matrix:

* :func:`block_means_from_encoded` — the faithful compressed-domain path:
  walk the toy-MPEG bitstream with the partial decoder, recover each 8x8
  block's mean from its DC coefficient (``mean = DC / block_size + 128``),
  then average the 8x8-block means region-wise (fractionally weighted).
* :func:`block_means_from_frames` — the pixel-domain reference path:
  average raw luminance over each region directly. Used by large workload
  builds; equals the compressed path up to quantisation error.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codec.gop import EncodedVideo, decode_dc_coefficients
from repro.errors import FeatureError

__all__ = [
    "block_means_from_dc_grids",
    "block_means_from_encoded",
    "block_means_from_frames",
    "region_mean_grid",
]


def _fractional_region_sums(stack: np.ndarray, parts: int, axis: int) -> np.ndarray:
    """Sum a stack over ``parts`` equal fractional regions along ``axis``.

    ``stack`` has shape (..., length, ...); the result replaces that axis
    with ``parts`` entries, each the (fractionally weighted) sum of its
    region ``[k * length/parts, (k+1) * length/parts)``.
    """
    length = stack.shape[axis]
    if parts <= 0:
        raise FeatureError(f"block grid side must be positive, got {parts}")
    if parts > length:
        raise FeatureError(f"cannot split {length} samples into {parts} blocks")
    moved = np.moveaxis(stack, axis, -1)
    # Prefix sums with a leading zero: cumulative[..., j] = sum of first j.
    cumulative = np.concatenate(
        [np.zeros(moved.shape[:-1] + (1,)), np.cumsum(moved, axis=-1)], axis=-1
    )
    edges = np.linspace(0.0, length, parts + 1)
    low = np.floor(edges).astype(np.intp)
    frac = edges - low
    # Value of the prefix integral at a fractional position x:
    # cumulative[floor(x)] + frac * sample[floor(x)].
    padded = np.concatenate(
        [moved, np.zeros(moved.shape[:-1] + (1,))], axis=-1
    )
    at_edges = cumulative[..., low] + frac * padded[..., low]
    sums = at_edges[..., 1:] - at_edges[..., :-1]
    return np.moveaxis(sums, -1, axis)


def region_mean_grid(frame: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Average a 2-D array over a ``rows x cols`` grid of fractional
    regions."""
    if frame.ndim != 2:
        raise FeatureError(f"expected a 2-D frame, got ndim={frame.ndim}")
    return block_means_from_frames(frame[np.newaxis], rows, cols)[0].reshape(
        rows, cols
    )


def block_means_from_frames(
    frames: np.ndarray, rows: int = 3, cols: int = 3
) -> np.ndarray:
    """Per-frame D-block mean luminance from raw frames (vectorised).

    Parameters
    ----------
    frames:
        Array of shape ``(n, height, width)``.
    rows, cols:
        Fingerprint block grid (``D = rows * cols``).

    Returns
    -------
    numpy.ndarray
        Shape ``(n, rows * cols)``; blocks are flattened row-major. Each
        entry is the exact mean over its fractional region, so frames of
        different sizes with proportionally identical content produce
        identical block means (up to resampling error).
    """
    if frames.ndim != 3:
        raise FeatureError(f"expected (n, h, w) frames, got shape {frames.shape}")
    num_frames, height, width = frames.shape
    row_sums = _fractional_region_sums(frames.astype(np.float64), rows, axis=1)
    region_sums = _fractional_region_sums(row_sums, cols, axis=2)
    area = (height / rows) * (width / cols)
    return (region_sums / area).reshape(num_frames, rows * cols)


def block_means_from_dc_grids(
    dc_grids: List[np.ndarray],
    block_size: int,
    rows: int = 3,
    cols: int = 3,
) -> np.ndarray:
    """Per-key-frame D-block mean luminance from pre-decoded DC grids.

    The damage-tolerant scan (:func:`repro.codec.resync.resilient_dc_scan`)
    hands back DC grids segment by segment rather than through the
    one-shot partial decoder; this applies the identical DC-to-mean
    conversion and fractional region averaging so recovered segments
    fingerprint byte-for-byte like an undamaged decode.
    """
    if not dc_grids:
        raise FeatureError("no DC grids to extract features from")
    keyframe_means: List[np.ndarray] = []
    for dc_grid in dc_grids:
        block_mean_grid = np.asarray(dc_grid, dtype=np.float64) / block_size + 128.0
        keyframe_means.append(
            region_mean_grid(block_mean_grid, rows, cols).reshape(-1)
        )
    return np.vstack(keyframe_means)


def block_means_from_encoded(
    encoded: EncodedVideo, rows: int = 3, cols: int = 3
) -> np.ndarray:
    """Per-key-frame D-block mean luminance via the partial decoder.

    Only I frames contribute (matching the paper's "DC coefficients of key
    (or I) frames"); the output has ``encoded.num_keyframes`` rows. The
    8x8-block DC grid is converted to block means
    (``DC / block_size + 128``) and then averaged region-wise with the
    same fractional-boundary rule as the pixel path.
    """
    block_size = encoded.block_size
    keyframe_means: List[np.ndarray] = []
    for _frame_index, dc_grid in decode_dc_coefficients(encoded):
        block_mean_grid = dc_grid / block_size + 128.0
        keyframe_means.append(
            region_mean_grid(block_mean_grid, rows, cols).reshape(-1)
        )
    if not keyframe_means:
        raise FeatureError("encoded stream contains no key frames")
    return np.vstack(keyframe_means)
