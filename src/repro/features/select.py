"""Selecting ``d`` of the ``D`` block coefficients.

The paper says only "we select d coefficients from D blocks" without
prescribing which; the choice must merely be fixed across queries and
streams. Three deterministic strategies are provided:

* ``"spread"`` (default) — indices evenly spaced over [0, D), which for a
  3x3 grid picks a spatially balanced subset.
* ``"first"`` — the first ``d`` indices (raster order).
* ``"center_out"`` — the centre block first, then blocks by increasing
  distance from the centre; captures the most content-bearing regions of
  typical framing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FeatureError

__all__ = ["CoefficientSelector"]

_STRATEGIES = ("spread", "first", "center_out")


@dataclass(frozen=True)
class CoefficientSelector:
    """Deterministic d-of-D coefficient picker.

    Parameters
    ----------
    d:
        Number of coefficients kept.
    num_blocks:
        ``D``, the size of the full block grid.
    strategy:
        One of ``"spread"``, ``"first"``, ``"center_out"``.
    grid_rows, grid_cols:
        Shape of the block grid; required by ``"center_out"`` (defaults to
        a square grid when omitted).
    """

    d: int
    num_blocks: int
    strategy: str = "spread"
    grid_rows: int | None = None
    grid_cols: int | None = None

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise FeatureError(f"d must be positive, got {self.d}")
        if self.d > self.num_blocks:
            raise FeatureError(
                f"cannot select d={self.d} of D={self.num_blocks} coefficients"
            )
        if self.strategy not in _STRATEGIES:
            raise FeatureError(
                f"unknown strategy {self.strategy!r}; choose from {_STRATEGIES}"
            )

    @property
    def indices(self) -> np.ndarray:
        """The selected block indices, in selection order."""
        if self.strategy == "first":
            return np.arange(self.d, dtype=np.intp)
        if self.strategy == "spread":
            return np.unique(
                np.round(np.linspace(0, self.num_blocks - 1, self.d)).astype(np.intp)
            )
        return self._center_out_indices()

    def _center_out_indices(self) -> np.ndarray:
        rows = self.grid_rows
        cols = self.grid_cols
        if rows is None or cols is None:
            side = int(round(self.num_blocks**0.5))
            if side * side != self.num_blocks:
                raise FeatureError(
                    "center_out needs grid_rows/grid_cols for non-square grids"
                )
            rows = cols = side
        if rows * cols != self.num_blocks:
            raise FeatureError(
                f"grid {rows}x{cols} does not have {self.num_blocks} blocks"
            )
        center_r = (rows - 1) / 2.0
        center_c = (cols - 1) / 2.0
        order = sorted(
            range(self.num_blocks),
            key=lambda i: (
                (i // cols - center_r) ** 2 + (i % cols - center_c) ** 2,
                i,
            ),
        )
        return np.asarray(order[: self.d], dtype=np.intp)

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Project a ``(n, D)`` matrix onto the selected ``d`` columns."""
        if features.ndim != 2 or features.shape[1] != self.num_blocks:
            raise FeatureError(
                f"expected (n, {self.num_blocks}) features, got {features.shape}"
            )
        return features[:, self.indices]
