"""Frame fingerprinting (paper Section III-A).

The pipeline: partially decode DC coefficients of key frames → average
them over a ``D``-block spatial grid → normalise to [0, 1] with Eq. (1) →
select ``d`` of the ``D`` coefficients. The resulting d-dimensional vector
is mapped to a 1-D cell id by :mod:`repro.partition`.

Two equivalent entry points exist: the compressed-domain path
(:func:`block_means_from_encoded`, fed by the toy codec's partial decoder)
and a vectorised pixel-domain reference path
(:func:`block_means_from_frames`) used by the large-scale benchmark
workloads where re-encoding megabytes of synthetic video adds nothing to
the comparison. Both produce block *mean luminance* grids; a test asserts
they agree to within quantisation error.
"""

from repro.features.dc_extract import (
    block_means_from_encoded,
    block_means_from_frames,
)
from repro.features.normalize import normalize_features
from repro.features.pipeline import FingerprintExtractor
from repro.features.select import CoefficientSelector

__all__ = [
    "CoefficientSelector",
    "FingerprintExtractor",
    "block_means_from_encoded",
    "block_means_from_frames",
    "normalize_features",
]
