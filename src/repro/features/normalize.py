"""Per-frame feature normalisation — Eq. (1) of the paper.

Each frame's D block averages are rescaled to [0, 1] by

.. math::

    C_i = \\frac{\\tilde{C}_i - \\tilde{C}_{min}}
               {\\tilde{C}_{max} - \\tilde{C}_{min}}

This makes the fingerprint invariant to global brightness and contrast
changes: any affine luminance map with positive gain leaves the normalised
vector untouched, which is why the VS2 brightness attack barely moves the
partition cell of a frame.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError

__all__ = ["normalize_features"]

#: Frames whose block averages span less than this range are "flat";
#: their normalised features are defined as all-0.5 (a flat frame carries
#: no ordinal information, so every coefficient sits mid-range).
_FLAT_EPSILON = 1e-9


def normalize_features(block_means: np.ndarray) -> np.ndarray:
    """Apply Eq. (1) row-wise to a ``(n, D)`` block-average matrix.

    Returns a new ``(n, D)`` matrix with every row in [0, 1]. Rows whose
    maximum equals their minimum (completely flat frames — black frames,
    fades) are mapped to the all-0.5 vector rather than dividing by zero.
    """
    if block_means.ndim != 2:
        raise FeatureError(
            f"expected a (n, D) matrix, got shape {block_means.shape}"
        )
    row_min = block_means.min(axis=1, keepdims=True)
    row_max = block_means.max(axis=1, keepdims=True)
    span = row_max - row_min
    flat = span[:, 0] < _FLAT_EPSILON
    safe_span = np.where(span < _FLAT_EPSILON, 1.0, span)
    normalized = (block_means - row_min) / safe_span
    if flat.any():
        normalized[flat] = 0.5
    return normalized
