"""Observability: the metrics registry behind every engine statistic.

``repro.obs`` is a dependency-free instrumentation layer. A
:class:`MetricsRegistry` holds named counters, gauges, distributions
(:class:`~repro.utils.stats.RunningStats`) and accumulating phase timers;
:mod:`repro.obs.export` serialises one registry into a JSON snapshot or a
one-line logfmt digest. The detector stack shares a single registry per
stream — :class:`~repro.core.monitor.EngineStats` is a typed view over
it, the engines' hot-path stages run under its phase timers, and the CLI
(``repro stats`` / ``--metrics-out``) and :mod:`repro.evaluation.runner`
expose its snapshots so benchmarks can dump per-phase cost next to their
figures.
"""

from repro.obs.export import logfmt_digest, snapshot, to_json
from repro.obs.merge import MergeError, merge_snapshots
from repro.obs.registry import MetricsRegistry, PhaseTimer

__all__ = [
    "MergeError",
    "MetricsRegistry",
    "PhaseTimer",
    "logfmt_digest",
    "merge_snapshots",
    "snapshot",
    "to_json",
]
