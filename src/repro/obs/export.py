"""Serialisers: registry -> JSON snapshot / one-line logfmt digest.

The snapshot schema (versioned as ``repro.obs/1``, documented in
``docs/observability.md``) is what ``repro stats --metrics-out`` and the
``metrics`` field of :class:`~repro.evaluation.runner.ExperimentResult`
emit, so every benchmark can write the same machine-readable file next to
its figures. The logfmt digest is the human/grep-friendly one-liner for
logs: ``key=value`` pairs, counters and timer seconds, sorted by key.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.obs.registry import MetricsRegistry

__all__ = ["SCHEMA", "logfmt_digest", "snapshot", "to_json"]

SCHEMA = "repro.obs/1"


def snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """One JSON-serialisable dict capturing the registry's full state.

    Layout::

        {"schema": "repro.obs/1",
         "counters": {name: int, ...},
         "gauges": {name: float, ...},
         "distributions": {name: {"count", "mean", "stddev", "min", "max"}},
         "timers": {name: {"calls": int, "seconds": float}}}

    Empty distributions report ``min``/``max`` as ``None`` (their
    accumulator's infinities are not valid JSON).
    """
    distributions: Dict[str, object] = {}
    for name, stats in registry.distributions():
        distributions[name] = {
            "count": stats.count,
            "mean": stats.mean,
            "stddev": stats.stddev,
            "min": stats.minimum if stats.count else None,
            "max": stats.maximum if stats.count else None,
        }
    return {
        "schema": SCHEMA,
        "counters": dict(registry.counters()),
        "gauges": dict(registry.gauges()),
        "distributions": distributions,
        "timers": {
            name: {"calls": timer.calls, "seconds": timer.seconds}
            for name, timer in registry.timers()
        },
    }


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The snapshot as a JSON document (stable key order)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:.6f}"


def logfmt_digest(registry: MetricsRegistry) -> str:
    """One ``key=value`` line: counters, gauges, dist means, timer seconds.

    Distribution keys carry a ``.mean`` suffix and timers a ``.seconds``
    suffix so that every key maps to a single scalar.
    """
    pairs = []
    for name, value in registry.counters():
        pairs.append((name, str(value)))
    for name, value in registry.gauges():
        pairs.append((name, _format_value(value)))
    for name, stats in registry.distributions():
        pairs.append((f"{name}.mean", _format_value(stats.mean)))
    for name, timer in registry.timers():
        pairs.append((f"{name}.seconds", _format_value(timer.seconds)))
    return " ".join(f"{key}={value}" for key, value in sorted(pairs))
