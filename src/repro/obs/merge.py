"""Cross-process metric merging for sharded deployments.

A query-sharded service (``repro.serve``) runs one detector — and one
:class:`~repro.obs.registry.MetricsRegistry` — per worker. Folding those
per-shard snapshots into one aggregate is not a blanket sum: the shards
partition the *query* dimension but replicate the *stream* dimension, so
the metrics split into two classes.

**Additive** metrics count per-(candidate, query) or per-query work.
Each query lives in exactly one shard, so the shard values partition the
single-process value and the aggregate is their sum. Examples:
``engine.signature_combines``, ``engine.sketch_comparisons``,
``engine.matches_reported``.

**Replicated** metrics count per-stream work every shard performs
identically — each worker sees every chunk, probes its index once per
window, and (because the service broadcasts the global candidate-cap
hint, see ``EvalContext.set_cap_hint``) runs the exact same candidate
lifecycle. Their per-shard values all equal the single-process value,
and the aggregate takes that common value. Examples:
``engine.windows_processed``, ``stream.frames_processed``,
``engine.expired_candidates``.

Phase timers are summed (aggregate CPU seconds across workers), gauges
merge by maximum (they are point-in-time levels, e.g. queue depths), and
distributions follow the counter split: a replicated distribution keeps
the common per-shard summary, an additive one (per-window sums, e.g.
``engine.signatures_maintained``) keeps the common sample count and sums
the means — its stddev/min/max are not recoverable from summaries and
are reported as ``None``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "MergeError",
    "REPLICATED_COUNTERS",
    "REPLICATED_DISTRIBUTIONS",
    "merge_snapshots",
]


class MergeError(ReproError):
    """Per-shard snapshots disagree on a replicated (stream-scoped)
    metric under strict merging."""


#: Stream-scoped counters: every shard reports the single-process value.
REPLICATED_COUNTERS = frozenset(
    {
        "engine.windows_processed",
        "stream.frames_processed",
        "stream.partial_windows",
        "stream.windows_skipped",
        "stream.frames_skipped",
        "engine.index_probes",
        "engine.expired_candidates",
        "engine.sketch_combines",
    }
)

#: Stream-scoped distributions: identical sample streams on every shard.
REPLICATED_DISTRIBUTIONS = frozenset({"engine.candidates_maintained"})


def _union_keys(snapshots: Sequence[dict], section: str) -> List[str]:
    keys: set = set()
    for shot in snapshots:
        keys.update(shot.get(section, {}))
    return sorted(keys)


def _replicated_value(
    name: str,
    values: List[int],
    strict: bool,
    conflicts: List[str],
) -> int:
    distinct = set(values)
    if len(distinct) > 1:
        if strict:
            raise MergeError(
                f"replicated metric {name!r} disagrees across shards: "
                f"{sorted(distinct)}"
            )
        conflicts.append(name)
        return max(values)
    return values[0]


def merge_snapshots(
    snapshots: Sequence[dict],
    strict: bool = False,
    replicated_counters: frozenset = REPLICATED_COUNTERS,
    replicated_distributions: frozenset = REPLICATED_DISTRIBUTIONS,
) -> Dict[str, object]:
    """Fold per-shard ``repro.obs/1`` snapshots into one aggregate.

    Parameters
    ----------
    snapshots:
        One :func:`~repro.obs.export.snapshot` dict per worker (plus,
        typically, the service's own registry snapshot for the
        ``serve.*`` ingestion metrics).
    strict:
        When True, shards disagreeing on a replicated metric raise
        :class:`MergeError`. The default records the metric name under
        the result's ``"conflicts"`` and takes the maximum — under
        load-shedding backpressure policies shards legitimately diverge
        (dropped chunks), and the aggregate should still be reportable.

    Returns
    -------
    dict
        A ``repro.obs/1``-shaped snapshot with two extra keys:
        ``"merged_from"`` (number of input snapshots) and
        ``"conflicts"`` (replicated metric names that disagreed).
    """
    if not snapshots:
        raise MergeError("cannot merge zero snapshots")
    conflicts: List[str] = []

    counters: Dict[str, int] = {}
    for name in _union_keys(snapshots, "counters"):
        values = [
            shot["counters"][name]
            for shot in snapshots
            if name in shot.get("counters", {})
        ]
        if name in replicated_counters:
            counters[name] = _replicated_value(name, values, strict, conflicts)
        else:
            counters[name] = sum(values)

    gauges: Dict[str, float] = {}
    for name in _union_keys(snapshots, "gauges"):
        gauges[name] = max(
            shot["gauges"][name]
            for shot in snapshots
            if name in shot.get("gauges", {})
        )

    distributions: Dict[str, Optional[dict]] = {}
    for name in _union_keys(snapshots, "distributions"):
        entries = [
            shot["distributions"][name]
            for shot in snapshots
            if name in shot.get("distributions", {})
        ]
        if len(entries) == 1:
            distributions[name] = dict(entries[0])
            continue
        counts = [entry["count"] for entry in entries]
        if name in replicated_distributions:
            keyed = [
                (e["count"], e["mean"], e["min"], e["max"]) for e in entries
            ]
            if len(set(keyed)) > 1:
                if strict:
                    raise MergeError(
                        f"replicated distribution {name!r} disagrees "
                        f"across shards"
                    )
                conflicts.append(name)
            distributions[name] = dict(entries[0])
        else:
            count = _replicated_value(
                f"{name}.count", counts, strict, conflicts
            )
            distributions[name] = {
                "count": count,
                "mean": sum(entry["mean"] for entry in entries),
                "stddev": None,
                "min": None,
                "max": None,
            }

    timers: Dict[str, dict] = {}
    for name in _union_keys(snapshots, "timers"):
        entries = [
            shot["timers"][name]
            for shot in snapshots
            if name in shot.get("timers", {})
        ]
        timers[name] = {
            "calls": sum(entry["calls"] for entry in entries),
            "seconds": sum(entry["seconds"] for entry in entries),
        }

    return {
        "schema": "repro.obs/1",
        "merged_from": len(snapshots),
        "conflicts": sorted(conflicts),
        "counters": counters,
        "gauges": gauges,
        "distributions": distributions,
        "timers": timers,
    }
