"""The metrics registry: named counters, gauges, distributions, timers.

One :class:`MetricsRegistry` instance accompanies one detector run. It is
deliberately primitive — plain dicts of ints/floats, the existing
:class:`~repro.utils.stats.RunningStats` accumulator for distributions,
and :class:`PhaseTimer` (an accumulating ``perf_counter`` span) for the
per-stage wall-clock of the hot path. Metric names are dotted strings;
the canonical names used by the detector stack are listed in
``docs/observability.md``.

Timers can be disabled wholesale (``timing_enabled=False``): ``phase()``
then returns a shared no-op context manager, so instrumented code pays
only an attribute lookup. Counters and distributions are always live —
they are the ``EngineStats`` the rest of the system depends on.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Tuple

from repro.utils.stats import RunningStats

__all__ = ["MetricsRegistry", "PhaseTimer"]


class PhaseTimer:
    """An accumulating wall-clock timer for one named pipeline phase.

    Re-entrant use is not supported (phases do not nest with themselves);
    entering an already-running timer raises :class:`RuntimeError`.

    Example
    -------
    >>> timer = PhaseTimer("probe")
    >>> with timer:
    ...     pass
    >>> timer.calls
    1
    >>> timer.seconds >= 0.0
    True
    """

    __slots__ = ("name", "calls", "seconds", "_started_at")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self._started_at: float | None = None

    def __enter__(self) -> "PhaseTimer":
        if self._started_at is not None:
            raise RuntimeError(f"phase timer {self.name!r} is already running")
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started_at is not None
        self.seconds += time.perf_counter() - self._started_at
        self.calls += 1
        self._started_at = None

    def __repr__(self) -> str:
        return (
            f"PhaseTimer({self.name!r}, calls={self.calls}, "
            f"seconds={self.seconds:.6f})"
        )


class _NullTimer:
    """Shared no-op context manager returned by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named counters, gauges, distributions and phase timers.

    Parameters
    ----------
    timing_enabled:
        When False, :meth:`phase` hands back a shared no-op context
        manager and no wall-clock is recorded. Counter, gauge and
        distribution updates are unaffected.

    Example
    -------
    >>> registry = MetricsRegistry()
    >>> registry.inc("engine.windows_processed")
    >>> registry.counter("engine.windows_processed")
    1
    >>> registry.observe("engine.candidates_maintained", 3)
    >>> registry.distribution("engine.candidates_maintained").mean
    3.0
    """

    def __init__(self, timing_enabled: bool = True) -> None:
        self.timing_enabled = timing_enabled
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._distributions: Dict[str, RunningStats] = {}
        self._timers: Dict[str, PhaseTimer] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite counter ``name`` (the ``EngineStats`` setter path)."""
        self._counters[name] = int(value)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 when never set)."""
        return self._gauges.get(name, 0.0)

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------

    def distribution(self, name: str) -> RunningStats:
        """The accumulator for distribution ``name`` (created empty)."""
        stats = self._distributions.get(name)
        if stats is None:
            stats = self._distributions[name] = RunningStats()
        return stats

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into distribution ``name``."""
        self.distribution(name).add(value)

    # ------------------------------------------------------------------
    # phase timers
    # ------------------------------------------------------------------

    def phase(self, name: str):
        """Context manager timing one occurrence of phase ``name``.

        The returned object accumulates across uses, so the idiom is
        simply ``with registry.phase("probe"): ...`` at every call site.
        """
        if not self.timing_enabled:
            return _NULL_TIMER
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = PhaseTimer(name)
        return timer

    def timer(self, name: str) -> PhaseTimer:
        """The accumulating timer for phase ``name`` (created empty)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = PhaseTimer(name)
        return timer

    # ------------------------------------------------------------------
    # enumeration (used by the serialisers)
    # ------------------------------------------------------------------

    def counters(self) -> Iterator[Tuple[str, int]]:
        """``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self._counters.items()))

    def gauges(self) -> Iterator[Tuple[str, float]]:
        """``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self._gauges.items()))

    def distributions(self) -> Iterator[Tuple[str, RunningStats]]:
        """``(name, RunningStats)`` pairs in sorted name order."""
        return iter(sorted(self._distributions.items()))

    def timers(self) -> Iterator[Tuple[str, PhaseTimer]]:
        """``(name, PhaseTimer)`` pairs in sorted name order."""
        return iter(sorted(self._timers.items()))

    def names(self) -> List[str]:
        """Every metric name present, across all four kinds, sorted."""
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._distributions)
            | set(self._timers)
        )

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"distributions={len(self._distributions)}, "
            f"timers={len(self._timers)})"
        )
