"""Equal-width grid partitioning of the unit hypercube.

Each dimension of [0, 1]^d is divided into ``u`` equal slices; the grid
order ``O_g`` of a vector is the row-major (mixed-radix base-``u``) index
of its slice tuple. Vectors exactly on the upper boundary (coordinate 1.0,
which Eq. (1) produces for the maximal block) belong to the last slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import PartitionError

__all__ = ["GridPartitioner"]


@dataclass(frozen=True)
class GridPartitioner:
    """Row-major grid indexing of [0, 1]^d with ``u`` slices per dimension.

    Parameters
    ----------
    d:
        Dimensionality of the feature space.
    u:
        Number of equal-width slices per dimension.
    """

    d: int
    u: int

    def __post_init__(self) -> None:
        if self.d <= 0:
            raise PartitionError(f"d must be positive, got {self.d}")
        if self.u <= 0:
            raise PartitionError(f"u must be positive, got {self.u}")

    @property
    def num_cells(self) -> int:
        """Total number of grid cells, ``u ** d``."""
        return self.u**self.d

    def _check(self, features: np.ndarray) -> np.ndarray:
        array = np.asarray(features, dtype=np.float64)
        if array.ndim == 1:
            array = array[np.newaxis, :]
        if array.ndim != 2 or array.shape[1] != self.d:
            raise PartitionError(
                f"expected (n, {self.d}) features, got shape {features.shape}"
            )
        if (array < -1e-9).any() or (array > 1.0 + 1e-9).any():
            raise PartitionError("features must lie in the unit hypercube [0, 1]^d")
        return np.clip(array, 0.0, 1.0)

    def slice_indices(self, features: np.ndarray) -> np.ndarray:
        """Per-dimension slice indices, shape ``(n, d)`` of ints in [0, u)."""
        array = self._check(features)
        return np.minimum((array * self.u).astype(np.int64), self.u - 1)

    def grid_orders(self, features: np.ndarray) -> np.ndarray:
        """Row-major grid order ``O_g`` for each feature row, shape ``(n,)``."""
        slices = self.slice_indices(features)
        weights = self.u ** np.arange(self.d - 1, -1, -1, dtype=np.int64)
        return slices @ weights

    def local_coordinates(self, features: np.ndarray) -> np.ndarray:
        """Coordinates of each vector inside its grid cell, in [0, 1)^d.

        The upper-boundary convention matches :meth:`slice_indices`: a
        coordinate of exactly 1.0 maps to local coordinate 1.0 inside the
        last slice (not 0.0 of a nonexistent next slice).
        """
        array = self._check(features)
        slices = np.minimum((array * self.u).astype(np.int64), self.u - 1)
        return array * self.u - slices

    def cell_corner(self, grid_order: int) -> Tuple[float, ...]:
        """Lower corner of the grid cell with the given row-major order."""
        if not 0 <= grid_order < self.num_cells:
            raise PartitionError(
                f"grid order {grid_order} outside [0, {self.num_cells})"
            )
        corner = []
        remaining = grid_order
        for axis in range(self.d):
            weight = self.u ** (self.d - 1 - axis)
            corner.append((remaining // weight) / self.u)
            remaining %= weight
        return tuple(corner)
