"""Pyramid-Technique ordering (Berchtold, Böhm, Kriegel — SIGMOD 1998).

A unit hypercube is split into ``2d`` pyramids whose shared apex is the
centre point (0.5, ..., 0.5). A point belongs to the pyramid of the
dimension in which it deviates *most* from the centre:

    ``j_max = argmax_j |v_j - 0.5|``
    ``O_p  = j_max``      if ``v_{j_max} < 0.5``  (the "low" pyramid)
    ``O_p  = j_max + d``  otherwise               (the "high" pyramid)

Ties between dimensions are broken toward the lowest dimension index,
matching the paper's ``j != i`` ordering. The paper's robustness argument
(Section III-A) rests on this: perturbing coefficients changes ``O_p``
only when the arg-max dimension itself flips, which has probability ~k/D
for k rank changes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = ["pyramid_orders"]


def pyramid_orders(local_coordinates: np.ndarray) -> np.ndarray:
    """Pyramid number ``O_p`` in [0, 2d) for each row of local coordinates.

    Parameters
    ----------
    local_coordinates:
        Array of shape ``(n, d)`` with values in [0, 1] — coordinates
        *within* a grid cell (or the whole cube for pure pyramid
        partitioning).

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n,)`` with values in ``[0, 2d)``.
    """
    array = np.asarray(local_coordinates, dtype=np.float64)
    if array.ndim == 1:
        array = array[np.newaxis, :]
    if array.ndim != 2:
        raise PartitionError(
            f"expected (n, d) local coordinates, got shape {local_coordinates.shape}"
        )
    if (array < -1e-9).any() or (array > 1.0 + 1e-9).any():
        raise PartitionError("local coordinates must lie in [0, 1]^d")
    d = array.shape[1]
    deviation = array - 0.5
    j_max = np.argmax(np.abs(deviation), axis=1)
    rows = np.arange(array.shape[0])
    is_high = deviation[rows, j_max] >= 0.0
    return (j_max + np.where(is_high, d, 0)).astype(np.int64)
