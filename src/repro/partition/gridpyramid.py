"""Combined grid-pyramid cell ids: ``id = 2 d * O_g(f) + O_p(f)``.

This is the frame signature of Section III-A: the final one-dimensional
integer every frame reduces to, and the element universe over which video
sequences become *sets* for the Jaccard similarity of Definition 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import PartitionError
from repro.partition.grid import GridPartitioner
from repro.partition.pyramid import pyramid_orders

__all__ = ["GridPyramidPartitioner"]


@dataclass(frozen=True)
class GridPyramidPartitioner:
    """Map normalised d-dimensional features to grid-pyramid cell ids.

    Parameters
    ----------
    d:
        Feature dimensionality.
    u:
        Grid slices per dimension. The total cell count is ``2 d u^d``.
    """

    d: int
    u: int

    def __post_init__(self) -> None:
        # Validation is delegated to GridPartitioner's constructor.
        GridPartitioner(d=self.d, u=self.u)

    @property
    def grid(self) -> GridPartitioner:
        """The underlying grid partitioner."""
        return GridPartitioner(d=self.d, u=self.u)

    @property
    def num_cells(self) -> int:
        """Total number of cells, ``2 d u^d``."""
        return 2 * self.d * self.u**self.d

    def cell_ids(self, features: np.ndarray) -> np.ndarray:
        """Cell id for each feature row; shape ``(n,)`` of int64 in
        ``[0, 2 d u^d)``."""
        grid = self.grid
        orders = grid.grid_orders(features)
        locals_ = grid.local_coordinates(features)
        pyramids = pyramid_orders(locals_)
        return 2 * self.d * orders + pyramids

    def cell_id(self, feature: np.ndarray) -> int:
        """Cell id of a single feature vector."""
        return int(self.cell_ids(np.asarray(feature)[np.newaxis, :])[0])

    def decompose(self, cell_id: int) -> Tuple[int, int]:
        """Split a cell id back into ``(grid_order, pyramid_order)``."""
        if not 0 <= cell_id < self.num_cells:
            raise PartitionError(
                f"cell id {cell_id} outside [0, {self.num_cells})"
            )
        return divmod(cell_id, 2 * self.d)[0], cell_id % (2 * self.d)
