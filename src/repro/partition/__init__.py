"""Feature-space partitioning (paper Section III-A, Figure 1).

A normalised d-dimensional feature vector is reduced to a single integer
*cell id* in two nested steps: a grid partition splits each dimension into
``u`` equal slices (``u^d`` grid cells), and within every grid cell the
Pyramid-Technique of Berchtold et al. splits the cell into ``2d`` pyramids
whose apex is the cell centre. The combined id is

    ``id = 2 d * O_g(f) + O_p(f)``

giving ``2 d u^d`` cells. The pyramid component is what makes the signature
robust: small coefficient perturbations change the pyramid number only when
they flip which dimension deviates most from the cell centre.
"""

from repro.partition.grid import GridPartitioner
from repro.partition.gridpyramid import GridPyramidPartitioner
from repro.partition.pyramid import pyramid_orders

__all__ = ["GridPartitioner", "GridPyramidPartitioner", "pyramid_orders"]
