"""Terminal line charts for benchmark output.

The benchmark suite regenerates the paper's figures as numeric series;
:func:`render_chart` adds a dependency-free visual: a fixed-size ASCII
canvas with one glyph per series, y-axis labels and a shared x-axis.
Good enough to eyeball a crossover or a saturation knee directly in CI
logs and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_chart"]

_GLYPHS = "ox+*#@%&"


def render_chart(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    height: int = 12,
    width: int = 60,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series onto one ASCII canvas.

    Parameters
    ----------
    series:
        Mapping name -> y values (all the same length as ``x_values``).
    x_values:
        Shared x coordinates (plotted with even spacing; values are
        labels, not positions — matching how the paper's figures space
        their parameter sweeps).
    height, width:
        Canvas size in characters (plot area, excluding labels).
    title, y_label:
        Optional captions.

    Returns
    -------
    str
        The multi-line chart, legend included.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    if height < 2 or width < len(x_values):
        raise ValueError("canvas too small")

    all_values = [y for ys in series.values() for y in ys]
    lo = min(all_values)
    hi = max(all_values)
    span = hi - lo if hi > lo else 1.0

    canvas = [[" "] * width for _ in range(height)]
    # Even horizontal spacing of the sweep points.
    if len(x_values) == 1:
        columns = [width // 2]
    else:
        columns = [
            round(position * (width - 1) / (len(x_values) - 1))
            for position in range(len(x_values))
        ]

    for glyph, (name, ys) in zip(_GLYPHS, series.items()):
        for column, y in zip(columns, ys):
            row = height - 1 - round((y - lo) / span * (height - 1))
            if canvas[row][column] == " ":
                canvas[row][column] = glyph
            else:
                canvas[row][column] = "*"  # collision marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"), len(y_label))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{hi:.3g}"
        elif row_index == height - 1:
            label = f"{lo:.3g}"
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    tick_line = [" "] * (width + 2 + label_width)
    for column, x in zip(columns, x_values):
        text = f"{x:g}"
        start = min(label_width + 2 + column, len(tick_line) - len(text))
        for offset, char in enumerate(text):
            tick_line[start + offset] = char
    lines.append("".join(tick_line).rstrip())
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)
