"""Plain-text table / series formatting for benchmark output.

Every benchmark regenerates one of the paper's tables or figures as rows
of text; these helpers keep the output aligned and uniform so
``EXPERIMENTS.md`` can quote it directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_series", "format_table"]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row value sequences; floats are shown with 4 significant digits.
    title:
        Optional caption printed above the table.
    """
    rendered: List[List[str]] = [[_render(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """Render one figure series as ``name: x=y`` pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    pairs = "  ".join(f"{_render(x)}={_render(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
