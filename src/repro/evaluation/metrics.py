"""Precision / recall under the paper's position rule.

Section VI: "We record the begin ``Q_i.begin`` and end ``Q_i.end``
positions of query ``Q_i`` on the stream. The position where a sequence
matches is denoted as ``Q_i.p``. If ``Q_i.begin + w <= Q_i.p <= Q_i.end +
w`` holds, this result is correct." A true copy triggers a run of match
events as candidates slide across it; events of the same query within one
basic window of each other are merged into a single *detection*, and

* **precision** = correct detections / all detections,
* **recall** = ground-truth occurrences covered by >= 1 correct match /
  all occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.results import Match
from repro.errors import EvaluationError
from repro.workloads.groundtruth import GroundTruth, Occurrence

__all__ = ["PrecisionRecall", "is_correct_match", "score_matches"]


@dataclass(frozen=True)
class PrecisionRecall:
    """Scoring outcome of one run.

    Attributes
    ----------
    precision, recall:
        As defined above; precision of zero detections is 1.0.
    num_detections, num_correct_detections:
        Deduplicated detection counts.
    num_occurrences, num_detected_occurrences:
        Ground-truth coverage counts.
    num_matches:
        Raw (pre-merge) match events.
    """

    precision: float
    recall: float
    num_detections: int
    num_correct_detections: int
    num_occurrences: int
    num_detected_occurrences: int
    num_matches: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def is_correct_match(
    match: Match, occurrences: Sequence[Occurrence], window_frames: int
) -> bool:
    """The paper's rule for one match event against its query's
    occurrences: ``begin + w <= p <= end + w``."""
    if window_frames <= 0:
        raise EvaluationError(
            f"window_frames must be positive, got {window_frames}"
        )
    position = match.position_frame
    return any(
        occurrence.begin_frame + window_frames
        <= position
        <= occurrence.end_frame + window_frames
        for occurrence in occurrences
    )


def score_matches(
    matches: Sequence[Match],
    ground_truth: GroundTruth,
    window_frames: int,
) -> PrecisionRecall:
    """Score raw match events against ground truth.

    Matches of one query are merged into detections when their spans
    overlap or fall within one basic window; a detection is correct when
    any of its constituent matches satisfies the position rule, and an
    occurrence counts as detected when any correct match covers it.
    """
    if window_frames <= 0:
        raise EvaluationError(
            f"window_frames must be positive, got {window_frames}"
        )
    by_query: Dict[int, List[Match]] = {}
    for match in matches:
        by_query.setdefault(match.qid, []).append(match)

    num_detections = 0
    num_correct = 0
    detected_occurrences: set[Tuple[int, int]] = set()

    for qid, query_matches in by_query.items():
        occurrences = ground_truth.occurrences_of(qid)
        runs = sorted(query_matches, key=lambda m: (m.start_frame, m.end_frame))
        run_end: int | None = None
        run_correct = False
        for match in runs:
            correct = is_correct_match(match, occurrences, window_frames)
            if correct:
                for occurrence in occurrences:
                    if (
                        occurrence.begin_frame + window_frames
                        <= match.position_frame
                        <= occurrence.end_frame + window_frames
                    ):
                        detected_occurrences.add((qid, occurrence.begin_frame))
            if run_end is None:
                run_end = match.end_frame
                run_correct = correct
            elif match.start_frame <= run_end + window_frames:
                run_end = max(run_end, match.end_frame)
                run_correct = run_correct or correct
            else:
                num_detections += 1
                num_correct += 1 if run_correct else 0
                run_end = match.end_frame
                run_correct = correct
        if run_end is not None:
            num_detections += 1
            num_correct += 1 if run_correct else 0

    num_occurrences = len(ground_truth)
    precision = num_correct / num_detections if num_detections else 1.0
    recall = (
        len(detected_occurrences) / num_occurrences if num_occurrences else 1.0
    )
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        num_detections=num_detections,
        num_correct_detections=num_correct,
        num_occurrences=num_occurrences,
        num_detected_occurrences=len(detected_occurrences),
        num_matches=len(matches),
    )
