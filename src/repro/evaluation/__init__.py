"""Evaluation harness: the paper's scoring rule, runners and reporting.

Implements Section VI's measurement protocol: the match-position
correctness rule ``Q.begin + w <= p <= Q.end + w``, precision/recall over
deduplicated detections, CPU timing that covers feature extraction and
query processing, and the signature-count memory metric.
"""

from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.baseline_runner import (
    BaselineResult,
    OrdinalWorkload,
    run_baseline,
)
from repro.evaluation.metrics import PrecisionRecall, is_correct_match, score_matches
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import ExperimentResult, PreparedWorkload, run_detector

__all__ = [
    "BaselineResult",
    "ExperimentResult",
    "OrdinalWorkload",
    "PrecisionRecall",
    "PreparedWorkload",
    "format_series",
    "format_table",
    "is_correct_match",
    "render_chart",
    "run_baseline",
    "run_detector",
    "score_matches",
]
