"""Experiment runner: workload preparation and timed detector runs.

The parameter sweeps of Section VI vary detector-side knobs (K, δ, w, m,
order, representation, index) far more often than fingerprint-side ones
(d, u). :class:`PreparedWorkload` therefore caches the expensive, sweep-
invariant artefact — the per-key-frame cell-id streams of the doctored
stream and of every query — once per (d, u), and :func:`run_detector`
times only what the paper times for a given configuration: windowing,
sketching and query processing over the stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry

import numpy as np

from repro.config import DetectorConfig, FingerprintConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.monitor import EngineStats
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.evaluation.metrics import PrecisionRecall, score_matches
from repro.features.pipeline import FingerprintExtractor
from repro.minhash.family import MinHashFamily
from repro.workloads.doctor import DoctoredStream
from repro.workloads.groundtruth import GroundTruth
from repro.workloads.library import ClipLibrary

__all__ = ["ExperimentResult", "PreparedWorkload", "run_detector"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one timed detector run.

    Attributes
    ----------
    cpu_seconds:
        Wall-clock seconds of stream processing (windowing + sketching +
        query processing; feature extraction is reported separately in
        :attr:`prepare_seconds` of the workload since it is shared by
        every configuration of a sweep).
    quality:
        Precision/recall under the paper's rule.
    stats:
        Engine instrumentation (comparison/combine counts, signature
        memory, ...).
    matches:
        The raw match events.
    config:
        The configuration that produced this result.
    metrics:
        The run's full metrics snapshot (the ``repro.obs/1`` JSON
        schema): every ``stats`` counter, the per-phase wall-clock
        timers, and runner-level gauges (``runner.cpu_seconds``,
        ``runner.prepare_seconds``). Benchmarks dump this next to their
        figures.
    """

    cpu_seconds: float
    quality: PrecisionRecall
    stats: EngineStats
    matches: List[Match] = field(repr=False)
    config: DetectorConfig = field(repr=False)
    metrics: Dict[str, object] = field(repr=False, default_factory=dict)


@dataclass(frozen=True)
class PreparedWorkload:
    """Sweep-invariant artefacts of one (stream, library, fingerprint).

    Attributes
    ----------
    stream_cell_ids:
        Per-key-frame cell ids of the doctored stream.
    query_cell_ids / query_frames:
        Per-query cell-id arrays and key-frame counts.
    ground_truth:
        Insertion spans for scoring.
    keyframes_per_second:
        Stream cadence.
    prepare_seconds:
        Time spent on feature extraction (the "partial decoding" share of
        the paper's processing time).
    """

    stream_cell_ids: np.ndarray = field(repr=False)
    query_cell_ids: Dict[int, np.ndarray] = field(repr=False)
    query_frames: Dict[int, int]
    ground_truth: GroundTruth
    keyframes_per_second: float
    fingerprint: FingerprintConfig
    prepare_seconds: float

    @classmethod
    def prepare(
        cls,
        stream: DoctoredStream,
        library: ClipLibrary,
        fingerprint: Optional[FingerprintConfig] = None,
        strategy: str = "spread",
    ) -> "PreparedWorkload":
        """Extract cell-id streams for the stream and every query."""
        fingerprint = fingerprint or FingerprintConfig()
        extractor = FingerprintExtractor(config=fingerprint, strategy=strategy)
        started = time.perf_counter()
        stream_ids = extractor.cell_ids_from_clip(stream.clip)
        query_ids: Dict[int, np.ndarray] = {}
        query_frames: Dict[int, int] = {}
        for qid, clip in library:
            query_ids[qid] = extractor.cell_ids_from_clip(clip)
            query_frames[qid] = clip.num_frames
        elapsed = time.perf_counter() - started
        return cls(
            stream_cell_ids=stream_ids,
            query_cell_ids=query_ids,
            query_frames=query_frames,
            ground_truth=stream.ground_truth,
            keyframes_per_second=stream.keyframes_per_second,
            fingerprint=fingerprint,
            prepare_seconds=elapsed,
        )

    def subset_queries(self, num_queries: int) -> "PreparedWorkload":
        """Restrict to the first ``num_queries`` queries (Figure 9 sweeps).

        Ground truth keeps all occurrences; occurrences of dropped queries
        simply can no longer be detected, mirroring a monitor subscribed
        to fewer queries. Scoring for subsets should therefore only be
        compared within the same subset size.
        """
        kept = sorted(self.query_cell_ids)[:num_queries]
        return PreparedWorkload(
            stream_cell_ids=self.stream_cell_ids,
            query_cell_ids={qid: self.query_cell_ids[qid] for qid in kept},
            query_frames={qid: self.query_frames[qid] for qid in kept},
            ground_truth=self.ground_truth,
            keyframes_per_second=self.keyframes_per_second,
            fingerprint=self.fingerprint,
            prepare_seconds=self.prepare_seconds,
        )


def run_detector(
    prepared: PreparedWorkload,
    config: DetectorConfig,
    family_seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """One timed detector run over a prepared workload.

    Query sketching and index construction happen offline (untimed), as
    in the paper; the stopwatch covers stream windowing, sketching, index
    probing and candidate maintenance.

    Parameters
    ----------
    registry:
        Optional metrics registry the detector should accumulate into
        (pass ``MetricsRegistry(timing_enabled=False)`` to skip phase
        timing). One is created when omitted; either way the result's
        ``metrics`` field carries its final snapshot.
    """
    family = MinHashFamily(num_hashes=config.num_hashes, seed=family_seed)
    queries = QuerySet.from_cell_ids(
        prepared.query_cell_ids, prepared.query_frames, family
    )
    detector = StreamingDetector(
        config=config,
        queries=queries,
        keyframes_per_second=prepared.keyframes_per_second,
        registry=registry,
    )
    # Route through the live front end and drain the tail explicitly:
    # a stream ending mid-window is processed by flush(), never silently
    # stranded in the monitor's buffer.
    monitor = LiveMonitor(detector)
    started = time.perf_counter()
    matches = monitor.push_cell_ids(prepared.stream_cell_ids)
    matches.extend(monitor.flush())
    cpu_seconds = time.perf_counter() - started
    quality = score_matches(
        matches, prepared.ground_truth, detector.window_frames
    )
    detector.registry.set_gauge("runner.cpu_seconds", cpu_seconds)
    detector.registry.set_gauge(
        "runner.prepare_seconds", prepared.prepare_seconds
    )
    return ExperimentResult(
        cpu_seconds=cpu_seconds,
        quality=quality,
        stats=detector.stats,
        matches=matches,
        config=config,
        metrics=snapshot(detector.registry),
    )
