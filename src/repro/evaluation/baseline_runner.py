"""Timed baseline runs over doctored streams (Figures 12, 14, 15).

The Seq and Warp baselines operate on per-frame ordinal signatures rather
than cell-id sets; this module extracts those signatures once per
workload, slides every query over the stream, converts the hits into
:class:`~repro.core.results.Match` records and scores them under the same
position rule as the main method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Union

import numpy as np

from repro.baselines.seq import SeqMatcher, ordinal_signature
from repro.baselines.warp import WarpMatcher
from repro.core.results import Match
from repro.evaluation.metrics import PrecisionRecall, score_matches
from repro.features.dc_extract import block_means_from_frames
from repro.workloads.doctor import DoctoredStream
from repro.workloads.library import ClipLibrary

__all__ = ["BaselineResult", "OrdinalWorkload", "run_baseline"]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one baseline run."""

    cpu_seconds: float
    quality: PrecisionRecall
    matches: List[Match] = field(repr=False)


@dataclass(frozen=True)
class OrdinalWorkload:
    """Pre-extracted ordinal rank signatures for one (stream, library).

    Extraction is shared across threshold/parameter sweeps exactly like
    :class:`~repro.evaluation.runner.PreparedWorkload` does for cell ids.
    """

    stream_ranks: np.ndarray = field(repr=False)
    query_ranks: Dict[int, np.ndarray] = field(repr=False)
    stream: DoctoredStream = field(repr=False)

    @classmethod
    def prepare(
        cls, stream: DoctoredStream, library: ClipLibrary
    ) -> "OrdinalWorkload":
        """Extract rank signatures for the stream and every query."""
        stream_ranks = ordinal_signature(
            block_means_from_frames(stream.clip.frames)
        )
        query_ranks = {
            qid: ordinal_signature(block_means_from_frames(clip.frames))
            for qid, clip in library
        }
        return cls(
            stream_ranks=stream_ranks, query_ranks=query_ranks, stream=stream
        )


def run_baseline(
    workload: OrdinalWorkload,
    matcher: Union[SeqMatcher, WarpMatcher],
    window_frames: int,
) -> BaselineResult:
    """Slide every query over the stream with the given matcher.

    Parameters
    ----------
    workload:
        Pre-extracted rank signatures.
    matcher:
        A configured :class:`SeqMatcher` or :class:`WarpMatcher`; its
        ``gap_frames`` should equal ``window_frames`` for the paper's
        protocol ("the sliding gap ... is also known as basic window").
    window_frames:
        Basic-window length for the position-correctness rule.
    """
    started = time.perf_counter()
    matches: List[Match] = []
    for qid, query_ranks in workload.query_ranks.items():
        for hit in matcher.find_matches(query_ranks, workload.stream_ranks):
            matches.append(
                Match(
                    qid=qid,
                    window_index=hit["start_frame"] // max(1, window_frames),
                    start_frame=hit["start_frame"],
                    end_frame=hit["end_frame"],
                    similarity=1.0 - hit["distance"],
                )
            )
    cpu_seconds = time.perf_counter() - started
    quality = score_matches(
        matches, workload.stream.ground_truth, window_frames
    )
    return BaselineResult(
        cpu_seconds=cpu_seconds, quality=quality, matches=matches
    )
