"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failure domain (codec, feature
extraction, sketching, indexing, detection, workload generation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """A parameter value is outside its legal domain.

    Raised eagerly at construction time of configuration objects so that a
    bad experiment setup fails before any stream processing starts.
    """


class CodecError(ReproError):
    """The toy MPEG-like codec was asked to do something impossible.

    Examples: encoding a frame whose sides are not multiples of the block
    size, or decoding a bitstream with a corrupted header.
    """


class BitstreamError(CodecError):
    """A compressed bitstream is truncated, corrupt or mis-versioned."""


class VideoError(ReproError):
    """A video clip or frame violates a structural invariant.

    Examples: an empty clip, mismatched frame shapes inside one clip, or an
    edit operation applied with out-of-range strength.
    """


class FeatureError(ReproError):
    """Frame fingerprint extraction failed.

    Examples: a frame too small for the requested block grid, or a selector
    asking for more dimensions than the grid provides.
    """


class PartitionError(ReproError):
    """A feature vector cannot be mapped to a grid-pyramid cell.

    Raised for vectors outside the unit hypercube or dimensionality
    mismatches between the partitioner and the vector.
    """


class SketchError(ReproError):
    """Min-hash sketch construction or combination failed.

    Examples: combining sketches built from different hash families, or
    sketching an empty element set.
    """


class SignatureError(ReproError):
    """Bit-vector signature encoding or combination failed.

    Examples: OR-combining signatures of different widths or built against
    different queries.
    """


class IndexError_(ReproError):
    """The Hash-Query index rejected an operation.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`. Raised for duplicate query ids, unknown query ids
    on removal, or probing with a sketch of the wrong width.
    """


class DetectionError(ReproError):
    """The streaming detection engine hit an inconsistent state."""


class IngestError(ReproError):
    """The multi-stream ingestion layer hit an inconsistent state.

    Examples: a stream session fed chunks out of sequence, a degradation
    policy of ``fail`` encountering a corrupt chunk, or a scheduler asked
    to run with no streams.
    """


class WorkloadError(ReproError):
    """Workload construction (library clips, doctored streams) failed.

    Examples: inserting more clips than the base stream can hold, or a
    ground-truth interval outside the stream.
    """


class EvaluationError(ReproError):
    """Metric computation was asked to score inconsistent inputs."""


class ServeError(ReproError):
    """The sharded detection service hit an inconsistent state.

    Examples: a worker reporting an error for a control message, a
    checkpoint recorded under a different configuration or shard plan,
    or resuming a service whose checkpoint file is missing.
    """


class WorkerDeadError(ServeError):
    """A shard worker's process or thread died with requests outstanding.

    Raised by executor ``recv``/``send`` instead of blocking forever on a
    queue whose producer no longer exists. Carries the worker id and the
    number of replies acked before death so a supervisor (or operator)
    knows exactly where the shard stopped.
    """

    def __init__(
        self, worker_id: int, last_acked: int, message: str = ""
    ) -> None:
        self.worker_id = worker_id
        self.last_acked = last_acked
        super().__init__(
            message
            or (
                f"worker {worker_id} died "
                f"(acked {last_acked} replies before death)"
            )
        )


class WorkerStallError(ServeError):
    """A shard worker is alive but failed to reply within its deadline.

    Raised by executor ``recv`` when a bounded wait expires while the
    worker process/thread still reports as alive — the liveness signal
    that distinguishes a stalled worker from a dead one.
    """

    def __init__(
        self, worker_id: int, last_acked: int, deadline: float
    ) -> None:
        self.worker_id = worker_id
        self.last_acked = last_acked
        self.deadline = deadline
        super().__init__(
            f"worker {worker_id} stalled: no reply within {deadline:.3f}s "
            f"(acked {last_acked} replies so far)"
        )


class ArchiveError(ReproError):
    """The sketch archive hit an inconsistent state.

    Examples: a segment file with a bad CRC or foreign format tag,
    appending windows behind the watermark non-monotonically, probing a
    backfill query sketched under a different hash family, or a
    recovery scan finding a hole between otherwise valid segments.
    """


class GatewayError(ReproError):
    """The network gateway hit a protocol or session error.

    Examples: a corrupt or oversized ``repro.wire/1`` frame, a version
    mismatch at HELLO, a client overrunning its credit window, or a
    resume token that does not match the held stream.
    """
