"""The Warp baseline — time-warping distance matching, Chiu et al. [6].

Dynamic time warping with a Sakoe–Chiba band of width ``r`` aligns a
query's frame-feature sequence against a stream window, tolerating *local*
tempo differences (frame-rate changes, dropped frames). The per-step cost
is the same normalised ordinal frame distance the Seq baseline uses; the
path cost is normalised by the path length so thresholds are comparable
across query lengths. As ``r`` grows the matcher tolerates more local
variation but its cost grows as O(L·r) per alignment — the CPU trade-off
Figure 12/15 report. Global shot *reordering* still defeats it: DTW paths
are monotone, so transposed segments cannot be re-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import EvaluationError
from repro.baselines.seq import _max_rank_l1

__all__ = ["WarpMatcher", "dtw_distance"]


def dtw_distance(
    query: np.ndarray, window: np.ndarray, band_width: int
) -> float:
    """Banded DTW distance between two rank-vector sequences.

    Parameters
    ----------
    query, window:
        ``(n, D)`` and ``(m, D)`` integer rank matrices.
    band_width:
        Sakoe–Chiba band radius ``r`` around the (scaled) diagonal; a
        warping path may not deviate further than ``r`` cells from it.

    Returns
    -------
    float
        Accumulated normalised frame distance divided by the warping path
        length, in [0, 1].
    """
    if band_width < 0:
        raise EvaluationError(f"band_width must be non-negative, got {band_width}")
    n, dim = query.shape
    m = window.shape[0]
    if m == 0 or n == 0:
        raise EvaluationError("cannot warp empty sequences")
    if window.shape[1] != dim:
        raise EvaluationError("rank vectors must share dimensionality")
    max_l1 = _max_rank_l1(dim)

    # Effective band: widen by the length mismatch so the corner (n-1, m-1)
    # is always reachable, then add the user radius.
    band = max(band_width, abs(n - m)) + 1

    infinity = np.inf
    # cost[j] along the previous row; rolling 1-D DP.
    previous = np.full(m + 1, infinity)
    previous[0] = 0.0
    query64 = query.astype(np.int64)
    window64 = window.astype(np.int64)
    for i in range(1, n + 1):
        center = round(i * m / n)
        lo = max(1, center - band)
        hi = min(m, center + band)
        current = np.full(m + 1, infinity)
        row_costs = (
            np.abs(window64[lo - 1 : hi] - query64[i - 1]).sum(axis=1) / max_l1
        )
        for j in range(lo, hi + 1):
            step = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = row_costs[j - lo] + step
        previous = current
    total = previous[m]
    if not np.isfinite(total):
        raise EvaluationError(
            "the warping band excluded every path; widen band_width"
        )
    # Normalise by the shortest possible path length (max(n, m) steps).
    return float(total / max(n, m))


@dataclass(frozen=True)
class WarpMatcher:
    """Sliding-window DTW matcher.

    Parameters
    ----------
    distance_threshold:
        A window is reported when its normalised DTW distance is at or
        below this value.
    band_width:
        The Sakoe–Chiba radius ``r``.
    gap_frames:
        Sliding gap in key frames (the basic window).
    window_scale:
        Window length relative to the query length (≥ 1 admits re-timed
        copies, mirroring the λ of the main method).
    """

    distance_threshold: float = 0.25
    band_width: int = 5
    gap_frames: int = 10
    window_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.distance_threshold < 0:
            raise EvaluationError(
                f"distance_threshold must be non-negative, "
                f"got {self.distance_threshold}"
            )
        if self.band_width < 0:
            raise EvaluationError(
                f"band_width must be non-negative, got {self.band_width}"
            )
        if self.gap_frames <= 0:
            raise EvaluationError(
                f"gap_frames must be positive, got {self.gap_frames}"
            )
        if self.window_scale < 1.0:
            raise EvaluationError(
                f"window_scale must be >= 1, got {self.window_scale}"
            )

    def find_matches(
        self, query_ranks: np.ndarray, stream_ranks: np.ndarray
    ) -> List[dict]:
        """Slide a scaled window over the stream and DTW-score each one.

        Returns
        -------
        list of dict
            Each with keys ``start_frame``, ``end_frame``, ``distance``.
        """
        query_length = query_ranks.shape[0]
        window_length = max(1, round(query_length * self.window_scale))
        stream_length = stream_ranks.shape[0]
        matches: List[dict] = []
        if stream_length < window_length:
            return matches
        for start in range(0, stream_length - window_length + 1, self.gap_frames):
            window = stream_ranks[start : start + window_length]
            distance = dtw_distance(query_ranks, window, self.band_width)
            if distance <= self.distance_threshold:
                matches.append(
                    {
                        "start_frame": start,
                        "end_frame": start + window_length,
                        "distance": distance,
                    }
                )
        return matches
