"""Exact set-similarity via membership testing.

This is Definition 2 computed exactly (no sketch): the Jaccard similarity
of the distinct cell-id sets of two sequences. The paper uses it for the
Table II study of partition granularity ("using membership test method
instead of min-hash"), where each original clip A[i] queries the edited
collection B. It also serves as the ground-truth oracle that the min-hash
estimator is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError

__all__ = ["MembershipMatcher", "jaccard_similarity"]


def jaccard_similarity(
    left: Sequence[int] | np.ndarray, right: Sequence[int] | np.ndarray
) -> float:
    """Exact Jaccard similarity of two id collections (duplicates ignored).

    Two empty collections are defined to have similarity 0.0 (an empty
    video sequence is never a copy of anything).
    """
    left_set = set(int(x) for x in left)
    right_set = set(int(x) for x in right)
    union = len(left_set | right_set)
    if union == 0:
        return 0.0
    return len(left_set & right_set) / union


@dataclass(frozen=True)
class MembershipMatcher:
    """Clip-collection retrieval by exact set similarity.

    Parameters
    ----------
    threshold:
        δ — a target clip is retrieved when its exact Jaccard similarity
        with the query reaches this value.
    """

    threshold: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise EvaluationError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )

    def retrieve(
        self,
        query_ids: Sequence[int] | np.ndarray,
        collection: Mapping[int, np.ndarray],
    ) -> List[Tuple[int, float]]:
        """Return ``(clip_id, similarity)`` for every collection clip at or
        above the threshold, best first."""
        hits = [
            (clip_id, jaccard_similarity(query_ids, ids))
            for clip_id, ids in collection.items()
        ]
        qualified = [(cid, sim) for cid, sim in hits if sim >= self.threshold]
        return sorted(qualified, key=lambda pair: (-pair[1], pair[0]))

    def retrieval_quality(
        self,
        queries: Mapping[int, np.ndarray],
        collection: Mapping[int, np.ndarray],
    ) -> Tuple[float, float]:
        """Precision and recall of querying ``queries`` against
        ``collection`` where the correct answer for query ``i`` is the
        collection clip with the same id (the paper's A[i] -> B[i] setup).

        Returns
        -------
        (precision, recall)
            Precision: fraction of retrieved clips that are the query's
            own counterpart. Recall: fraction of queries whose
            counterpart was retrieved. With zero retrievals precision is
            defined as 1.0 (nothing wrong was returned).
        """
        if not queries:
            raise EvaluationError("retrieval_quality needs at least one query")
        retrieved_total = 0
        retrieved_correct = 0
        queries_answered = 0
        for qid, query_ids in queries.items():
            hits = self.retrieve(query_ids, collection)
            retrieved_total += len(hits)
            correct = any(cid == qid for cid, _sim in hits)
            retrieved_correct += sum(1 for cid, _sim in hits if cid == qid)
            if correct:
                queries_answered += 1
        precision = (
            retrieved_correct / retrieved_total if retrieved_total else 1.0
        )
        recall = queries_answered / len(queries)
        return precision, recall
