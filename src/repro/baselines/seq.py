"""The Seq baseline — Hampapur, Hyun & Bolle [1].

A rigid sliding-window sequence matcher: every frame gets an *ordinal
intensity signature* (the rank order of its D block averages), the
distance between two frames is the normalised L1 distance of their rank
vectors, and the distance between a query and an equally long stream
window is the average of the aligned frame distances. The query-length
window slides over the stream with a gap of one basic window, exactly the
evaluation protocol of Section VI-E ("a query length sized window is
sliding through the video stream, the sliding gap ... is also known as
basic window").

The measure depends entirely on temporal alignment, which is why shot
reordering destroys it (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import EvaluationError

__all__ = ["SeqMatcher", "frame_distance_matrix", "ordinal_signature"]


def ordinal_signature(block_means: np.ndarray) -> np.ndarray:
    """Rank vector of each frame's block averages.

    Parameters
    ----------
    block_means:
        ``(n, D)`` matrix of per-frame block averages.

    Returns
    -------
    numpy.ndarray
        ``(n, D)`` integer ranks: entry ``(t, i)`` is the rank (0 =
        smallest) of block ``i`` within frame ``t``. Ranking is what makes
        the signature invariant to monotone luminance changes.
    """
    if block_means.ndim != 2:
        raise EvaluationError(
            f"expected (n, D) block means, got shape {block_means.shape}"
        )
    order = np.argsort(block_means, axis=1, kind="stable")
    ranks = np.empty_like(order)
    columns = np.arange(block_means.shape[1])
    for row in range(block_means.shape[0]):
        ranks[row, order[row]] = columns
    return ranks


def _max_rank_l1(dimension: int) -> float:
    """Maximum possible L1 distance between two rank vectors of size D.

    Reached by opposite orderings; equals ``floor(D^2 / 2)``. Used to
    normalise frame distances into [0, 1].
    """
    return (dimension * dimension) // 2


def frame_distance_matrix(
    query_ranks: np.ndarray, stream_ranks: np.ndarray
) -> np.ndarray:
    """Pairwise normalised ordinal distances, shape ``(len(q), len(s))``."""
    if query_ranks.shape[1] != stream_ranks.shape[1]:
        raise EvaluationError("rank vectors must share dimensionality")
    diff = np.abs(
        query_ranks[:, np.newaxis, :].astype(np.int64)
        - stream_ranks[np.newaxis, :, :].astype(np.int64)
    ).sum(axis=2)
    return diff / _max_rank_l1(query_ranks.shape[1])


@dataclass(frozen=True)
class SeqMatcher:
    """Sliding-window rigid sequence matcher.

    Parameters
    ----------
    distance_threshold:
        A window is reported as a copy when its average aligned frame
        distance is at or below this value.
    gap_frames:
        Sliding gap in key frames (the basic window of Section VI-E).
    """

    distance_threshold: float = 0.3
    gap_frames: int = 10

    def __post_init__(self) -> None:
        if self.distance_threshold < 0:
            raise EvaluationError(
                f"distance_threshold must be non-negative, "
                f"got {self.distance_threshold}"
            )
        if self.gap_frames <= 0:
            raise EvaluationError(
                f"gap_frames must be positive, got {self.gap_frames}"
            )

    def window_distance(
        self, query_ranks: np.ndarray, window_ranks: np.ndarray
    ) -> float:
        """Average aligned frame distance between query and one window.

        When lengths differ (re-timed copies), the shorter sequence is
        compared against the aligned prefix of the longer one, as the
        rigid matcher has no other recourse.
        """
        length = min(query_ranks.shape[0], window_ranks.shape[0])
        if length == 0:
            raise EvaluationError("cannot compare empty sequences")
        diff = np.abs(
            query_ranks[:length].astype(np.int64)
            - window_ranks[:length].astype(np.int64)
        ).sum(axis=1)
        return float(diff.mean() / _max_rank_l1(query_ranks.shape[1]))

    def find_matches(
        self, query_ranks: np.ndarray, stream_ranks: np.ndarray
    ) -> List[dict]:
        """Slide the query over the stream; return sub-threshold windows.

        Returns
        -------
        list of dict
            Each with keys ``start_frame``, ``end_frame``, ``distance``.
        """
        query_length = query_ranks.shape[0]
        stream_length = stream_ranks.shape[0]
        matches: List[dict] = []
        if stream_length < query_length:
            return matches
        for start in range(0, stream_length - query_length + 1, self.gap_frames):
            window = stream_ranks[start : start + query_length]
            distance = self.window_distance(query_ranks, window)
            if distance <= self.distance_threshold:
                matches.append(
                    {
                        "start_frame": start,
                        "end_frame": start + query_length,
                        "distance": distance,
                    }
                )
        return matches
