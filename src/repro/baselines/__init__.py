"""Comparison baselines re-implemented from their descriptions.

* :mod:`repro.baselines.membership` — exact set-similarity membership
  test, the non-sketched reference used by the paper's Table II
  partition-granularity study.
* :mod:`repro.baselines.seq` — Hampapur et al. [1]: a query-length window
  slides over the stream, similarity is the average frame-pairwise
  (ordinal) distance, rigidly aligned. Strongly temporal-order dependent.
* :mod:`repro.baselines.warp` — Chiu et al. [6]: dynamic time warping
  distance with a Sakoe–Chiba band of width ``r``; tolerates *local*
  tempo variation but not shot reordering.
"""

from repro.baselines.membership import MembershipMatcher, jaccard_similarity
from repro.baselines.seq import SeqMatcher, ordinal_signature
from repro.baselines.warp import WarpMatcher, dtw_distance

__all__ = [
    "MembershipMatcher",
    "SeqMatcher",
    "WarpMatcher",
    "dtw_distance",
    "jaccard_similarity",
    "ordinal_signature",
]
