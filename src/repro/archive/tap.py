"""Gap-aware archive tap for lossy per-stream ingestion.

The sharded service taps its :class:`~repro.serve.frontend.StreamFrontend`
directly — that stream never has holes (the service sees every chunk it
ingests). A :class:`~repro.ingest.session.StreamSession` is different:
its degradation policies *lose* frames (undecodable GOPs skipped,
chunks dropped in flight), and the session keeps the window clock
honest by sacrificing every basic window a gap touches
(:meth:`~repro.core.live.LiveMonitor.skip_frames`).

:class:`ArchiveTap` mirrors exactly that clock discipline for the
archive: frames that survive degradation are buffered, cut into basic
windows at the same boundaries the session's monitor uses, sketched and
appended to a :class:`~repro.archive.ring.SketchArchive`; skipped spans
advance the archive watermark as *gaps* (:meth:`SketchArchive.note_gap`)
— never archived, never misindexed. A window the live detector
sacrificed is therefore also absent from the archive, so a later
backfill probes precisely the windows the stream actually delivered.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ArchiveError
from repro.minhash.family import MinHashFamily
from repro.obs.registry import MetricsRegistry
from repro.archive.ring import SketchArchive

__all__ = ["ArchiveTap"]


class ArchiveTap:
    """Cuts a (possibly lossy) cell-id stream into archived windows.

    Parameters
    ----------
    archive:
        The destination archive; its hash family must be ``family``.
    family:
        The min-hash family the queries were sketched under.
    window_frames:
        Basic-window length in key frames — must equal the session
        detector's, or archived indices would not align with live ones.
    registry:
        Session registry for the ``ingest.archive_*`` counters.
    """

    def __init__(
        self,
        archive: SketchArchive,
        family: MinHashFamily,
        window_frames: int,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if family.fingerprint != archive.family_fingerprint:
            raise ArchiveError(
                "archive tap family does not match the archive's: "
                f"{family.fingerprint} vs {archive.family_fingerprint}"
            )
        if window_frames < 1:
            raise ArchiveError(
                f"window_frames must be >= 1, got {window_frames}"
            )
        self.archive = archive
        self.family = family
        self.window_frames = int(window_frames)
        self.registry = registry or MetricsRegistry(timing_enabled=False)
        self._pending = np.empty(0, dtype=np.int64)
        self._skip_remaining = 0
        self._flushed = False
        self.windows_emitted = archive.next_index
        self.frames_emitted = self.windows_emitted * self.window_frames
        self.registry.inc("ingest.archive_windows", 0)
        self.registry.inc("ingest.archive_gap_windows", 0)

    @property
    def pending_frames(self) -> int:
        return int(self._pending.shape[0])

    @property
    def skip_remaining(self) -> int:
        return self._skip_remaining

    # ------------------------------------------------------------------
    # stream input (mirrors LiveMonitor's clock discipline)
    # ------------------------------------------------------------------

    def push_cell_ids(
        self, cell_ids: Union[Sequence[int], np.ndarray]
    ) -> int:
        """Buffer surviving frames; archive every completed window.
        Returns windows archived by this push."""
        if self._flushed:
            raise ArchiveError("archive tap already flushed")
        ids = np.asarray(cell_ids, dtype=np.int64)
        if self._skip_remaining:
            drop = min(self._skip_remaining, int(ids.shape[0]))
            ids = ids[drop:]
            self._skip_remaining -= drop
        self._pending = np.concatenate([self._pending, ids])
        window_frames = self.window_frames
        full = (self._pending.shape[0] // window_frames) * window_frames
        if full == 0:
            return 0
        ready, self._pending = self._pending[:full], self._pending[full:]
        return self._emit(ready)

    def _emit(self, ready: np.ndarray) -> int:
        window_frames = self.window_frames
        num = ready.shape[0] // window_frames
        distinct: List[np.ndarray] = [
            np.unique(ready[start : start + window_frames])
            for start in range(0, ready.shape[0], window_frames)
        ]
        sketches = self.family.sketch_many(distinct)
        values = np.stack([sketch.values for sketch in sketches])
        indices = self.windows_emitted + np.arange(num, dtype=np.int64)
        starts = self.frames_emitted + np.arange(
            num, dtype=np.int64
        ) * np.int64(window_frames)
        frames = np.full(num, window_frames, dtype=np.int64)
        self.archive.append(indices, starts, frames, values)
        self.windows_emitted += num
        self.frames_emitted += num * window_frames
        self.registry.inc("ingest.archive_windows", num)
        return num

    def skip_frames(self, count: int) -> None:
        """Acknowledge lost frames exactly as the session's monitor
        does: drop the current partial window, advance the watermark
        over every touched window as a gap, and swallow the remaining
        real frames of a gap-ending window as they arrive."""
        if self._flushed:
            raise ArchiveError("archive tap already flushed")
        count = int(count)
        if count <= 0:
            return
        window_frames = self.window_frames
        clock = self.frames_emitted
        if self._skip_remaining:
            position = clock - self._skip_remaining
        else:
            position = clock + int(self._pending.shape[0])
        self._pending = np.empty(0, dtype=np.int64)
        end = position + count
        boundary = -(-end // window_frames) * window_frames
        if boundary > clock:
            gap_windows = (boundary - clock) // window_frames
            self.archive.note_gap(gap_windows)
            self.windows_emitted += gap_windows
            self.frames_emitted = boundary
            self.registry.inc("ingest.archive_gap_windows", gap_windows)
        self._skip_remaining = max(boundary, clock) - end

    def flush(self) -> int:
        """Archive the trailing partial window and seal the open run."""
        if self._flushed:
            return 0
        self._flushed = True
        self._skip_remaining = 0
        archived = 0
        if self._pending.shape[0]:
            tail, self._pending = self._pending, np.empty(
                0, dtype=np.int64
            )
            sketch = self.family.sketch_many([np.unique(tail)])[0]
            self.archive.append(
                np.asarray([self.windows_emitted], dtype=np.int64),
                np.asarray([self.frames_emitted], dtype=np.int64),
                np.asarray([tail.shape[0]], dtype=np.int64),
                sketch.values[np.newaxis, :],
            )
            self.windows_emitted += 1
            self.frames_emitted += int(tail.shape[0])
            self.registry.inc("ingest.archive_windows")
            archived = 1
        self.archive.seal_open_run()
        return archived
