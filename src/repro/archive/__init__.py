"""Sketch archive + retrospective backfill for late-subscribed queries.

The live pipeline evaluates each basic window once, against the queries
subscribed *at that moment*, and moves on. This package retains the
query-independent half of that work — every window's K-min sketch and
coordinates — in a bounded in-memory ring
(:class:`~repro.archive.ring.SketchArchive`) that seals full contiguous
runs to disk as atomic, CRC-guarded ``repro.arch/1`` segments
(:class:`~repro.archive.store.SegmentStore`, with retention by
windows/bytes/age, compaction of gap-stranded runts and crash-safe
recovery). When a query subscribes late with ``backfill=N``, the
:class:`~repro.archive.backfill.BackfillEngine` replays the archived
windows through a single-query detector on the same columnar kernels
the live path uses, emitting ``retro`` matches that are bit-for-bit
what the query would have reported from stream start over the overlap.

See ``docs/archive.md`` for the file format, retention semantics and
the equivalence argument.
"""

from repro.archive.backfill import BackfillEngine, BackfillJob
from repro.archive.ring import SketchArchive
from repro.archive.store import ARCHIVE_FORMAT, SegmentInfo, SegmentStore
from repro.archive.tap import ArchiveTap

__all__ = [
    "ARCHIVE_FORMAT",
    "ArchiveTap",
    "BackfillEngine",
    "BackfillJob",
    "SegmentInfo",
    "SegmentStore",
    "SketchArchive",
]
