"""On-disk segment store for archived basic-window sketches.

The archive's durable tier: consecutive basic windows are sealed into
immutable ``repro.arch/1`` npz **segments**, one file per contiguous
index run. Every write goes through
:func:`repro.utils.atomic.atomic_savez` (fsync + tmp-rename), so a
crash can only ever leave behind a ``*.tmp`` sibling — never a torn
segment under its final name. Each segment embeds a CRC32 over its
window payload so bit rot is detected at read time, not silently
probed.

File naming carries the index range — ``seg-<first>-<count>.npz`` — so
a recovery scan can order segments without opening them. Validation
(:meth:`SegmentStore.recover`) still opens each file: format tag,
member shapes and the CRC are checked, leftover temporaries are swept,
and a corrupt *tail* segment (the only kind a crash can produce with
atomic writes: e.g. a file copied off a dying disk) is quarantined to
``*.corrupt`` rather than deleted. A corrupt segment strictly *before*
a valid one is not a crash artefact and raises
:class:`~repro.errors.ArchiveError`.
"""

from __future__ import annotations

import pathlib
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ArchiveError
from repro.utils.atomic import TMP_SUFFIX, atomic_savez

__all__ = ["ARCHIVE_FORMAT", "SegmentInfo", "SegmentStore"]

#: Format tag embedded in every segment file; loading rejects others.
ARCHIVE_FORMAT = "repro.arch/1"

#: Suffix quarantined (corrupt-tail) segments are renamed to.
CORRUPT_SUFFIX = ".corrupt"


def _segment_name(first_index: int, num_windows: int) -> str:
    return f"seg-{int(first_index):010d}-{int(num_windows):06d}.npz"


def _payload_crc(
    starts: np.ndarray, frames: np.ndarray, sketch_values: np.ndarray
) -> int:
    crc = zlib.crc32(np.ascontiguousarray(starts).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(frames).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(sketch_values).tobytes(), crc)
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class SegmentInfo:
    """Catalogue entry for one sealed segment.

    ``sealed_at`` is the wall-clock seal time recorded *inside* the
    file (age-based retention must survive copies that reset mtimes).
    """

    path: pathlib.Path
    first_index: int
    num_windows: int
    nbytes: int
    sealed_at: float

    @property
    def end_index(self) -> int:
        """One past the last window index in the segment."""
        return self.first_index + self.num_windows


class SegmentStore:
    """Seals, validates, loads, prunes and compacts archive segments.

    Parameters
    ----------
    directory:
        Segment directory, created if missing. One store owns it
        exclusively; foreign files are ignored by the name pattern.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segments: List[SegmentInfo] = []

    # -- catalogue -----------------------------------------------------

    @property
    def segments(self) -> List[SegmentInfo]:
        """Validated segments, ascending by first window index."""
        return list(self._segments)

    def bytes_on_disk(self) -> int:
        return sum(info.nbytes for info in self._segments)

    def windows_on_disk(self) -> int:
        return sum(info.num_windows for info in self._segments)

    # -- seal ----------------------------------------------------------

    def seal(
        self,
        first_index: int,
        starts: np.ndarray,
        frames: np.ndarray,
        sketch_values: np.ndarray,
        family_fingerprint: Tuple[int, int, int],
        sealed_at: Optional[float] = None,
    ) -> SegmentInfo:
        """Atomically write one contiguous run as a segment file."""
        starts = np.asarray(starts, dtype=np.int64)
        frames = np.asarray(frames, dtype=np.int64)
        sketch_values = np.asarray(sketch_values, dtype=np.int64)
        num = int(starts.shape[0])
        if num == 0:
            raise ArchiveError("refusing to seal an empty segment")
        if frames.shape != (num,) or sketch_values.shape[0] != num:
            raise ArchiveError(
                f"segment arrays disagree on window count: starts {num}, "
                f"frames {frames.shape}, sketches {sketch_values.shape}"
            )
        for info in self._segments:
            if (
                info.first_index < first_index + num
                and first_index < info.end_index
            ):
                raise ArchiveError(
                    f"segment at [{first_index}, {first_index + num}) "
                    f"overlaps sealed segment {info.path.name}"
                )
        when = time.time() if sealed_at is None else float(sealed_at)
        fmt = np.empty(1, dtype=object)
        fmt[0] = ARCHIVE_FORMAT
        payload: Dict[str, np.ndarray] = {
            "format": fmt,
            "first_index": np.asarray([first_index], dtype=np.int64),
            "starts": starts,
            "frames": frames,
            "sketch_values": sketch_values,
            "family": np.asarray(family_fingerprint, dtype=np.int64),
            "sealed_at": np.asarray([when], dtype=np.float64),
            "crc": np.asarray(
                [_payload_crc(starts, frames, sketch_values)],
                dtype=np.int64,
            ),
        }
        path = self.directory / _segment_name(first_index, num)
        atomic_savez(path, payload)
        info = SegmentInfo(
            path=path,
            first_index=int(first_index),
            num_windows=num,
            nbytes=path.stat().st_size,
            sealed_at=when,
        )
        self._segments.append(info)
        self._segments.sort(key=lambda seg: seg.first_index)
        return info

    # -- recovery ------------------------------------------------------

    def recover(self) -> List[SegmentInfo]:
        """Scan the directory: sweep temporaries, validate every
        segment, quarantine a torn tail; returns the valid catalogue."""
        candidates: List[Tuple[int, int, pathlib.Path]] = []
        for entry in sorted(self.directory.iterdir()):
            if entry.name.endswith(TMP_SUFFIX):
                entry.unlink(missing_ok=True)
                continue
            parsed = self._parse_name(entry.name)
            if parsed is not None:
                candidates.append((parsed[0], parsed[1], entry))
        candidates.sort()
        segments: List[SegmentInfo] = []
        bad: List[pathlib.Path] = []
        for first_index, num_windows, path in candidates:
            info = self._validate(path, first_index, num_windows)
            if info is None:
                bad.append(path)
                continue
            if bad:
                raise ArchiveError(
                    f"segment {bad[-1].name} is corrupt but later "
                    f"segment {path.name} is valid — not a torn tail; "
                    "refusing to silently drop archived windows"
                )
            if segments and info.first_index < segments[-1].end_index:
                raise ArchiveError(
                    f"segments {segments[-1].path.name} and {path.name} "
                    "overlap"
                )
            segments.append(info)
        for path in bad:
            path.rename(path.with_name(path.name + CORRUPT_SUFFIX))
        self._segments = segments
        return list(segments)

    @staticmethod
    def _parse_name(name: str) -> Optional[Tuple[int, int]]:
        if not (name.startswith("seg-") and name.endswith(".npz")):
            return None
        parts = name[4:-4].split("-")
        if len(parts) != 2:
            return None
        try:
            return int(parts[0]), int(parts[1])
        except ValueError:
            return None

    def _validate(
        self, path: pathlib.Path, first_index: int, num_windows: int
    ) -> Optional[SegmentInfo]:
        try:
            with np.load(path, allow_pickle=True) as archive:
                if str(archive["format"][0]) != ARCHIVE_FORMAT:
                    return None
                if int(archive["first_index"][0]) != first_index:
                    return None
                starts = archive["starts"]
                frames = archive["frames"]
                values = archive["sketch_values"]
                if (
                    starts.shape != (num_windows,)
                    or frames.shape != (num_windows,)
                    or values.shape[0] != num_windows
                ):
                    return None
                if int(archive["crc"][0]) != _payload_crc(
                    starts, frames, values
                ):
                    return None
                sealed_at = float(archive["sealed_at"][0])
        except Exception:  # zipfile/format errors vary by numpy version
            return None
        return SegmentInfo(
            path=path,
            first_index=first_index,
            num_windows=num_windows,
            nbytes=path.stat().st_size,
            sealed_at=sealed_at,
        )

    # -- read ----------------------------------------------------------

    def load(
        self, info: SegmentInfo
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, frames, sketch_values)`` with CRC verification."""
        try:
            with np.load(info.path, allow_pickle=True) as archive:
                if str(archive["format"][0]) != ARCHIVE_FORMAT:
                    raise ArchiveError(
                        f"segment {info.path} has a foreign format tag "
                        f"{archive['format'][0]!r}"
                    )
                starts = np.asarray(archive["starts"], dtype=np.int64)
                frames = np.asarray(archive["frames"], dtype=np.int64)
                values = np.asarray(
                    archive["sketch_values"], dtype=np.int64
                )
                crc = int(archive["crc"][0])
        except ArchiveError:
            raise
        except Exception as error:
            raise ArchiveError(
                f"cannot read segment {info.path}: {error}"
            )
        if crc != _payload_crc(starts, frames, values):
            raise ArchiveError(
                f"segment {info.path} failed its CRC check"
            )
        return starts, frames, values

    def family_fingerprint(
        self, info: SegmentInfo
    ) -> Tuple[int, int, int]:
        with np.load(info.path, allow_pickle=True) as archive:
            family = np.asarray(archive["family"], dtype=np.int64)
        return int(family[0]), int(family[1]), int(family[2])

    # -- prune / compact ----------------------------------------------

    def remove(self, info: SegmentInfo) -> None:
        info.path.unlink(missing_ok=True)
        self._segments = [
            seg for seg in self._segments if seg.path != info.path
        ]

    def compact(
        self,
        segment_windows: int,
        family_fingerprint: Tuple[int, int, int],
    ) -> int:
        """Merge adjacent undersized contiguous segments.

        Retention-by-gap sealing can strand runt segments (a lossy
        stream seals at every hole). Greedily coalesce consecutive
        segments that are index-contiguous and whose combined size
        stays within ``segment_windows``; returns merges performed.
        """
        merged = 0
        index = 0
        while index < len(self._segments) - 1:
            group = [self._segments[index]]
            total = group[0].num_windows
            scan = index + 1
            while scan < len(self._segments):
                nxt = self._segments[scan]
                if nxt.first_index != group[-1].end_index:
                    break
                if total + nxt.num_windows > segment_windows:
                    break
                group.append(nxt)
                total += nxt.num_windows
                scan += 1
            if len(group) < 2:
                index += 1
                continue
            parts = [self.load(info) for info in group]
            starts = np.concatenate([part[0] for part in parts])
            frames = np.concatenate([part[1] for part in parts])
            values = np.concatenate([part[2] for part in parts])
            sealed_at = max(info.sealed_at for info in group)
            for info in group:
                self.remove(info)
            self.seal(
                group[0].first_index,
                starts,
                frames,
                values,
                family_fingerprint,
                sealed_at=sealed_at,
            )
            merged += 1
        return merged
