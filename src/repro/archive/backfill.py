"""Retrospective probing of archived windows for late-subscribed queries.

A query subscribed mid-stream is blind to everything already streamed.
The :class:`BackfillEngine` closes that gap: when
``DetectionService.subscribe(query, backfill=N)`` is requested, it
builds a **single-query** :class:`~repro.core.detector.StreamingDetector`
and replays the archived windows ``[live_start - N, live_start)``
through it, exactly as a live worker would have — same
:meth:`~repro.core.detector.StreamingDetector.process_window` entry,
same columnar kernels, same Lemma 2 pruning, and in bit/no-index mode
the planes are re-encoded from the archived sketches with
:func:`~repro.signature.bitsig.encode_planes_many` (the
``signature_from_planes`` parity path the live front end uses).

**Why a single-query replay is exact.** In the sharded service a
query's match stream depends only on its own candidate state, except
candidate expiry, which uses the *global* cap hint; the engine is
therefore constructed with the service's cap hint at subscription time
(which already includes the new query). Replaying from window 0 — or
from any point at least one candidate horizon before the overlap of
interest — reproduces bit-for-bit the matches the query would have
reported had it been subscribed from stream start. That is the golden
guarantee the equivalence suite pins down.

**Epoch boundary / dedupe.** ``live_start`` is the front end's
``windows_emitted`` at the subscription barrier: every window below it
was processed live *without* the query, every window at or above it
*with* it. The two streams partition the match axis by **candidate
start**, not by match window: a candidate that began before the
barrier spans it, and the live engine cannot evaluate it faithfully —
engine candidates created before the subscribe carry *empty*
signatures for the new query over the pre-subscribe windows, so their
matches (and misses) are phantoms of partial information. The job
therefore probes one candidate horizon **past** the barrier, to
``live_start + cap_hint``, where every boundary-spanning candidate has
expired: the replay detector — which has the full archived history —
emits exactly the matches whose candidate started below ``live_start``,
and the service suppresses the live engine's matches for this query in
that same start range (:meth:`BackfillEngine.suppress_bounds`).
Matches whose candidate starts at or after ``live_start`` are the live
engine's alone — its post-barrier candidates are built from complete
information and equal the from-start run's bit for bit. No match is
double-reported, none is phantom, and the union is exactly the
from-start stream.

**Asynchrony.** Jobs run on a daemon thread (or are pumped
synchronously with ``async_mode=False`` — the CLI and the kill/resume
tests use this for determinism). Work proceeds in bounded window
slices under the engine lock; a checkpoint acquires the same lock, so
the persisted ``emitted_through`` watermark is always consistent with
the retro matches already collected. A resumed job re-probes from its
``start`` (candidate state is cheap to rebuild and deterministic) but
suppresses emission below the watermark: no retro match is lost, none
is duplicated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DetectorConfig, Representation
from repro.core.detector import StreamingDetector
from repro.core.query import Query, QuerySet
from repro.core.results import Match
from repro.errors import ArchiveError
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch
from repro.minhash.windows import BasicWindow
from repro.obs.registry import MetricsRegistry
from repro.signature.bitsig import encode_planes_many
from repro.archive.ring import SketchArchive

__all__ = ["BackfillEngine", "BackfillJob"]

_EMPTY_CELL_IDS = np.empty(0, dtype=np.int64)


@dataclass
class BackfillJob:
    """One query's retrospective probe over ``[start, end)``.

    ``live_start`` is the subscription barrier (the first window the
    live engine processed *with* the query); ``end`` extends one
    candidate horizon past it so boundary-spanning candidates are
    evaluated with full information. Only matches whose candidate
    started below ``live_start`` are emitted. ``emitted_through`` is
    the exclusive window watermark below which retro matches have
    already been handed to the collector — the resume-suppression
    point persisted in ``repro.ckpt/4``.
    """

    query: Query
    start: int
    end: int
    cap_hint: int
    live_start: int = -1
    emitted_through: int = -1
    requested: int = 0
    probed: int = 0
    retro_found: int = 0
    done: bool = False
    cancelled: bool = False
    pin_token: Optional[int] = None
    _detector: Optional[StreamingDetector] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.emitted_through < 0:
            self.emitted_through = self.start
        if self.live_start < 0:
            self.live_start = self.end

    @property
    def qid(self) -> int:
        return self.query.qid

    @property
    def total_windows(self) -> int:
        return max(0, self.end - self.start)

    @property
    def done_windows(self) -> int:
        if self.done:
            return self.total_windows
        return max(0, min(self.emitted_through, self.end) - self.start)

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        """Checkpoint row:
        ``(qid, start, live_start, end, emitted, cap_hint, found)``."""
        return (
            self.qid,
            self.start,
            self.live_start,
            self.end,
            self.emitted_through,
            self.cap_hint,
            self.retro_found,
        )


class BackfillEngine:
    """Runs backfill jobs against a :class:`SketchArchive`.

    Parameters
    ----------
    config / family / keyframes_per_second:
        The service's detector configuration and stream cadence; the
        replay detector is built with exactly these.
    archive:
        The archive to probe. Its family fingerprint must match.
    emit:
        Callback receiving each slice's retro matches in canonical
        order (the service points this at
        ``MatchCollector.add_retro``). Called under the engine lock.
    registry:
        Service registry for ``archive.backfill_*`` / ``retro_matches``.
    async_mode:
        ``True`` runs jobs on a daemon thread; ``False`` leaves them
        queued until :meth:`pump` is called.
    slice_windows:
        Windows probed per lock hold — the checkpoint latency bound.
    """

    def __init__(
        self,
        config: DetectorConfig,
        family: MinHashFamily,
        keyframes_per_second: float,
        archive: SketchArchive,
        emit: Callable[[List[Match]], None],
        registry: Optional[MetricsRegistry] = None,
        async_mode: bool = True,
        slice_windows: int = 128,
    ) -> None:
        if slice_windows < 1:
            raise ArchiveError(
                f"slice_windows must be >= 1, got {slice_windows}"
            )
        if family.fingerprint != archive.family_fingerprint:
            raise ArchiveError(
                "backfill family does not match the archive's: "
                f"{family.fingerprint} vs {archive.family_fingerprint}"
            )
        self.config = config
        self.family = family
        self.keyframes_per_second = float(keyframes_per_second)
        self.window_frames = max(
            1, round(config.window_seconds * keyframes_per_second)
        )
        self.archive = archive
        self.emit = emit
        self.registry = registry or MetricsRegistry(timing_enabled=False)
        self.async_mode = bool(async_mode)
        self.slice_windows = int(slice_windows)
        self.jobs: List[BackfillJob] = []
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        self.registry.inc("archive.backfill_probes", 0)
        self.registry.inc("archive.backfill_jobs", 0)
        self.registry.inc("archive.retro_matches", 0)

    # -- job admission -------------------------------------------------

    def request(
        self,
        query: Query,
        backfill: int,
        live_start: int,
        cap_hint: int,
    ) -> BackfillJob:
        """Queue a retrospective probe of the last ``backfill`` windows
        before ``live_start``, clamped to what the archive retains.

        The probe extends to ``live_start + cap_hint`` so candidates
        that span the subscription barrier reach expiry under full
        information; windows past ``live_start`` arrive in the archive
        as the live stream advances, and the job simply waits for them
        (:meth:`finalize` truncates the horizon when the stream ends).
        """
        if backfill < 0:
            raise ArchiveError(
                f"backfill must be >= 0, got {backfill}"
            )
        if query.sketch.family != self.family.fingerprint:
            raise ArchiveError(
                f"query {query.qid} was sketched under a different "
                "family than the archive"
            )
        lo, _ = self.archive.available()
        start = max(lo, live_start - backfill)
        with self._lock:
            job = BackfillJob(
                query=query,
                start=start,
                end=(
                    live_start + int(cap_hint)
                    if start < live_start
                    else start
                ),
                cap_hint=int(cap_hint),
                live_start=int(live_start),
                requested=int(backfill),
            )
            if job.total_windows == 0:
                # Nothing retained below the barrier: nothing to
                # replay, so the legacy join semantics (no shadow, no
                # suppression) apply.
                job.done = True
            else:
                job.pin_token = self.archive.pin(job.start, job.end)
            self.jobs.append(job)
            self.registry.inc("archive.backfill_jobs")
            self._wake.notify_all()
        if self.async_mode and job.total_windows:
            self._ensure_thread()
        return job

    def restore_job(
        self,
        row: Tuple[int, int, int, int, int, int, int],
        queries: Dict[int, Query],
    ) -> Optional[BackfillJob]:
        """Re-queue a checkpointed job; ``None`` if its query is gone."""
        qid, start, live_start, end, emitted, cap_hint, found = (
            int(v) for v in row
        )
        query = queries.get(qid)
        if query is None:
            return None
        with self._lock:
            job = BackfillJob(
                query=query,
                start=start,
                end=end,
                cap_hint=cap_hint,
                live_start=live_start,
                emitted_through=emitted,
                retro_found=found,
            )
            if job.emitted_through >= job.end:
                job.done = True
            else:
                job.pin_token = self.archive.pin(job.start, job.end)
            self.jobs.append(job)
            self._wake.notify_all()
        if self.async_mode and not job.done:
            self._ensure_thread()
        return job

    def cancel(self, qid: int) -> None:
        """Abandon any in-flight or queued jobs for ``qid``
        (unsubscribe during backfill). Completed jobs are cancelled
        too: their live-suppression bound must not outlive the
        subscription, or a later re-subscribe of the same qid would
        inherit a stale boundary."""
        with self._lock:
            for job in self.jobs:
                if job.qid == qid and not job.cancelled:
                    job.cancelled = True
                    if not job.done:
                        job.done = True
                        self._release_pin(job)

    # -- execution -----------------------------------------------------

    def pump(self, max_windows: Optional[int] = None) -> int:
        """Probe up to ``max_windows`` archived windows synchronously;
        returns windows probed (0 when no work is pending)."""
        budget = max_windows
        probed = 0
        while budget is None or probed < budget:
            step = self.slice_windows
            if budget is not None:
                step = min(step, budget - probed)
            advanced = self._step(step)
            if advanced == 0:
                break
            probed += advanced
        return probed

    def _step(self, max_windows: int) -> int:
        with self._lock:
            job = next(
                (job for job in self.jobs if not job.done), None
            )
            if job is None:
                return 0
            return self._probe_slice(job, max_windows)

    def _probe_slice(self, job: BackfillJob, max_windows: int) -> int:
        """Probe one bounded slice of ``job`` (lock held)."""
        if job._detector is None:
            job._detector = StreamingDetector(
                self.config,
                QuerySet([job.query], self.family),
                self.keyframes_per_second,
                registry=MetricsRegistry(timing_enabled=False),
                cap_hint=job.cap_hint,
            )
            job._cursor = job.start
        detector = job._detector
        planes_mode = (
            self.config.representation is Representation.BIT
            and not self.config.use_index
        )
        matrix = job.query.sketch.values[np.newaxis, :]
        cursor = job._cursor
        # Never advance past the archive watermark: the shadow stretch
        # of the job waits for the live stream to archive its windows.
        upto = min(
            job.end,
            cursor + max_windows,
            max(cursor, self.archive.next_index),
        )
        if upto <= cursor:
            return 0
        # Only matches whose candidate began before the subscription
        # barrier belong to the retro stream; later starts are the live
        # engine's (which the service leaves unsuppressed).
        boundary_frame = job.live_start * self.window_frames
        probed = 0
        emitted: List[Match] = []
        for block in self.archive.iter_blocks(cursor, upto):
            indices, starts, frames, values = block
            ge = lt = None
            if planes_mode:
                ge, lt = encode_planes_many(values, matrix)
            for row in range(indices.shape[0]):
                window = BasicWindow(
                    index=int(indices[row]),
                    start_frame=int(starts[row]),
                    num_frames=int(frames[row]),
                    cell_ids=_EMPTY_CELL_IDS,
                    sketch=Sketch._raw(
                        values[row], self.family.fingerprint
                    ),
                )
                planes = (
                    (ge[row], lt[row]) if planes_mode else None
                )
                matches = detector.process_window(window, planes=planes)
                probed += 1
                if window.index >= job.emitted_through:
                    emitted.extend(
                        match for match in matches
                        if match.start_frame < boundary_frame
                    )
        self.registry.inc("archive.backfill_probes", probed)
        job.probed += probed
        if emitted:
            emitted.sort(
                key=lambda m: (m.window_index, m.start_frame, m.qid)
            )
            self.emit(emitted)
            job.retro_found += len(emitted)
            self.registry.inc("archive.retro_matches", len(emitted))
        job._cursor = upto
        job.emitted_through = max(job.emitted_through, upto)
        if upto >= job.end:
            job.done = True
            job._detector = None
            self._release_pin(job)
        return upto - cursor

    def _release_pin(self, job: BackfillJob) -> None:
        if job.pin_token is not None:
            self.archive.unpin(job.pin_token)
            job.pin_token = None

    # -- thread management --------------------------------------------

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._stopped or (
                self._thread is not None and self._thread.is_alive()
            ):
                return
            self._thread = threading.Thread(
                target=self._run, name="backfill", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._stopped:
                    return
                job = next(
                    (job for job in self.jobs if not job.done), None
                )
                if job is None:
                    self._wake.wait(timeout=0.1)
                    continue
                if self._probe_slice(job, self.slice_windows) == 0:
                    # Shadow stretch waiting on the live stream to
                    # archive more windows — don't spin on the lock.
                    self._wake.wait(timeout=0.05)

    def finalize(self) -> None:
        """Truncate every job's horizon to the archive watermark: the
        stream has ended, so the shadow windows a job was waiting for
        will never arrive. Called by the service's final flush (after
        the tail window is archived); a following :meth:`drain` then
        completes."""
        with self._lock:
            for job in self.jobs:
                if job.done:
                    continue
                job.end = min(
                    job.end, max(job.start, self.archive.next_index)
                )
                if job.emitted_through >= job.end:
                    job.done = True
                    job._detector = None
                    self._release_pin(job)
            self._wake.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Finish every queued job; in async mode waits (up to
        ``timeout`` seconds), otherwise pumps inline. Returns whether
        the queue is fully drained."""
        if not self.async_mode or self._thread is None:
            self.pump()
            return not self.pending
        waited = 0.0
        step = 0.02
        while self.pending:
            if timeout is not None and waited >= timeout:
                return False
            time.sleep(step)
            waited += step
        return True

    def close(self) -> None:
        with self._lock:
            self._stopped = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- introspection / checkpoint -----------------------------------

    @property
    def pending(self) -> bool:
        with self._lock:
            return any(not job.done for job in self.jobs)

    def progress(self) -> Dict[int, Tuple[int, int, int]]:
        """qid → ``(total, done, retro_found)`` over that qid's jobs."""
        with self._lock:
            out: Dict[int, Tuple[int, int, int]] = {}
            for job in self.jobs:
                total, done, found = out.get(job.qid, (0, 0, 0))
                out[job.qid] = (
                    total + job.total_windows,
                    done + job.done_windows,
                    found + job.retro_found,
                )
            return out

    def suppress_bounds(self) -> Dict[int, int]:
        """qid → start-frame bound below which the live engine's
        matches are phantoms (candidates that predate the query's
        subscription, evaluated with empty pre-barrier signatures).
        The replay detector emits the true matches for those starts,
        so the service drops the live ones. Bounds persist after a job
        completes — inert once the spanning candidates expire, but
        closing the window where an in-flight live batch could race
        the job's completion — and die with :meth:`cancel`."""
        with self._lock:
            bounds: Dict[int, int] = {}
            for job in self.jobs:
                if job.cancelled or job.start >= job.live_start:
                    continue
                frame = job.live_start * self.window_frames
                bounds[job.qid] = max(bounds.get(job.qid, 0), frame)
            return bounds

    def checkpoint_rows(
        self,
    ) -> List[Tuple[int, int, int, int, int, int]]:
        """Unfinished jobs as ``repro.ckpt/4`` rows (lock held by the
        caller via :meth:`paused`)."""
        with self._lock:
            return [
                job.as_tuple() for job in self.jobs if not job.done
            ]

    def paused(self):
        """Context manager: hold the engine lock (quiesce for
        checkpointing — no slice can run while held)."""
        return self._lock
