"""The sketch archive: a bounded in-memory ring that spills to disk.

:class:`SketchArchive` retains, for every basic window the stream front
end emits, exactly the *query-independent* artefact the detection
engines need to re-evaluate that window later: its ``(K,)`` K-min-hash
sketch plus the window's absolute coordinates (index, start frame,
frame count). Windows accumulate in an in-memory ring; once a
contiguous run reaches ``segment_windows`` (or is closed by a stream
gap) it is **sealed** to the :class:`~repro.archive.store.SegmentStore`
as an immutable ``repro.arch/1`` file, keeping resident memory bounded
by one open segment regardless of stream length.

The packed window-vs-query bitplanes the front end also computes are
deliberately *not* archived: they are laid out against the currently
subscribed query matrix and are useless to a query that arrives later.
The :class:`~repro.archive.backfill.BackfillEngine` re-encodes planes
for its own query set from the archived sketches with the same
:func:`~repro.signature.bitsig.encode_planes_many` kernel — one call
per segment — so probing archived windows exercises bit-for-bit the
columnar path live windows take (see ``docs/archive.md``).

**Watermark.** ``next_index`` is the next basic-window index the
archive expects. :meth:`append` silently drops rows below it, which
makes re-feeding a stream after checkpoint resume idempotent: the
``repro.ckpt/4`` snapshot carries the watermark and the unsealed ring,
so a resumed service neither re-archives nor drops windows, and
:meth:`restore` reconciles the snapshot against whatever segments made
it to disk before the crash (disk may be *ahead* of the snapshot —
sealing is synchronous, checkpointing periodic).

**Retention.** Oldest sealed segments are dropped once any configured
bound is exceeded — ``retain_windows`` (total retained windows),
``retain_bytes`` (on-disk footprint) or ``retain_seconds`` (segment
age). Segments pinned by an in-flight backfill survive until unpinned.
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ArchiveError
from repro.obs.registry import MetricsRegistry
from repro.archive.store import SegmentStore

__all__ = ["SketchArchive"]

Block = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class SketchArchive:
    """Bounded, spillable archive of per-window K-min sketches.

    Parameters
    ----------
    family_fingerprint:
        ``(num_hashes, seed, prime)`` of the stream's hash family;
        recorded in every segment and checked by the backfill engine.
    num_hashes:
        Sketch width ``K`` (shapes empty payloads).
    directory:
        Segment directory. ``None`` keeps the archive memory-only: the
        ring itself is then the retained set and ``retain_windows``
        bounds it directly.
    segment_windows:
        Windows per sealed segment (and the resident-memory bound).
    retain_windows / retain_bytes / retain_seconds:
        Retention bounds; ``None`` disables that bound.
    registry:
        Service metrics registry for the ``archive.*`` series.
    """

    def __init__(
        self,
        family_fingerprint: Tuple[int, int, int],
        num_hashes: int,
        directory: Union[str, pathlib.Path, None] = None,
        segment_windows: int = 256,
        retain_windows: Optional[int] = None,
        retain_bytes: Optional[int] = None,
        retain_seconds: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_windows < 1:
            raise ArchiveError(
                f"segment_windows must be >= 1, got {segment_windows}"
            )
        for name, bound in (
            ("retain_windows", retain_windows),
            ("retain_bytes", retain_bytes),
            ("retain_seconds", retain_seconds),
        ):
            if bound is not None and bound <= 0:
                raise ArchiveError(f"{name} must be positive, got {bound}")
        self.family_fingerprint = tuple(
            int(v) for v in family_fingerprint
        )
        self.num_hashes = int(num_hashes)
        self.segment_windows = int(segment_windows)
        self.retain_windows = retain_windows
        self.retain_bytes = retain_bytes
        self.retain_seconds = retain_seconds
        self.registry = registry or MetricsRegistry(timing_enabled=False)
        self.store: Optional[SegmentStore] = (
            SegmentStore(directory) if directory is not None else None
        )
        self._indices: List[int] = []
        self._starts: List[int] = []
        self._frames: List[int] = []
        self._values: List[np.ndarray] = []
        self.next_index = 0
        self._pins: Dict[int, Tuple[int, int]] = {}
        self._next_pin = 0
        # The backfill engine reads and pins from its worker thread
        # while the live pipeline appends; one reentrant lock guards
        # every public entry point.
        self._lock = threading.RLock()
        for counter in (
            "archive.windows_archived",
            "archive.windows_deduped",
            "archive.windows_gapped",
            "archive.windows_dropped",
            "archive.windows_reconciled",
            "archive.segments_sealed",
            "archive.segments_compacted",
        ):
            self.registry.inc(counter, 0)
        if self.store is not None:
            self.store.recover()
            if self.store.segments:
                self.next_index = self.store.segments[-1].end_index
        self._publish_gauges()

    # -- introspection -------------------------------------------------

    @property
    def ring_windows(self) -> int:
        return len(self._indices)

    def windows_retained(self) -> int:
        with self._lock:
            sealed = self.store.windows_on_disk() if self.store else 0
            return sealed + len(self._indices)

    def bytes_on_disk(self) -> int:
        with self._lock:
            return self.store.bytes_on_disk() if self.store else 0

    def available(self) -> Tuple[int, int]:
        """``[lo, hi)`` — the retained index range (may contain holes
        from stream gaps or pruning; readers skip them)."""
        with self._lock:
            if self.store is not None and self.store.segments:
                lo = self.store.segments[0].first_index
            elif self._indices:
                lo = self._indices[0]
            else:
                lo = self.next_index
            return lo, self.next_index

    def fast_forward(self, next_index: int) -> None:
        """Advance the watermark to the live stream clock (archiving
        enabled mid-stream on a resumed service: the windows already
        streamed were never archived and are not gaps)."""
        with self._lock:
            if next_index > self.next_index:
                self.next_index = int(next_index)
                self._seal_ready()
                self._publish_gauges()

    # -- append path ---------------------------------------------------

    def append(
        self,
        indices: np.ndarray,
        starts: np.ndarray,
        frames: np.ndarray,
        sketch_values: np.ndarray,
    ) -> int:
        """Archive a batch of windows; returns how many were new.

        Rows below the watermark are deduplicated (checkpoint-resume
        re-feeds). Rows at or above it must be strictly ascending;
        jumps are stream gaps — counted, and the run before the gap is
        sealed so segments stay index-contiguous.
        """
        indices = np.asarray(indices, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        frames = np.asarray(frames, dtype=np.int64)
        sketch_values = np.asarray(sketch_values, dtype=np.int64)
        if indices.shape[0] == 0:
            return 0
        if sketch_values.shape != (indices.shape[0], self.num_hashes):
            raise ArchiveError(
                f"sketch block shape {sketch_values.shape} does not "
                f"match {indices.shape[0]} windows of K={self.num_hashes}"
            )
        with self._lock:
            fresh = indices >= self.next_index
            deduped = int(indices.shape[0] - np.count_nonzero(fresh))
            if deduped:
                self.registry.inc("archive.windows_deduped", deduped)
            new = 0
            for row in np.nonzero(fresh)[0]:
                index = int(indices[row])
                if index < self.next_index:
                    raise ArchiveError(
                        "window indices must be ascending within a batch"
                    )
                if index > self.next_index:
                    self.registry.inc(
                        "archive.windows_gapped", index - self.next_index
                    )
                self._indices.append(index)
                self._starts.append(int(starts[row]))
                self._frames.append(int(frames[row]))
                self._values.append(
                    np.asarray(sketch_values[row], dtype=np.int64).copy()
                )
                self.next_index = index + 1
                new += 1
            if new:
                self.registry.inc("archive.windows_archived", new)
                self._seal_ready()
                self.enforce_retention()
            return new

    def note_gap(self, num_windows: int) -> None:
        """Advance the watermark over windows the stream lost (lossy
        degradation policies); the open run seals at the hole."""
        if num_windows <= 0:
            return
        with self._lock:
            self.registry.inc("archive.windows_gapped", num_windows)
            self.next_index += int(num_windows)
            self._seal_ready()
            self._publish_gauges()

    def _head_run(self) -> int:
        """Length of the contiguous index run at the ring head."""
        run = 0
        for position, index in enumerate(self._indices):
            if index != self._indices[0] + position:
                break
            run += 1
        return run

    def _seal_ready(self) -> None:
        if self.store is None:
            return
        while self._indices:
            run = self._head_run()
            closed = (
                run < len(self._indices)  # a gap sits inside the ring
                or self._indices[run - 1] + 1 < self.next_index
            )
            if run >= self.segment_windows:
                take = self.segment_windows
            elif closed:
                take = run
            else:
                break
            self.store.seal(
                self._indices[0],
                np.asarray(self._starts[:take], dtype=np.int64),
                np.asarray(self._frames[:take], dtype=np.int64),
                np.stack(self._values[:take]),
                self.family_fingerprint,
            )
            self.registry.inc("archive.segments_sealed")
            del self._indices[:take]
            del self._starts[:take]
            del self._frames[:take]
            del self._values[:take]

    def seal_open_run(self) -> None:
        """Force the unsealed ring to disk (shutdown/testing hook)."""
        with self._lock:
            self._seal_open_run()

    def _seal_open_run(self) -> None:
        if self.store is None or not self._indices:
            return
        while self._indices:
            take = min(self._head_run(), self.segment_windows)
            self.store.seal(
                self._indices[0],
                np.asarray(self._starts[:take], dtype=np.int64),
                np.asarray(self._frames[:take], dtype=np.int64),
                np.stack(self._values[:take]),
                self.family_fingerprint,
            )
            self.registry.inc("archive.segments_sealed")
            del self._indices[:take]
            del self._starts[:take]
            del self._frames[:take]
            del self._values[:take]
        self._publish_gauges()

    # -- retention -----------------------------------------------------

    def pin(self, lo: int, hi: int) -> int:
        """Protect ``[lo, hi)`` from retention until unpinned."""
        with self._lock:
            token = self._next_pin
            self._next_pin += 1
            self._pins[token] = (int(lo), int(hi))
            return token

    def unpin(self, token: int) -> None:
        with self._lock:
            self._pins.pop(token, None)
            self.enforce_retention()

    def _pinned(self, lo: int, hi: int) -> bool:
        return any(
            pin_lo < hi and lo < pin_hi
            for pin_lo, pin_hi in self._pins.values()
        )

    def enforce_retention(self) -> int:
        """Drop oldest windows until every configured bound holds;
        returns windows dropped. Pinned segments stop the sweep."""
        with self._lock:
            dropped = 0
            if self.store is not None:
                dropped += self._enforce_disk()
            elif self.retain_windows is not None:
                over = len(self._indices) - self.retain_windows
                while over > 0:
                    index = self._indices[0]
                    if self._pinned(index, index + 1):
                        break
                    del self._indices[0]
                    del self._starts[0]
                    del self._frames[0]
                    del self._values[0]
                    dropped += 1
                    over -= 1
            if dropped:
                self.registry.inc("archive.windows_dropped", dropped)
            self._publish_gauges()
            return dropped

    def _enforce_disk(self) -> int:
        assert self.store is not None
        dropped = 0
        now = time.time()
        while self.store.segments:
            victim = self.store.segments[0]
            over = (
                self.retain_windows is not None
                and self.windows_retained() > self.retain_windows
            )
            over = over or (
                self.retain_bytes is not None
                and self.store.bytes_on_disk() > self.retain_bytes
            )
            over = over or (
                self.retain_seconds is not None
                and now - victim.sealed_at > self.retain_seconds
            )
            if not over:
                break
            if self._pinned(victim.first_index, victim.end_index):
                break
            self.store.remove(victim)
            dropped += victim.num_windows
        return dropped

    def compact(self) -> int:
        """Coalesce undersized adjacent segments; returns merges."""
        with self._lock:
            if self.store is None:
                return 0
            merged = self.store.compact(
                self.segment_windows, self.family_fingerprint
            )
            if merged:
                self.registry.inc("archive.segments_compacted", merged)
            self._publish_gauges()
            return merged

    # -- read path -----------------------------------------------------

    def iter_blocks(self, start: int, stop: int) -> List[Block]:
        """``(indices, starts, frames, sketch_values)`` blocks covering
        every retained window in ``[start, stop)``, ascending. Holes
        (gaps, pruned segments) are skipped silently — callers see
        exactly what is retained. Materialised under the lock so the
        live appender cannot mutate the ring mid-read."""
        with self._lock:
            blocks: List[Block] = []
            if self.store is not None:
                for info in self.store.segments:
                    if info.end_index <= start or info.first_index >= stop:
                        continue
                    seg_starts, seg_frames, seg_values = self.store.load(
                        info
                    )
                    indices = info.first_index + np.arange(
                        info.num_windows, dtype=np.int64
                    )
                    keep = (indices >= start) & (indices < stop)
                    if not keep.all():
                        indices = indices[keep]
                        seg_starts = seg_starts[keep]
                        seg_frames = seg_frames[keep]
                        seg_values = seg_values[keep]
                    if indices.shape[0]:
                        blocks.append(
                            (indices, seg_starts, seg_frames, seg_values)
                        )
            if self._indices:
                indices = np.asarray(self._indices, dtype=np.int64)
                keep = (indices >= start) & (indices < stop)
                rows = np.nonzero(keep)[0]
                if rows.shape[0]:
                    blocks.append(
                        (
                            indices[rows],
                            np.asarray(self._starts, dtype=np.int64)[rows],
                            np.asarray(self._frames, dtype=np.int64)[rows],
                            np.stack([self._values[row] for row in rows]),
                        )
                    )
            return blocks

    # -- checkpoint ----------------------------------------------------

    def state(
        self,
    ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(next_index, ring indices, starts, frames, sketches)``."""
        with self._lock:
            if self._indices:
                values = np.stack(self._values)
            else:
                values = np.empty((0, self.num_hashes), dtype=np.int64)
            return (
                self.next_index,
                np.asarray(self._indices, dtype=np.int64),
                np.asarray(self._starts, dtype=np.int64),
                np.asarray(self._frames, dtype=np.int64),
                values,
            )

    def restore(
        self,
        next_index: int,
        indices: np.ndarray,
        starts: np.ndarray,
        frames: np.ndarray,
        sketch_values: np.ndarray,
    ) -> None:
        """Reinstate a snapshot, reconciled against the recovered disk
        catalogue: segments sealed *after* the snapshot win over their
        ring copies, and the watermark never moves backwards."""
        with self._lock:
            disk_next = (
                self.store.segments[-1].end_index
                if self.store is not None and self.store.segments
                else 0
            )
            indices = np.asarray(indices, dtype=np.int64)
            starts = np.asarray(starts, dtype=np.int64)
            frames = np.asarray(frames, dtype=np.int64)
            sketch_values = np.asarray(sketch_values, dtype=np.int64)
            keep = indices >= disk_next
            reconciled = int(indices.shape[0] - np.count_nonzero(keep))
            if reconciled:
                self.registry.inc(
                    "archive.windows_reconciled", reconciled
                )
            self._indices = [int(v) for v in indices[keep]]
            self._starts = [int(v) for v in starts[keep]]
            self._frames = [int(v) for v in frames[keep]]
            self._values = [
                np.asarray(row, dtype=np.int64).copy()
                for row in sketch_values[keep]
            ]
            self.next_index = max(int(next_index), disk_next)
            if self._indices:
                self.next_index = max(
                    self.next_index, self._indices[-1] + 1
                )
            self._publish_gauges()

    # -- metrics -------------------------------------------------------

    def _publish_gauges(self) -> None:
        self.registry.set_gauge(
            "archive.windows_retained", float(self.windows_retained())
        )
        self.registry.set_gauge(
            "archive.bytes_on_disk", float(self.bytes_on_disk())
        )
        self.registry.set_gauge(
            "archive.ring_windows", float(len(self._indices))
        )
        self.registry.set_gauge(
            "archive.next_index", float(self.next_index)
        )
        if self.store is not None:
            self.registry.set_gauge(
                "archive.segments", float(len(self.store.segments))
            )
