"""Experiment parameter sets, including the paper's Table I defaults.

Three layers of configuration are distinguished:

* :class:`FingerprintConfig` — how a raw frame becomes a 1-D cell id
  (Section III-A: block grid, dimensionality ``d``, partition ``u``).
* :class:`DetectorConfig` — how the streaming engine runs (Section IV–V:
  number of hash functions ``K``, similarity threshold ``δ``, basic window
  ``w``, tempo-scaling bound ``λ``, combination order, representation,
  whether the Hash-Query index is used).
* :class:`ScaleProfile` — how paper-scale workloads (12-hour streams, 200
  queries) are shrunk to laptop scale while preserving every ratio the
  algorithms are sensitive to.

All classes are frozen dataclasses that validate eagerly on construction.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass

from repro.utils.validation import require, require_in_range, require_positive

__all__ = [
    "CombinationOrder",
    "DetectorConfig",
    "FingerprintConfig",
    "Representation",
    "ScaleProfile",
    "TABLE1_DEFAULTS",
]


class CombinationOrder(enum.Enum):
    """How basic-window sketches are combined into candidate sequences.

    ``SEQUENTIAL`` maintains every suffix length from one basic window to
    ``ceil(λL / w)`` windows (paper Section IV-A, "Sequential Order") —
    maximal accuracy, O(λL/w) combinations per arriving window.

    ``GEOMETRIC`` maintains only O(log) dyadic-length candidates using the
    cascade of Figure 2 — O(log(λL/w)) combinations per window at the cost
    of possible false negatives from skipped alignments.
    """

    SEQUENTIAL = "sequential"
    GEOMETRIC = "geometric"


class Representation(enum.Enum):
    """How candidate/query comparisons are materialised.

    ``SKETCH`` stores per-candidate K-vectors of min-hash values and
    compares them entry-wise (Section IV). ``BIT`` stores a 2K-bit
    relationship signature per (candidate, query) pair and combines them
    with bitwise OR (Section V-A) — cheaper per operation and prunable via
    Lemma 2.
    """

    SKETCH = "sketch"
    BIT = "bit"


@dataclass(frozen=True)
class FingerprintConfig:
    """Frame fingerprint parameters (paper Section III-A).

    Parameters
    ----------
    block_rows, block_cols:
        The key frame is spatially partitioned into ``block_rows x
        block_cols`` equal blocks (the paper uses 3x3, i.e. ``D = 9``).
    d:
        Number of coefficients selected from the ``D`` block averages
        (Table I: 3–7, default 5).
    u:
        Grid partition granularity per dimension (Table I: 2–7, default 4).
        The combined grid-pyramid partition yields ``2 * d * u**d`` cells.
    """

    block_rows: int = 3
    block_cols: int = 3
    d: int = 5
    u: int = 4

    def __post_init__(self) -> None:
        require_positive("block_rows", self.block_rows)
        require_positive("block_cols", self.block_cols)
        require_positive("d", self.d)
        require_positive("u", self.u)
        require(
            self.d <= self.block_rows * self.block_cols,
            f"d={self.d} cannot exceed D={self.block_rows * self.block_cols} blocks",
        )

    @property
    def num_blocks(self) -> int:
        """``D``, the number of spatial blocks per frame."""
        return self.block_rows * self.block_cols

    @property
    def num_cells(self) -> int:
        """Total cells of the grid-pyramid partition: ``2 d u^d``."""
        return 2 * self.d * self.u**self.d


@dataclass(frozen=True)
class DetectorConfig:
    """Streaming detector parameters (paper Sections IV–V and Table I).

    Parameters
    ----------
    num_hashes:
        ``K``, the number of min-hash functions (Table I: 100–3000,
        default 800).
    threshold:
        ``δ``, the similarity threshold of Definition 1 (Table I: 0.5–0.9,
        default 0.7).
    window_seconds:
        ``w``, the basic-window length in stream seconds (Table I: 5–20 s,
        default 5 s).
    tempo_scale:
        ``λ``, the upper bound on candidate length relative to the query
        length; [28] argues the optimal value is at most 2.
    order:
        Sequential or Geometric combination order.
    representation:
        Sketch vectors or bit-vector signatures.
    use_index:
        Whether the Hash-Query query index of Section V-C is used to find
        relevant queries (otherwise every query is compared).
    prune:
        Whether Lemma-2 pruning of hopeless candidates is applied (only
        meaningful for the BIT representation; ignored for SKETCH).
    vectorized:
        Whether the engines run on the columnar (structure-of-arrays)
        candidate store with batched numpy kernels. ``False`` selects the
        scalar reference implementation — same matches, same counters,
        one candidate/query at a time (see ``docs/performance.md``).
    """

    num_hashes: int = 800
    threshold: float = 0.7
    window_seconds: float = 5.0
    tempo_scale: float = 2.0
    order: CombinationOrder = CombinationOrder.SEQUENTIAL
    representation: Representation = Representation.BIT
    use_index: bool = True
    prune: bool = True
    vectorized: bool = True

    def __post_init__(self) -> None:
        require_positive("num_hashes", self.num_hashes)
        require_in_range("threshold", self.threshold, 0.0, 1.0)
        require_positive("window_seconds", self.window_seconds)
        require(
            self.tempo_scale >= 1.0,
            f"tempo_scale (λ) must be >= 1, got {self.tempo_scale}",
        )

    def replace(self, **changes: object) -> "DetectorConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def max_windows_for(self, query_seconds: float) -> int:
        """``ceil(λ L / w)`` — the candidate-length cap for one query."""
        require_positive("query_seconds", query_seconds)
        return max(1, math.ceil(self.tempo_scale * query_seconds / self.window_seconds))


@dataclass(frozen=True)
class ScaleProfile:
    """Mapping from paper-scale workloads to laptop-scale ones.

    The paper's evaluation uses a 12-hour doctored stream, 200 query clips
    of 30–300 s, NTSC key-frame cadence, and K = 800. Reproducing those
    absolute sizes in pure Python is pointless (we compare shapes, not 2008
    C++ milliseconds), so benchmarks run a linearly shrunk profile. The
    ratios the algorithms care about — clips per stream hour, λ, w, δ and
    the query-length range — are preserved.

    Parameters
    ----------
    keyframes_per_second:
        I-frame cadence of the feature stream. Real MPEG at 29.97 fps with
        a GOP of 12–15 yields 2–2.5 I-frames/s; default 2.0.
    stream_seconds:
        Length of the doctored base stream.
    num_queries:
        Number of library clips inserted and monitored.
    query_min_seconds, query_max_seconds:
        Range of clip lengths (paper: 30–300 s).
    """

    keyframes_per_second: float = 2.0
    stream_seconds: float = 1800.0
    num_queries: int = 20
    query_min_seconds: float = 15.0
    query_max_seconds: float = 60.0

    def __post_init__(self) -> None:
        require_positive("keyframes_per_second", self.keyframes_per_second)
        require_positive("stream_seconds", self.stream_seconds)
        require_positive("num_queries", self.num_queries)
        require_positive("query_min_seconds", self.query_min_seconds)
        require(
            self.query_max_seconds >= self.query_min_seconds,
            "query_max_seconds must be >= query_min_seconds",
        )

    def seconds_to_keyframes(self, seconds: float) -> int:
        """Convert stream seconds into a whole number of key frames."""
        return max(1, round(seconds * self.keyframes_per_second))

    def replace(self, **changes: object) -> "ScaleProfile":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_scale(cls) -> "ScaleProfile":
        """The profile actually used in the paper (12 h, 200 queries)."""
        return cls(
            keyframes_per_second=2.5,
            stream_seconds=12 * 3600.0,
            num_queries=200,
            query_min_seconds=30.0,
            query_max_seconds=300.0,
        )

    @classmethod
    def smoke_scale(cls) -> "ScaleProfile":
        """A tiny profile for unit tests (seconds, a handful of queries)."""
        return cls(
            keyframes_per_second=2.0,
            stream_seconds=240.0,
            num_queries=4,
            query_min_seconds=10.0,
            query_max_seconds=20.0,
        )


#: The default parameter values of the paper's Table I.
TABLE1_DEFAULTS = {
    "num_hashes": 800,
    "d": 5,
    "u": 4,
    "num_queries": 200,
    "threshold": 0.7,
    "window_seconds": 5.0,
}
