"""Checkpointing a sharded detection service to disk.

A service snapshot must let a *new process* — with no memory of the old
one — rebuild the exact same service and continue the stream where it
stopped, losing zero matches. One ``.npz`` file therefore carries
everything: a format tag, the detector configuration (checked on
restore, like :mod:`repro.persistence` does for query-set files), the
stream position (chunks ingested), each worker's query subset and
flattened detector state (from :mod:`repro.serve.state`), and the
matches the collector has already merged — so the resumed service's
cumulative match stream equals an uninterrupted run's.

Writes are atomic and durable: the payload goes through
:func:`repro.utils.atomic.atomic_savez` (fsync + tmp-rename), so a
crash mid-write leaves the previous checkpoint intact rather than a
truncated archive.

File naming: :class:`CheckpointManager` owns a directory and names each
snapshot ``ckpt-<chunks_ingested>.npz``; :meth:`CheckpointManager.latest`
returns the newest by stream position. A bare path also works for
one-shot save/load. With ``keep_last=N`` the manager prunes older
snapshots after each save, but never the newest *loadable* one — if
every keeper candidate is corrupt, older snapshots survive.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.errors import ServeError
from repro.persistence import (
    PersistenceError,
    detector_config_from_mapping,
    detector_config_payload,
    query_set_from_mapping,
    query_set_payload,
    require_config_match,
)
from repro.utils.atomic import atomic_savez

__all__ = [
    "CHECKPOINT_FORMAT",
    "COMPATIBLE_FORMATS",
    "CheckpointManager",
    "ServiceCheckpoint",
]

#: Format tag embedded in every checkpoint archive. Bump the suffix when
#: the layout changes incompatibly; loading rejects unknown tags.
#: ``/2`` added the lifecycle ``epoch`` field (and per-worker epochs
#: inside the worker states) for the query-admission control plane.
#: ``/3`` added the sketch-once front end's stream state (``frontend_*``
#: fields) — under sketch-once serving the undigested buffer lives in
#: the service, not in the workers' monitors, so an older loader would
#: silently drop those frames.
#: ``/4`` added the sketch-archive watermark and unsealed ring
#: (``archive_*``), the retro match stream (``retro_*``) and in-flight
#: backfill jobs (``backfill_*``) — without them a kill/resume would
#: re-archive already-sealed windows or silently drop a backfill.
CHECKPOINT_FORMAT = "repro.ckpt/4"

#: Older tags :meth:`CheckpointManager.load` still reads. ``/1``
#: archives predate query churn: they load with ``epoch`` 0. ``/2``
#: archives predate the sketch-once front end: they load without
#: front-end state and the service migrates worker 0's monitor buffer.
#: ``/3`` archives predate the sketch archive: they load with no
#: archive state (watermark ``-1``) and empty retro/backfill streams.
COMPATIBLE_FORMATS = (
    "repro.ckpt/1",
    "repro.ckpt/2",
    "repro.ckpt/3",
    CHECKPOINT_FORMAT,
)

_CKPT_NAME = re.compile(r"^ckpt-(\d+)\.npz$")


@dataclass
class ServiceCheckpoint:
    """Everything needed to rebuild a service mid-stream.

    Attributes
    ----------
    config:
        The detector configuration every worker runs.
    keyframes_per_second:
        Stream cadence the workers were constructed with.
    chunks_ingested:
        How many chunks the service had fully processed; the resuming
        caller re-feeds the stream from this offset.
    cap_hint:
        The global candidate-expiry floor in force at snapshot time.
    strategy:
        The shard-planning strategy (recorded for bookkeeping; the
        restored service reuses the recorded per-worker query subsets
        directly rather than re-planning).
    worker_queries:
        Per-worker query subsets, in worker order.
    worker_states:
        Per-worker flattened detector state
        (:func:`repro.serve.state.worker_state` dicts), in worker
        order. Each dict carries that shard's lifecycle ``epoch``.
    matches:
        The merged match stream collected before the snapshot.
    epoch:
        The service-level lifecycle epoch: how many subscribe /
        unsubscribe barriers the service had committed. A resumed
        service continues numbering from here, so a scripted churn
        schedule can skip the ops the checkpoint already contains.
    frontend_pending:
        Sketch-once mode only: the service front end's buffered cell
        ids (frames not yet forming a whole basic window). ``None``
        when the snapshot was taken in self-sketching mode (the same
        frames then live in each worker's monitor buffer instead).
    frontend_flushed:
        Whether the front end had flushed the stream.
    frontend_windows / frontend_frames:
        The front end's absolute stream clock (whole windows / frames
        emitted). ``-1`` marks "no front-end state recorded" — the
        sentinel legacy archives load with.
    retro_matches:
        The retrospective (backfill) match stream collected before the
        snapshot, kept separate from the live stream so neither resume
        path can interleave them.
    archive_next:
        The sketch archive's watermark: the next basic-window index it
        expects. ``-1`` marks "no archive state recorded" (archiving
        off, or a pre-``/4`` snapshot).
    archive_ring_indices / archive_ring_starts / archive_ring_frames /
    archive_ring_sketches:
        The archive's unsealed in-memory tail (windows not yet in a
        disk segment) — without them a crash would lose the ring.
    archive_tap_pending / archive_tap_flushed / archive_tap_frames:
        Legacy self-sketching mode only: the service-side archive tap's
        buffered cell ids, flush flag and frame clock (in sketch-once
        mode the front end *is* the tap and ``frontend_*`` covers it).
    backfill_jobs:
        In-flight/queued backfill jobs as ``(qid, start, live_start,
        end, emitted_through, cap_hint, retro_found)`` tuples. A resumed service
        re-probes each job from ``start`` (deterministic) but
        suppresses emission below ``emitted_through``, so no retro
        match is lost or doubled; ``live_start`` restores the job's
        subscription barrier (retro/live partition and the live-phantom
        suppression bound).
    """

    config: DetectorConfig
    keyframes_per_second: float
    chunks_ingested: int
    cap_hint: int
    strategy: str
    worker_queries: List[QuerySet]
    worker_states: List[Dict[str, np.ndarray]]
    matches: List[Match]
    epoch: int = 0
    frontend_pending: Optional[np.ndarray] = None
    frontend_flushed: bool = False
    frontend_windows: int = -1
    frontend_frames: int = -1
    retro_matches: List[Match] = field(default_factory=list)
    archive_next: int = -1
    archive_ring_indices: Optional[np.ndarray] = None
    archive_ring_starts: Optional[np.ndarray] = None
    archive_ring_frames: Optional[np.ndarray] = None
    archive_ring_sketches: Optional[np.ndarray] = None
    archive_tap_pending: Optional[np.ndarray] = None
    archive_tap_flushed: bool = False
    archive_tap_frames: int = -1
    backfill_jobs: List[Tuple[int, int, int, int, int, int, int]] = field(
        default_factory=list
    )

    @property
    def num_workers(self) -> int:
        return len(self.worker_states)

    @property
    def has_frontend(self) -> bool:
        """Whether the snapshot carries sketch-once front-end state."""
        return self.frontend_frames >= 0

    @property
    def has_archive(self) -> bool:
        """Whether the snapshot carries sketch-archive state."""
        return self.archive_next >= 0

    def worker_epochs(self) -> List[int]:
        """Per-shard lifecycle epochs recorded in the worker states."""
        return [
            int(state["epoch"][0]) if "epoch" in state else 0
            for state in self.worker_states
        ]


def _int_array(value: Optional[np.ndarray]) -> np.ndarray:
    return (
        np.empty(0, dtype=np.int64)
        if value is None
        else np.asarray(value, dtype=np.int64)
    )


def _matches_payload(
    matches: List[Match], prefix: str = "matches_"
) -> Dict[str, np.ndarray]:
    return {
        f"{prefix}qid": np.asarray([m.qid for m in matches], dtype=np.int64),
        f"{prefix}window": np.asarray(
            [m.window_index for m in matches], dtype=np.int64
        ),
        f"{prefix}start": np.asarray(
            [m.start_frame for m in matches], dtype=np.int64
        ),
        f"{prefix}end": np.asarray(
            [m.end_frame for m in matches], dtype=np.int64
        ),
        f"{prefix}similarity": np.asarray(
            [m.similarity for m in matches], dtype=np.float64
        ),
    }


def _matches_from_mapping(mapping, prefix: str = "matches_") -> List[Match]:
    return [
        Match(
            qid=int(qid),
            window_index=int(window),
            start_frame=int(start),
            end_frame=int(end),
            similarity=float(similarity),
        )
        for qid, window, start, end, similarity in zip(
            mapping[f"{prefix}qid"],
            mapping[f"{prefix}window"],
            mapping[f"{prefix}start"],
            mapping[f"{prefix}end"],
            mapping[f"{prefix}similarity"],
        )
    ]


class CheckpointManager:
    """Saves and restores :class:`ServiceCheckpoint` archives.

    Parameters
    ----------
    directory:
        Where snapshots live. Created on first save if missing.
    keep_last:
        Retention policy: after each managed save, keep only the ``N``
        newest snapshots (by stream position) and delete the rest —
        but never the newest *loadable* one: before deleting anything
        the manager verifies at least one keeper actually loads, so a
        corrupt newest snapshot cannot orphan the directory. ``None``
        (the default) keeps everything, the pre-policy behaviour.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        keep_last: Optional[int] = None,
    ) -> None:
        if keep_last is not None and keep_last < 1:
            raise ServeError(
                f"keep_last must be >= 1 when set, got {keep_last}"
            )
        self.directory = pathlib.Path(directory)
        self.keep_last = keep_last

    # -- paths ---------------------------------------------------------

    def path_for(self, chunks_ingested: int) -> pathlib.Path:
        """The canonical file name for a snapshot at a stream position."""
        return self.directory / f"ckpt-{int(chunks_ingested):010d}.npz"

    def snapshots(self) -> List[pathlib.Path]:
        """Every managed snapshot, oldest stream position first."""
        if not self.directory.is_dir():
            return []
        found: List[Tuple[int, pathlib.Path]] = []
        for entry in self.directory.iterdir():
            parsed = _CKPT_NAME.match(entry.name)
            if parsed:
                found.append((int(parsed.group(1)), entry))
        return [path for _, path in sorted(found)]

    def latest(self) -> Optional[pathlib.Path]:
        """The snapshot with the highest stream position, if any."""
        snapshots = self.snapshots()
        return snapshots[-1] if snapshots else None

    # -- retention -----------------------------------------------------

    def prune(self) -> List[pathlib.Path]:
        """Apply the ``keep_last`` policy; returns the paths deleted.

        The newest loadable snapshot always survives: deletion only
        proceeds once at least one of the keepers (checked newest
        first) loads cleanly. If every keeper is corrupt, nothing is
        deleted — the older snapshots are then the only recoverable
        state and the next :meth:`load` walk can still reach them.
        """
        if self.keep_last is None:
            return []
        snapshots = self.snapshots()
        victims = snapshots[: -self.keep_last]
        if not victims:
            return []
        keepers = snapshots[-self.keep_last:]
        if not any(self._loadable(path) for path in reversed(keepers)):
            return []
        deleted: List[pathlib.Path] = []
        for path in victims:
            try:
                path.unlink()
            except OSError:
                continue
            deleted.append(path)
        return deleted

    def _loadable(self, path: pathlib.Path) -> bool:
        try:
            self.load(path)
        except (PersistenceError, ServeError):
            return False
        return True

    # -- save ----------------------------------------------------------

    def save(
        self,
        checkpoint: ServiceCheckpoint,
        path: Union[str, pathlib.Path, None] = None,
    ) -> pathlib.Path:
        """Atomically write ``checkpoint``; returns the final path.

        Managed saves (``path`` omitted) also apply the ``keep_last``
        retention policy after the new snapshot lands.
        """
        managed = path is None
        if path is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.path_for(checkpoint.chunks_ingested)
        path = pathlib.Path(path)
        fmt = np.empty(1, dtype=object)
        fmt[0] = CHECKPOINT_FORMAT
        payload: Dict[str, np.ndarray] = {
            "format": fmt,
            "num_workers": np.asarray([checkpoint.num_workers]),
            "chunks_ingested": np.asarray([checkpoint.chunks_ingested]),
            "cap_hint": np.asarray([checkpoint.cap_hint]),
            "epoch": np.asarray([checkpoint.epoch]),
            "keyframes_per_second": np.asarray(
                [checkpoint.keyframes_per_second], dtype=np.float64
            ),
            "strategy": np.asarray([checkpoint.strategy], dtype=object),
            "frontend_pending": (
                np.empty(0, dtype=np.int64)
                if checkpoint.frontend_pending is None
                else np.asarray(checkpoint.frontend_pending, dtype=np.int64)
            ),
            "frontend_flushed": np.asarray(
                [int(checkpoint.frontend_flushed)]
            ),
            "frontend_windows": np.asarray([checkpoint.frontend_windows]),
            "frontend_frames": np.asarray([checkpoint.frontend_frames]),
            "archive_next": np.asarray([checkpoint.archive_next]),
            "archive_ring_indices": _int_array(
                checkpoint.archive_ring_indices
            ),
            "archive_ring_starts": _int_array(
                checkpoint.archive_ring_starts
            ),
            "archive_ring_frames": _int_array(
                checkpoint.archive_ring_frames
            ),
            "archive_ring_sketches": (
                np.empty((0, 0), dtype=np.int64)
                if checkpoint.archive_ring_sketches is None
                else np.asarray(
                    checkpoint.archive_ring_sketches, dtype=np.int64
                )
            ),
            "archive_tap_pending": _int_array(
                checkpoint.archive_tap_pending
            ),
            "archive_tap_flushed": np.asarray(
                [int(checkpoint.archive_tap_flushed)]
            ),
            "archive_tap_frames": np.asarray(
                [checkpoint.archive_tap_frames]
            ),
            "backfill_jobs": np.asarray(
                checkpoint.backfill_jobs, dtype=np.int64
            ).reshape(len(checkpoint.backfill_jobs), 7),
            **detector_config_payload(checkpoint.config),
            **_matches_payload(checkpoint.matches),
            **_matches_payload(checkpoint.retro_matches, prefix="retro_"),
        }
        if len(checkpoint.worker_queries) != checkpoint.num_workers:
            raise ServeError(
                "checkpoint has "
                f"{len(checkpoint.worker_queries)} query subsets for "
                f"{checkpoint.num_workers} worker states"
            )
        for index, (queries, state) in enumerate(
            zip(checkpoint.worker_queries, checkpoint.worker_states)
        ):
            payload.update(query_set_payload(queries, prefix=f"w{index}_qs_"))
            for key, value in state.items():
                payload[f"w{index}_{key}"] = value
        atomic_savez(path, payload)
        if managed:
            self.prune()
        return path

    # -- load ----------------------------------------------------------

    def load(
        self,
        path: Union[str, pathlib.Path, None] = None,
        expected_config: Optional[DetectorConfig] = None,
    ) -> ServiceCheckpoint:
        """Read a snapshot (the latest one when ``path`` is omitted).

        Raises
        ------
        PersistenceError
            If no snapshot exists, the archive is unreadable or carries
            an unknown format tag, or ``expected_config`` differs from
            the recorded configuration (every differing field listed).
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise PersistenceError(
                    f"no checkpoint found in {self.directory}"
                )
        path = pathlib.Path(path)
        if not path.exists():
            raise PersistenceError(f"no checkpoint file at {path}")
        try:
            archive = np.load(path, allow_pickle=True)
        except Exception as error:  # zipfile/format errors vary by numpy
            raise PersistenceError(
                f"cannot read checkpoint file {path}: {error}"
            )
        try:
            fmt = str(archive["format"][0])
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint file {path} is missing field {error}"
            )
        if fmt not in COMPATIBLE_FORMATS:
            raise PersistenceError(
                f"checkpoint file {path} has format {fmt!r}; this build "
                f"reads {COMPATIBLE_FORMATS}"
            )
        try:
            config = detector_config_from_mapping(archive)
            if expected_config is not None:
                require_config_match(
                    config, expected_config, source=f"checkpoint {path}"
                )
            num_workers = int(archive["num_workers"][0])
            # Archives written by older builds carry a spurious
            # "allow_pickle" member (a save-side kwarg bug); it is not
            # part of the payload and must never reach a state dict.
            member_names = [
                name for name in archive.files if name != "allow_pickle"
            ]
            worker_queries = []
            worker_states: List[Dict[str, np.ndarray]] = []
            for index in range(num_workers):
                worker_queries.append(
                    query_set_from_mapping(
                        archive,
                        prefix=f"w{index}_qs_",
                        source=f"checkpoint {path}",
                    )
                )
                prefix = f"w{index}_"
                skip = f"w{index}_qs_"
                worker_states.append(
                    {
                        key[len(prefix):]: archive[key]
                        for key in member_names
                        if key.startswith(prefix)
                        and not key.startswith(skip)
                    }
                )
            has_frontend = "frontend_frames" in member_names
            frontend_frames = (
                int(archive["frontend_frames"][0]) if has_frontend else -1
            )
            has_archive_state = "archive_next" in member_names
            archive_next = (
                int(archive["archive_next"][0]) if has_archive_state else -1
            )
            if has_archive_state and archive_next >= 0:
                ring_indices = np.asarray(
                    archive["archive_ring_indices"], dtype=np.int64
                )
                ring_starts = np.asarray(
                    archive["archive_ring_starts"], dtype=np.int64
                )
                ring_frames = np.asarray(
                    archive["archive_ring_frames"], dtype=np.int64
                )
                ring_sketches = np.asarray(
                    archive["archive_ring_sketches"], dtype=np.int64
                )
            else:
                ring_indices = ring_starts = ring_frames = None
                ring_sketches = None
            tap_frames = (
                int(archive["archive_tap_frames"][0])
                if has_archive_state
                else -1
            )
            backfill_jobs: List[Tuple[int, int, int, int, int, int, int]] = []
            if "backfill_jobs" in member_names:
                for row in np.asarray(
                    archive["backfill_jobs"], dtype=np.int64
                ).reshape(-1, 7):
                    backfill_jobs.append(tuple(int(v) for v in row))
            checkpoint = ServiceCheckpoint(
                config=config,
                keyframes_per_second=float(
                    archive["keyframes_per_second"][0]
                ),
                chunks_ingested=int(archive["chunks_ingested"][0]),
                cap_hint=int(archive["cap_hint"][0]),
                strategy=str(archive["strategy"][0]),
                worker_queries=worker_queries,
                worker_states=worker_states,
                matches=_matches_from_mapping(archive),
                epoch=(
                    int(archive["epoch"][0]) if "epoch" in archive.files else 0
                ),
                frontend_pending=(
                    np.asarray(archive["frontend_pending"], dtype=np.int64)
                    if frontend_frames >= 0
                    else None
                ),
                frontend_flushed=(
                    bool(int(archive["frontend_flushed"][0]))
                    if has_frontend
                    else False
                ),
                frontend_windows=(
                    int(archive["frontend_windows"][0])
                    if has_frontend
                    else -1
                ),
                frontend_frames=frontend_frames,
                retro_matches=(
                    _matches_from_mapping(archive, prefix="retro_")
                    if "retro_qid" in member_names
                    else []
                ),
                archive_next=archive_next,
                archive_ring_indices=ring_indices,
                archive_ring_starts=ring_starts,
                archive_ring_frames=ring_frames,
                archive_ring_sketches=ring_sketches,
                archive_tap_pending=(
                    np.asarray(
                        archive["archive_tap_pending"], dtype=np.int64
                    )
                    if has_archive_state and tap_frames >= 0
                    else None
                ),
                archive_tap_flushed=(
                    bool(int(archive["archive_tap_flushed"][0]))
                    if has_archive_state
                    else False
                ),
                archive_tap_frames=tap_frames,
                backfill_jobs=backfill_jobs,
            )
        except PersistenceError:
            raise
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint file {path} is missing field {error}"
            )
        return checkpoint
