"""Checkpointing a sharded detection service to disk.

A service snapshot must let a *new process* — with no memory of the old
one — rebuild the exact same service and continue the stream where it
stopped, losing zero matches. One ``.npz`` file therefore carries
everything: a format tag, the detector configuration (checked on
restore, like :mod:`repro.persistence` does for query-set files), the
stream position (chunks ingested), each worker's query subset and
flattened detector state (from :mod:`repro.serve.state`), and the
matches the collector has already merged — so the resumed service's
cumulative match stream equals an uninterrupted run's.

Writes are atomic: the payload is written to a temporary sibling and
``os.replace``-d into place, so a crash mid-write leaves the previous
checkpoint intact rather than a truncated archive.

File naming: :class:`CheckpointManager` owns a directory and names each
snapshot ``ckpt-<chunks_ingested>.npz``; :meth:`CheckpointManager.latest`
returns the newest by stream position. A bare path also works for
one-shot save/load.
"""

from __future__ import annotations

import os
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.config import DetectorConfig
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.errors import ServeError
from repro.persistence import (
    PersistenceError,
    detector_config_from_mapping,
    detector_config_payload,
    query_set_from_mapping,
    query_set_payload,
    require_config_match,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "COMPATIBLE_FORMATS",
    "CheckpointManager",
    "ServiceCheckpoint",
]

#: Format tag embedded in every checkpoint archive. Bump the suffix when
#: the layout changes incompatibly; loading rejects unknown tags.
#: ``/2`` added the lifecycle ``epoch`` field (and per-worker epochs
#: inside the worker states) for the query-admission control plane.
#: ``/3`` added the sketch-once front end's stream state (``frontend_*``
#: fields) — under sketch-once serving the undigested buffer lives in
#: the service, not in the workers' monitors, so an older loader would
#: silently drop those frames.
CHECKPOINT_FORMAT = "repro.ckpt/3"

#: Older tags :meth:`CheckpointManager.load` still reads. ``/1``
#: archives predate query churn: they load with ``epoch`` 0. ``/2``
#: archives predate the sketch-once front end: they load without
#: front-end state and the service migrates worker 0's monitor buffer.
COMPATIBLE_FORMATS = ("repro.ckpt/1", "repro.ckpt/2", CHECKPOINT_FORMAT)

_CKPT_NAME = re.compile(r"^ckpt-(\d+)\.npz$")


@dataclass
class ServiceCheckpoint:
    """Everything needed to rebuild a service mid-stream.

    Attributes
    ----------
    config:
        The detector configuration every worker runs.
    keyframes_per_second:
        Stream cadence the workers were constructed with.
    chunks_ingested:
        How many chunks the service had fully processed; the resuming
        caller re-feeds the stream from this offset.
    cap_hint:
        The global candidate-expiry floor in force at snapshot time.
    strategy:
        The shard-planning strategy (recorded for bookkeeping; the
        restored service reuses the recorded per-worker query subsets
        directly rather than re-planning).
    worker_queries:
        Per-worker query subsets, in worker order.
    worker_states:
        Per-worker flattened detector state
        (:func:`repro.serve.state.worker_state` dicts), in worker
        order. Each dict carries that shard's lifecycle ``epoch``.
    matches:
        The merged match stream collected before the snapshot.
    epoch:
        The service-level lifecycle epoch: how many subscribe /
        unsubscribe barriers the service had committed. A resumed
        service continues numbering from here, so a scripted churn
        schedule can skip the ops the checkpoint already contains.
    frontend_pending:
        Sketch-once mode only: the service front end's buffered cell
        ids (frames not yet forming a whole basic window). ``None``
        when the snapshot was taken in self-sketching mode (the same
        frames then live in each worker's monitor buffer instead).
    frontend_flushed:
        Whether the front end had flushed the stream.
    frontend_windows / frontend_frames:
        The front end's absolute stream clock (whole windows / frames
        emitted). ``-1`` marks "no front-end state recorded" — the
        sentinel legacy archives load with.
    """

    config: DetectorConfig
    keyframes_per_second: float
    chunks_ingested: int
    cap_hint: int
    strategy: str
    worker_queries: List[QuerySet]
    worker_states: List[Dict[str, np.ndarray]]
    matches: List[Match]
    epoch: int = 0
    frontend_pending: Optional[np.ndarray] = None
    frontend_flushed: bool = False
    frontend_windows: int = -1
    frontend_frames: int = -1

    @property
    def num_workers(self) -> int:
        return len(self.worker_states)

    @property
    def has_frontend(self) -> bool:
        """Whether the snapshot carries sketch-once front-end state."""
        return self.frontend_frames >= 0

    def worker_epochs(self) -> List[int]:
        """Per-shard lifecycle epochs recorded in the worker states."""
        return [
            int(state["epoch"][0]) if "epoch" in state else 0
            for state in self.worker_states
        ]


def _matches_payload(matches: List[Match]) -> Dict[str, np.ndarray]:
    return {
        "matches_qid": np.asarray([m.qid for m in matches], dtype=np.int64),
        "matches_window": np.asarray(
            [m.window_index for m in matches], dtype=np.int64
        ),
        "matches_start": np.asarray(
            [m.start_frame for m in matches], dtype=np.int64
        ),
        "matches_end": np.asarray(
            [m.end_frame for m in matches], dtype=np.int64
        ),
        "matches_similarity": np.asarray(
            [m.similarity for m in matches], dtype=np.float64
        ),
    }


def _matches_from_mapping(mapping) -> List[Match]:
    return [
        Match(
            qid=int(qid),
            window_index=int(window),
            start_frame=int(start),
            end_frame=int(end),
            similarity=float(similarity),
        )
        for qid, window, start, end, similarity in zip(
            mapping["matches_qid"],
            mapping["matches_window"],
            mapping["matches_start"],
            mapping["matches_end"],
            mapping["matches_similarity"],
        )
    ]


class CheckpointManager:
    """Saves and restores :class:`ServiceCheckpoint` archives.

    Parameters
    ----------
    directory:
        Where snapshots live. Created on first save if missing.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)

    # -- paths ---------------------------------------------------------

    def path_for(self, chunks_ingested: int) -> pathlib.Path:
        """The canonical file name for a snapshot at a stream position."""
        return self.directory / f"ckpt-{int(chunks_ingested):010d}.npz"

    def latest(self) -> Optional[pathlib.Path]:
        """The snapshot with the highest stream position, if any."""
        if not self.directory.is_dir():
            return None
        best: Optional[pathlib.Path] = None
        best_position = -1
        for entry in self.directory.iterdir():
            parsed = _CKPT_NAME.match(entry.name)
            if parsed and int(parsed.group(1)) > best_position:
                best_position = int(parsed.group(1))
                best = entry
        return best

    # -- save ----------------------------------------------------------

    def save(
        self,
        checkpoint: ServiceCheckpoint,
        path: Union[str, pathlib.Path, None] = None,
    ) -> pathlib.Path:
        """Atomically write ``checkpoint``; returns the final path."""
        if path is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.path_for(checkpoint.chunks_ingested)
        path = pathlib.Path(path)
        fmt = np.empty(1, dtype=object)
        fmt[0] = CHECKPOINT_FORMAT
        payload: Dict[str, np.ndarray] = {
            "format": fmt,
            "num_workers": np.asarray([checkpoint.num_workers]),
            "chunks_ingested": np.asarray([checkpoint.chunks_ingested]),
            "cap_hint": np.asarray([checkpoint.cap_hint]),
            "epoch": np.asarray([checkpoint.epoch]),
            "keyframes_per_second": np.asarray(
                [checkpoint.keyframes_per_second], dtype=np.float64
            ),
            "strategy": np.asarray([checkpoint.strategy], dtype=object),
            "frontend_pending": (
                np.empty(0, dtype=np.int64)
                if checkpoint.frontend_pending is None
                else np.asarray(checkpoint.frontend_pending, dtype=np.int64)
            ),
            "frontend_flushed": np.asarray(
                [int(checkpoint.frontend_flushed)]
            ),
            "frontend_windows": np.asarray([checkpoint.frontend_windows]),
            "frontend_frames": np.asarray([checkpoint.frontend_frames]),
            **detector_config_payload(checkpoint.config),
            **_matches_payload(checkpoint.matches),
        }
        if len(checkpoint.worker_queries) != checkpoint.num_workers:
            raise ServeError(
                "checkpoint has "
                f"{len(checkpoint.worker_queries)} query subsets for "
                f"{checkpoint.num_workers} worker states"
            )
        for index, (queries, state) in enumerate(
            zip(checkpoint.worker_queries, checkpoint.worker_states)
        ):
            payload.update(query_set_payload(queries, prefix=f"w{index}_qs_"))
            for key, value in state.items():
                payload[f"w{index}_{key}"] = value
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            # NOTE: no allow_pickle kwarg — np.savez_compressed treats
            # every keyword as an array to store, so passing it used to
            # embed a spurious "allow_pickle" member in each archive
            # (object arrays are pickled by default on save anyway; it
            # is the *load* side that must opt in).
            np.savez_compressed(handle, **payload)
        os.replace(tmp, path)
        return path

    # -- load ----------------------------------------------------------

    def load(
        self,
        path: Union[str, pathlib.Path, None] = None,
        expected_config: Optional[DetectorConfig] = None,
    ) -> ServiceCheckpoint:
        """Read a snapshot (the latest one when ``path`` is omitted).

        Raises
        ------
        PersistenceError
            If no snapshot exists, the archive is unreadable or carries
            an unknown format tag, or ``expected_config`` differs from
            the recorded configuration (every differing field listed).
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise PersistenceError(
                    f"no checkpoint found in {self.directory}"
                )
        path = pathlib.Path(path)
        if not path.exists():
            raise PersistenceError(f"no checkpoint file at {path}")
        try:
            archive = np.load(path, allow_pickle=True)
        except Exception as error:  # zipfile/format errors vary by numpy
            raise PersistenceError(
                f"cannot read checkpoint file {path}: {error}"
            )
        try:
            fmt = str(archive["format"][0])
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint file {path} is missing field {error}"
            )
        if fmt not in COMPATIBLE_FORMATS:
            raise PersistenceError(
                f"checkpoint file {path} has format {fmt!r}; this build "
                f"reads {COMPATIBLE_FORMATS}"
            )
        try:
            config = detector_config_from_mapping(archive)
            if expected_config is not None:
                require_config_match(
                    config, expected_config, source=f"checkpoint {path}"
                )
            num_workers = int(archive["num_workers"][0])
            # Archives written by older builds carry a spurious
            # "allow_pickle" member (a save-side kwarg bug); it is not
            # part of the payload and must never reach a state dict.
            member_names = [
                name for name in archive.files if name != "allow_pickle"
            ]
            worker_queries = []
            worker_states: List[Dict[str, np.ndarray]] = []
            for index in range(num_workers):
                worker_queries.append(
                    query_set_from_mapping(
                        archive,
                        prefix=f"w{index}_qs_",
                        source=f"checkpoint {path}",
                    )
                )
                prefix = f"w{index}_"
                skip = f"w{index}_qs_"
                worker_states.append(
                    {
                        key[len(prefix):]: archive[key]
                        for key in member_names
                        if key.startswith(prefix)
                        and not key.startswith(skip)
                    }
                )
            has_frontend = "frontend_frames" in member_names
            frontend_frames = (
                int(archive["frontend_frames"][0]) if has_frontend else -1
            )
            checkpoint = ServiceCheckpoint(
                config=config,
                keyframes_per_second=float(
                    archive["keyframes_per_second"][0]
                ),
                chunks_ingested=int(archive["chunks_ingested"][0]),
                cap_hint=int(archive["cap_hint"][0]),
                strategy=str(archive["strategy"][0]),
                worker_queries=worker_queries,
                worker_states=worker_states,
                matches=_matches_from_mapping(archive),
                epoch=(
                    int(archive["epoch"][0]) if "epoch" in archive.files else 0
                ),
                frontend_pending=(
                    np.asarray(archive["frontend_pending"], dtype=np.int64)
                    if frontend_frames >= 0
                    else None
                ),
                frontend_flushed=(
                    bool(int(archive["frontend_flushed"][0]))
                    if has_frontend
                    else False
                ),
                frontend_windows=(
                    int(archive["frontend_windows"][0])
                    if has_frontend
                    else -1
                ),
                frontend_frames=frontend_frames,
            )
        except PersistenceError:
            raise
        except KeyError as error:
            raise PersistenceError(
                f"checkpoint file {path} is missing field {error}"
            )
        return checkpoint
