"""The sharded detection service: plan, broadcast, merge, checkpoint.

:class:`DetectionService` runs the paper's detector over a query set
partitioned across N workers. Every worker receives an identical copy of
the stream (chunks of key-frame cell ids); each detects only its shard's
queries; the service merges the per-shard match streams back into the
single-process engine's canonical order (:mod:`repro.serve.collector`).

Three executor backends share one worker implementation and protocol
(:mod:`repro.serve.workers`):

* ``serial`` — workers are plain objects called in-process, in shard
  order. Deterministic and dependency-free; the reference backend for
  the equivalence suite.
* ``thread`` — one thread per worker fed through a
  :class:`~repro.serve.queues.BoundedChannel`.
* ``process`` — one OS process per worker over ``multiprocessing``
  queues (fork start method where available, so query sketches are
  inherited rather than re-pickled).

**Equivalence invariant.** A query's matches depend only on its own
sketch/signature state *except* for candidate expiry, which uses the
global ``max(ceil(λL/w))`` over every subscribed query. The service
therefore computes that global cap and broadcasts it to every worker as
a ``cap_hint`` — at construction and again inside the epoch-barrier
``lifecycle`` broadcast that commits every subscribe or unsubscribe
(see :meth:`DetectionService.subscribe`) — ordered with the chunk
stream (control messages only ever travel at chunk barriers). Under the ``block`` backpressure policy the
merged output is then bit-for-bit the single-process detector's; the
lossy policies (``drop_oldest``, ``shed``) trade that guarantee for
bounded ingestion and are fully accounted in the ``serve.*`` metrics.
"""

from __future__ import annotations

import pathlib
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.archive import BackfillEngine, SketchArchive
from repro.config import DetectorConfig
from repro.core.query import Query, QuerySet
from repro.core.results import Match
from repro.errors import ServeError, WorkerDeadError, WorkerStallError
from repro.obs.export import snapshot
from repro.obs.merge import merge_snapshots
from repro.obs.registry import MetricsRegistry
from repro.serve.chaos import ChaosPlan
from repro.serve.checkpoint import CheckpointManager, ServiceCheckpoint
from repro.serve.collector import MatchCollector
from repro.serve.frontend import StreamFrontend
from repro.serve.planner import ShardPlanner
from repro.serve.queues import (
    BackpressurePolicy,
    BoundedChannel,
    PutOutcome,
    put_with_policy,
    queue_depth,
)
from repro.serve.shm import ShmBatchRing, shm_available
from repro.serve.supervisor import ShardSupervisor, SupervisorConfig
from repro.serve.workers import ShardWorker, WorkerSpec, _worker_loop

__all__ = ["BACKENDS", "DetectionService", "QueryInfo"]

BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class QueryInfo:
    """One subscribed query as the admission control plane sees it.

    Attributes
    ----------
    qid:
        The query id.
    shard:
        The worker currently detecting it.
    cap_windows:
        Its candidate cap ``ceil(λL/w)`` — its contribution to the
        global ``cap_hint`` and its weight under the ``load`` strategy.
    num_frames:
        Query length in key frames.
    label:
        The query's human-readable name, if any.
    """

    qid: int
    shard: int
    cap_windows: int
    num_frames: int
    label: str
    #: Backfill progress (``repro.archive``): windows requested for
    #: retrospective probing, windows already probed, retro matches
    #: found. All zero for queries subscribed without backfill (or on
    #: an archiveless service).
    backfill_total: int = 0
    backfill_done: int = 0
    retro_matches: int = 0
    #: ``"active"`` normally; ``"degraded"`` when the query's shard has
    #: been quarantined by the supervisor (flagged, never dropped).
    status: str = "active"


#: Poll interval for liveness-aware receives. Executor ``recv`` never
#: parks forever on a queue: it wakes at this cadence to check whether
#: the producing worker still exists (satellite fix for the historical
#: "recv blocks forever on a dead child" deadlock).
_RECV_POLL_SECONDS = 0.05

#: After a worker is first seen dead, one final longer poll lets any
#: reply already in flight through the queue/pipe arrive before recv
#: gives up and raises.
_DEAD_GRACE_SECONDS = 0.2

#: Per-worker bound on shutdown waits — close() must terminate even
#: when a worker is alive but wedged.
_CLOSE_TIMEOUT_SECONDS = 10.0


class _SerialExecutor:
    """In-process workers; replies buffered to keep the protocol uniform."""

    def __init__(self, specs: List[WorkerSpec]) -> None:
        self.workers = [ShardWorker(spec) for spec in specs]
        self._replies: List[List[Tuple]] = [[] for _ in specs]

    def send(
        self, worker_id: int, message: Tuple, policy: BackpressurePolicy
    ) -> PutOutcome:
        reply = self.workers[worker_id].handle(message)
        self._replies[worker_id].append(reply)
        return PutOutcome(delivered=True)

    def recv(self, worker_id: int, timeout: Optional[float] = None) -> Tuple:
        return self._replies[worker_id].pop(0)

    def try_recv(self, worker_id: int) -> Optional[Tuple]:
        replies = self._replies[worker_id]
        return replies.pop(0) if replies else None

    def is_alive(self, worker_id: int) -> bool:
        return True

    def depth(self, worker_id: int) -> Optional[int]:
        return 0

    def join(self) -> None:
        pass


class _LiveRecvMixin:
    """Liveness-aware ``recv`` shared by the thread/process backends.

    Subclasses provide ``outboxes`` (queues with ``get(timeout=...)``
    raising ``queue.Empty``), ``is_alive(worker_id)`` and an ``acked``
    list counting replies already returned per worker.
    """

    def _filter_reply(self, worker_id: int, reply: Tuple) -> bool:
        """Whether ``reply`` belongs to the protocol stream. Backends
        whose ``kill`` is cooperative (threads) drop the resulting
        ``stopped`` acknowledgement here — the caller never asked."""
        return True

    def recv(self, worker_id: int, timeout: Optional[float] = None) -> Tuple:
        outbox = self.outboxes[worker_id]
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        while True:
            try:
                reply = outbox.get(timeout=_RECV_POLL_SECONDS)
            except queue_module.Empty:
                reply = None
            if reply is not None:
                if not self._filter_reply(worker_id, reply):
                    continue
                self.acked[worker_id] += 1
                return reply
            if not self.is_alive(worker_id):
                # One grace poll: a reply written just before death may
                # still be crossing the queue (mp feeder pipe).
                try:
                    reply = outbox.get(timeout=_DEAD_GRACE_SECONDS)
                except queue_module.Empty:
                    raise WorkerDeadError(
                        worker_id, self.acked[worker_id]
                    ) from None
                if not self._filter_reply(worker_id, reply):
                    continue
                self.acked[worker_id] += 1
                return reply
            if deadline is not None and time.perf_counter() >= deadline:
                raise WorkerStallError(
                    worker_id, self.acked[worker_id], timeout
                )

    def try_recv(self, worker_id: int) -> Optional[Tuple]:
        try:
            reply = self.outboxes[worker_id].get_nowait()
        except queue_module.Empty:
            return None
        if not self._filter_reply(worker_id, reply):
            return None
        self.acked[worker_id] += 1
        return reply


class _ThreadExecutor(_LiveRecvMixin):
    """One thread per worker over policy-aware bounded channels."""

    def __init__(self, specs: List[WorkerSpec], capacity: int) -> None:
        self.capacity = capacity
        count = len(specs)
        self.inboxes: List[BoundedChannel] = [None] * count
        self.outboxes: List[queue_module.Queue] = [None] * count
        self.threads: List[threading.Thread] = [None] * count
        self.acked = [0] * count
        self._killed = [False] * count
        for spec in specs:
            self._spawn(spec)

    def _spawn(self, spec: WorkerSpec) -> None:
        worker_id = spec.worker_id
        inbox = BoundedChannel(self.capacity)
        outbox: queue_module.Queue = queue_module.Queue()
        thread = threading.Thread(
            target=_worker_loop,
            args=(spec, inbox, outbox),
            name=f"repro-serve-w{worker_id}",
            daemon=True,
        )
        self.inboxes[worker_id] = inbox
        self.outboxes[worker_id] = outbox
        self.threads[worker_id] = thread
        self._killed[worker_id] = False
        thread.start()

    def _filter_reply(self, worker_id: int, reply: Tuple) -> bool:
        # The cooperative kill below makes the dying thread emit a
        # ``stopped`` ack nobody in the protocol stream asked for.
        return not (
            self._killed[worker_id]
            and isinstance(reply, tuple)
            and reply
            and reply[0] == "stopped"
        )

    def send(
        self, worker_id: int, message: Tuple, policy: BackpressurePolicy
    ) -> PutOutcome:
        return self.inboxes[worker_id].put(message, policy)

    def is_alive(self, worker_id: int) -> bool:
        return self.threads[worker_id].is_alive()

    def kill(self, worker_id: int) -> None:
        """Abandon a worker thread (threads cannot be terminated).

        A best-effort ``stop`` is left in its old inbox so a stalled
        thread that eventually wakes drains out instead of spinning on
        an orphaned channel; its queues are replaced on respawn.
        """
        self._killed[worker_id] = True
        try:
            self.inboxes[worker_id].put(("stop",), BackpressurePolicy.SHED)
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def respawn(self, worker_id: int, spec: WorkerSpec) -> None:
        self._spawn(spec)

    def depth(self, worker_id: int) -> Optional[int]:
        return queue_depth(self.inboxes[worker_id])

    def join(self) -> None:
        for thread in self.threads:
            thread.join(timeout=10.0)


class _ProcessExecutor(_LiveRecvMixin):
    """One OS process per worker over multiprocessing queues."""

    def __init__(self, specs: List[WorkerSpec], capacity: int) -> None:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self.capacity = capacity
        count = len(specs)
        self.inboxes = [None] * count
        self.outboxes = [None] * count
        self.processes = [None] * count
        self.acked = [0] * count
        for spec in specs:
            self._spawn(spec)

    def _spawn(self, spec: WorkerSpec) -> None:
        worker_id = spec.worker_id
        inbox = self._context.Queue(self.capacity)
        outbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_loop,
            args=(spec, inbox, outbox),
            name=f"repro-serve-w{worker_id}",
            daemon=True,
        )
        self.inboxes[worker_id] = inbox
        self.outboxes[worker_id] = outbox
        self.processes[worker_id] = process
        process.start()

    def send(
        self, worker_id: int, message: Tuple, policy: BackpressurePolicy
    ) -> PutOutcome:
        return put_with_policy(self.inboxes[worker_id], message, policy)

    def is_alive(self, worker_id: int) -> bool:
        return self.processes[worker_id].is_alive()

    def kill(self, worker_id: int) -> None:
        self._reap(self.processes[worker_id])

    @staticmethod
    def _reap(process) -> None:
        # SIGTERM first; escalate to SIGKILL because workers forked
        # mid-run inherit whatever handler the host installed (the CLI
        # swallows SIGTERM for graceful drains, for one).
        if process.is_alive():
            process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)

    @staticmethod
    def _discard_queue(mp_queue) -> None:
        try:
            mp_queue.close()
            mp_queue.cancel_join_thread()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def respawn(self, worker_id: int, spec: WorkerSpec) -> None:
        self._discard_queue(self.inboxes[worker_id])
        self._discard_queue(self.outboxes[worker_id])
        self._spawn(spec)

    def depth(self, worker_id: int) -> Optional[int]:
        return queue_depth(self.inboxes[worker_id])

    def join(self) -> None:
        for process in self.processes:
            process.join(timeout=10.0)
        for process in self.processes:
            if process.is_alive():
                self._reap(process)
        # A dead child's queues can pin the parent's feeder threads at
        # interpreter exit; detach them once nothing reads anymore.
        for mp_queue in list(self.inboxes) + list(self.outboxes):
            self._discard_queue(mp_queue)


class DetectionService:
    """A query-sharded, multi-worker streaming copy detector.

    Parameters
    ----------
    config:
        Detector configuration shared by every worker.
    queries:
        The full subscription set; the planner partitions it.
    keyframes_per_second:
        Stream cadence.
    num_workers:
        Requested shard count (clamped to the number of queries).
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    strategy:
        Shard-planning strategy (``"count"`` or ``"load"``).
    queue_capacity:
        Bound on each worker's ingestion queue (thread/process).
    policy:
        Backpressure policy for *chunk* messages; control messages
        always block. Only ``BLOCK`` preserves exact single-process
        equivalence.
    registry:
        Optional service-level registry for the ``serve.*`` metrics.
    timing_enabled:
        Whether worker registries record phase wall-clock.
    sketch_once:
        When True (the default), the stream front end — window
        construction, min-hash sketching and (in no-index bit mode)
        packed plane encoding — runs **once** in the service
        (:class:`~repro.serve.frontend.StreamFrontend`), and workers
        receive precomputed ``WindowBatch`` payloads instead of raw
        chunks; on the process backend the batch arrays travel through
        a shared-memory ring (:mod:`repro.serve.shm`). When False the
        service runs the original self-sketching protocol — the
        bit-for-bit reference the equivalence suite compares against.
    batch_chunks:
        Sketch-once mode: how many consecutive chunks share one
        ``WindowBatch`` (one sketch pass, one queue hop per worker).
    archive:
        Optional :class:`~repro.archive.SketchArchive`. When given,
        every basic window's sketch is retained as it streams (the
        sketch-once front end is tapped directly; in self-sketching
        mode a dedicated quiet front end cuts and sketches windows for
        the archive alone), and :meth:`subscribe` accepts
        ``backfill=N`` to retrospectively probe the last N archived
        windows for the new query. Build the archive with the service's
        registry so the ``archive.*`` series lands in
        :meth:`metrics_snapshot`. The archive's hash family must match
        the query set's.
    backfill_async:
        When True (default) backfill jobs run on a daemon thread and
        never stall the live pipeline; when False they sit queued until
        :meth:`pump_backfill` / :meth:`drain_backfill` — the
        deterministic mode the CLI's serial driver and the kill/resume
        tests use.
    supervise:
        Wrap the executor in a :class:`ShardSupervisor`
        (:mod:`repro.serve.supervisor`): dead, stalled or poisoned
        workers are detected, respawned from rolling per-shard
        snapshots and their unacked requests replayed, keeping the
        merged match stream bit-for-bit intact; shards that exhaust
        their restart budget are quarantined and the service degrades
        gracefully. Thread/process backends only.
    supervisor:
        Optional :class:`SupervisorConfig` (implies ``supervise``).
    chaos:
        Optional :class:`~repro.serve.chaos.ChaosPlan` of scheduled
        worker failures (testing/drills); events execute inside the
        worker loops. Thread/process backends only.
    """

    def __init__(
        self,
        config: DetectorConfig,
        queries: QuerySet,
        keyframes_per_second: float,
        *,
        num_workers: int = 2,
        backend: str = "serial",
        strategy: str = "load",
        queue_capacity: int = 4,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        registry: Optional[MetricsRegistry] = None,
        timing_enabled: bool = True,
        sketch_once: bool = True,
        batch_chunks: int = 4,
        archive: Optional[SketchArchive] = None,
        backfill_async: bool = True,
        supervise: bool = False,
        supervisor: Optional["SupervisorConfig"] = None,
        chaos: Optional[ChaosPlan] = None,
        _checkpoint: Optional[ServiceCheckpoint] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ServeError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if supervisor is not None:
            supervise = True
        if supervise and backend == "serial":
            raise ServeError(
                "supervision needs workers that can die independently; "
                "the serial backend has none (use thread or process)"
            )
        if chaos is not None and chaos and backend == "serial":
            raise ServeError(
                "chaos injection targets thread/process workers; the "
                "serial backend runs them in the service process"
            )
        self.config = config
        self.keyframes_per_second = float(keyframes_per_second)
        self.backend = backend
        self.policy = policy
        self.strategy = strategy
        self.window_frames = max(
            1, round(config.window_seconds * keyframes_per_second)
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.collector = MatchCollector(config.order)
        self.chunks_ingested = 0
        self.epoch = 0
        self._flushed = False
        self._closed = False

        if _checkpoint is None:
            plan = ShardPlanner(num_workers, strategy).plan(
                queries, self.window_frames, config.tempo_scale
            )
            shard_queries = [
                QuerySet(
                    [queries.get(qid) for qid in shard], queries.family
                )
                for shard in plan.shards
            ]
            states: List[Optional[Dict[str, np.ndarray]]] = [None] * len(
                shard_queries
            )
        else:
            shard_queries = list(_checkpoint.worker_queries)
            states = list(_checkpoint.worker_states)
            self.chunks_ingested = _checkpoint.chunks_ingested
            self.epoch = _checkpoint.epoch
            self.collector.restore(_checkpoint.matches)

        self._shard_qids: List[Set[int]] = [
            set(qs.query_ids) for qs in shard_queries
        ]
        self._family = shard_queries[0].family
        self._queries: Dict[int, Query] = {
            qid: shard.get(qid)
            for shard in shard_queries
            for qid in shard.query_ids
        }
        self._caps: Dict[int, int] = {}
        for shard in shard_queries:
            self._caps.update(
                shard.max_windows_map(self.window_frames, config.tempo_scale)
            )
        self.cap_hint = max(self._caps.values())
        if _checkpoint is not None and _checkpoint.cap_hint > self.cap_hint:
            # A previously subscribed (since dropped) query raised the
            # horizon; keep it so restored candidate ages stay legal.
            self.cap_hint = _checkpoint.cap_hint

        self.sketch_once = bool(sketch_once)
        self.batch_chunks = max(1, int(batch_chunks))
        self._frontend: Optional[StreamFrontend] = None
        self._ring: Optional[ShmBatchRing] = None
        if self.sketch_once:
            self._frontend = StreamFrontend(
                config=config,
                family=self._family,
                window_frames=self.window_frames,
                registry=self.registry,
            )
            self._frontend.set_queries(self._queries)
            if _checkpoint is not None:
                states = self._restore_frontend(_checkpoint, states)
        elif _checkpoint is not None and _checkpoint.has_frontend:
            # A sketch-once snapshot resumed in self-sketching mode:
            # hand the front end's undigested buffer back to every
            # worker's monitor (they all buffer the identical stream).
            states = [dict(state) for state in states]
            for state in states:
                state["pending"] = np.asarray(
                    _checkpoint.frontend_pending, dtype=np.int64
                )

        self._archive = archive
        self._tap: Optional[StreamFrontend] = None
        self._backfill: Optional[BackfillEngine] = None
        if archive is not None:
            if archive.family_fingerprint != self._family.fingerprint:
                raise ServeError(
                    "the archive was recorded under a different hash "
                    f"family ({archive.family_fingerprint}) than this "
                    f"service's query set ({self._family.fingerprint})"
                )
            if self._frontend is None:
                # Self-sketching mode has no service-side front end to
                # tap; a dedicated quiet one cuts and sketches windows
                # for the archive alone (set_queries is never called,
                # so it computes no planes and its counters stay out of
                # the service registry).
                self._tap = StreamFrontend(
                    config=config,
                    family=self._family,
                    window_frames=self.window_frames,
                    registry=MetricsRegistry(timing_enabled=False),
                )
            self._backfill = BackfillEngine(
                config,
                self._family,
                self.keyframes_per_second,
                archive,
                emit=self.collector.add_retro,
                registry=self.registry,
                async_mode=backfill_async,
            )
            if _checkpoint is not None:
                self._restore_archive(_checkpoint, states)

        worker_epochs = (
            [self.epoch] * len(shard_queries)
            if _checkpoint is None
            else _checkpoint.worker_epochs()
        )
        chaos_plan = chaos if chaos is not None else ChaosPlan()
        chaos_plan.validate_workers(len(shard_queries))
        specs = [
            WorkerSpec(
                worker_id=index,
                config=config,
                queries=shard,
                keyframes_per_second=self.keyframes_per_second,
                cap_hint=self.cap_hint,
                timing_enabled=timing_enabled,
                state=states[index],
                epoch=worker_epochs[index],
                chaos=chaos_plan.for_worker(index),
            )
            for index, shard in enumerate(shard_queries)
        ]
        if backend == "serial":
            self._executor = _SerialExecutor(specs)
        elif backend == "thread":
            self._executor = _ThreadExecutor(specs, queue_capacity)
        else:
            self._executor = _ProcessExecutor(specs, queue_capacity)
        self._supervisor: Optional[ShardSupervisor] = None
        if supervise:
            self._supervisor = ShardSupervisor(
                self._executor,
                specs,
                config=supervisor,
                registry=self.registry,
            )
            self._executor = self._supervisor
        self.num_workers = len(specs)
        if (
            self.sketch_once
            and backend == "process"
            and shm_available()
        ):
            # Enough slots for every batch that can be in flight at
            # once: queue_capacity queued + one in processing + one
            # being published.
            self._ring = ShmBatchRing(queue_capacity + 2)
        self._planner = ShardPlanner(self.num_workers, strategy)
        self._update_query_gauges()

    def _restore_frontend(
        self,
        checkpoint: ServiceCheckpoint,
        states: List[Optional[Dict[str, np.ndarray]]],
    ) -> List[Optional[Dict[str, np.ndarray]]]:
        """Reinstate (or migrate) the front end's stream state.

        A ``repro.ckpt/3`` sketch-once snapshot restores directly. A
        legacy (or self-sketching) snapshot kept the undigested buffer
        in every worker's monitor instead: worker 0's buffer becomes
        the front-end buffer, the front-end clock is derived from
        worker 0's replicated stream counters, and the workers' own
        buffers are emptied (batches now arrive pre-cut).
        """
        frontend = self._frontend
        if checkpoint.has_frontend:
            frontend.restore(
                checkpoint.frontend_pending,
                checkpoint.frontend_flushed,
                checkpoint.frontend_windows,
                checkpoint.frontend_frames,
            )
            return states
        state = states[0]
        counters = dict(
            zip(
                (str(name) for name in state["reg_counter_names"]),
                (int(value) for value in state["reg_counter_values"]),
            )
        )
        frontend.restore(
            pending=np.asarray(state["pending"], dtype=np.int64),
            flushed=bool(int(state["flushed"][0])),
            windows_emitted=counters.get("engine.windows_processed", 0),
            frames_emitted=counters.get("stream.frames_processed", 0),
        )
        migrated = [dict(other) for other in states]
        for other in migrated:
            other["pending"] = np.empty(0, dtype=np.int64)
        return migrated

    def _restore_archive(
        self,
        checkpoint: ServiceCheckpoint,
        states: List[Optional[Dict[str, np.ndarray]]],
    ) -> None:
        """Reinstate archive ring/watermark, tap clock, retro matches
        and unfinished backfill jobs from a ``repro.ckpt/4`` snapshot.

        Older snapshots (or snapshots taken without an archive) carry
        no archive state; the watermark is then fast-forwarded to the
        stream clock — the windows already streamed were simply never
        archived, not lost.
        """
        archive = self._archive
        if checkpoint.has_archive:
            archive.restore(
                checkpoint.archive_next,
                checkpoint.archive_ring_indices,
                checkpoint.archive_ring_starts,
                checkpoint.archive_ring_frames,
                checkpoint.archive_ring_sketches,
            )
        self.collector.restore_retro(checkpoint.retro_matches)
        if self._tap is not None:
            if checkpoint.archive_tap_frames >= 0:
                frames = int(checkpoint.archive_tap_frames)
                flushed = bool(checkpoint.archive_tap_flushed)
                # windows_emitted is implied: full windows plus, once
                # flushed, the partial tail window if one existed.
                windows = (
                    -(-frames // self.window_frames)
                    if flushed
                    else frames // self.window_frames
                )
                self._tap.restore(
                    np.asarray(
                        checkpoint.archive_tap_pending, dtype=np.int64
                    ),
                    flushed,
                    windows,
                    frames,
                )
            elif checkpoint.has_frontend:
                self._tap.restore(
                    checkpoint.frontend_pending,
                    checkpoint.frontend_flushed,
                    checkpoint.frontend_windows,
                    checkpoint.frontend_frames,
                )
            else:
                state = states[0]
                counters = dict(
                    zip(
                        (str(n) for n in state["reg_counter_names"]),
                        (int(v) for v in state["reg_counter_values"]),
                    )
                )
                self._tap.restore(
                    pending=np.asarray(state["pending"], dtype=np.int64),
                    flushed=bool(int(state["flushed"][0])),
                    windows_emitted=counters.get(
                        "engine.windows_processed", 0
                    ),
                    frames_emitted=counters.get(
                        "stream.frames_processed", 0
                    ),
                )
        if not checkpoint.has_archive:
            # Archiving newly enabled on resume: the stream clock is
            # ahead of the (empty) archive and those windows are gone,
            # not gaps.
            archive.fast_forward(self._stream_windows())
        dropped = 0
        for row in checkpoint.backfill_jobs:
            job = self._backfill.restore_job(
                tuple(int(v) for v in row), self._queries
            )
            if job is None:
                dropped += 1
        if dropped:
            self.registry.inc("archive.backfill_jobs_dropped", dropped)

    def _stream_windows(self) -> int:
        """The live stream clock: basic windows emitted so far."""
        if self._frontend is not None:
            return self._frontend.windows_emitted
        if self._tap is not None:
            return self._tap.windows_emitted
        return 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def restore(
        cls,
        source: Union[str, pathlib.Path, CheckpointManager, ServiceCheckpoint],
        *,
        expected_config: Optional[DetectorConfig] = None,
        backend: str = "serial",
        queue_capacity: int = 4,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        registry: Optional[MetricsRegistry] = None,
        timing_enabled: bool = True,
        sketch_once: bool = True,
        batch_chunks: int = 4,
        archive: Optional[SketchArchive] = None,
        backfill_async: bool = True,
        supervise: bool = False,
        supervisor: Optional["SupervisorConfig"] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> "DetectionService":
        """Rebuild a service from a checkpoint and continue mid-stream.

        ``source`` may be a :class:`ServiceCheckpoint`, a checkpoint
        file path, or a :class:`CheckpointManager` (whose latest
        snapshot is used). The resumed service keeps the recorded shard
        assignment, counters, candidate state and collected matches:
        re-feeding the stream from ``chunks_ingested`` yields exactly
        the match stream an uninterrupted run would have produced.
        Snapshots migrate freely between ``sketch_once`` modes: the
        undigested stream buffer moves between the front end and the
        worker monitors, whichever side the resumed service sketches on.
        """
        if isinstance(source, ServiceCheckpoint):
            checkpoint = source
        elif isinstance(source, CheckpointManager):
            checkpoint = source.load(expected_config=expected_config)
        else:
            path = pathlib.Path(source)
            manager = CheckpointManager(path.parent)
            checkpoint = manager.load(path, expected_config=expected_config)
        merged: List[Query] = []
        for shard in checkpoint.worker_queries:
            merged.extend(shard.get(qid) for qid in shard.query_ids)
        union = QuerySet(merged, checkpoint.worker_queries[0].family)
        return cls(
            checkpoint.config,
            union,
            checkpoint.keyframes_per_second,
            num_workers=checkpoint.num_workers,
            backend=backend,
            strategy=checkpoint.strategy,
            queue_capacity=queue_capacity,
            policy=policy,
            registry=registry,
            timing_enabled=timing_enabled,
            sketch_once=sketch_once,
            batch_chunks=batch_chunks,
            archive=archive,
            backfill_async=backfill_async,
            supervise=supervise,
            supervisor=supervisor,
            chaos=chaos,
            _checkpoint=checkpoint,
        )

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServeError("the service has been closed")

    def _expect(self, worker_id: int, *kinds: str) -> Tuple:
        reply = self._executor.recv(worker_id)
        if reply[0] == "error":
            raise ServeError(f"worker {reply[1]} failed: {reply[2]}")
        if reply[0] not in kinds:
            raise ServeError(
                f"worker {worker_id} replied {reply[0]!r}, "
                f"expected one of {kinds}"
            )
        return reply

    def _control(self, message: Tuple) -> None:
        """Broadcast a control message and await every acknowledgement."""
        for worker_id in range(self.num_workers):
            self._executor.send(
                worker_id, message, BackpressurePolicy.BLOCK
            )
        for worker_id in range(self.num_workers):
            self._expect(worker_id, "ok")

    def _record_put(
        self, worker_id: int, outcome: PutOutcome, num_chunks: int
    ) -> None:
        registry = self.registry
        if outcome.delivered:
            registry.inc(f"serve.chunks_delivered.w{worker_id}", num_chunks)
        else:
            registry.inc(f"serve.chunks_shed.w{worker_id}", num_chunks)
        if outcome.blocked_seconds:
            registry.inc(f"serve.backpressure_blocks.w{worker_id}")
            timer = registry.timer(f"serve.blocked.w{worker_id}")
            timer.calls += 1
            timer.seconds += outcome.blocked_seconds
        depth = self._executor.depth(worker_id)
        if depth is not None:
            registry.set_gauge(f"serve.queue_depth.w{worker_id}", depth)

    def _account(self, worker_id: int, outcome: PutOutcome) -> List[int]:
        """Record one chunk put's metrics; return stolen chunk seqs."""
        self._record_put(worker_id, outcome, 1)
        stolen = []
        for item in outcome.dropped:
            if isinstance(item, tuple) and item and item[0] == "chunk":
                self.registry.inc(f"serve.chunks_dropped.w{worker_id}")
                stolen.append(item[1])
        return stolen

    def _account_batch(
        self, worker_id: int, outcome: PutOutcome, num_chunks: int
    ) -> List[Tuple[int, Optional[int]]]:
        """Record one batch put; return stolen ``(base_seq, slot)``."""
        self._record_put(worker_id, outcome, num_chunks)
        stolen: List[Tuple[int, Optional[int]]] = []
        for item in outcome.dropped:
            if not (isinstance(item, tuple) and item):
                continue
            if item[0] == "batch":
                batch = item[1]
                self.registry.inc(
                    f"serve.chunks_dropped.w{worker_id}", batch.num_chunks
                )
                stolen.append((batch.base_seq, None))
            elif item[0] == "batch_shm":
                descriptor = item[1]
                self.registry.inc(
                    f"serve.chunks_dropped.w{worker_id}",
                    descriptor.num_chunks,
                )
                stolen.append((descriptor.base_seq, descriptor.slot))
        return stolen

    # ------------------------------------------------------------------
    # stream ingestion
    # ------------------------------------------------------------------

    def process_chunk(self, cell_ids: np.ndarray) -> List[Match]:
        """Feed one chunk to every worker; return its merged matches.

        Lock-step: broadcasts the chunk, waits for every shard's batch,
        merges into canonical order. Use :meth:`run` for pipelined
        ingestion of many chunks.
        """
        return self.run([cell_ids], flush=False)

    def run(
        self,
        chunks: Sequence[np.ndarray],
        flush: bool = True,
    ) -> List[Match]:
        """Pipelined ingestion of a chunk sequence.

        Chunks are broadcast as fast as the backpressure policy admits
        (workers run up to ``queue_capacity`` chunks behind the
        producer); replies are then drained and merged chunk-by-chunk,
        so the returned stream — and :attr:`matches` — is in canonical
        single-process order. With ``flush=True`` the final partial
        window is processed too and the stream is closed.
        """
        self._require_open()
        if self._flushed:
            raise ServeError("the stream has already been flushed")
        chunk_arrays = [
            np.asarray(chunk, dtype=np.int64) for chunk in chunks
        ]
        if self._frontend is not None:
            merged = self._run_sketch_once(chunk_arrays)
        else:
            merged = self._run_reference(chunk_arrays)
        self.chunks_ingested += len(chunk_arrays)
        if flush:
            merged.extend(self.flush())
        return merged

    def _run_reference(
        self, chunk_arrays: List[np.ndarray]
    ) -> List[Match]:
        """Self-sketching protocol: replicate raw chunks to every shard."""
        outstanding: List[Set[int]] = [
            set() for _ in range(self.num_workers)
        ]
        for seq, chunk in enumerate(chunk_arrays):
            if self._tap is not None:
                # Archive tap: sketch this chunk's completed windows
                # once, service side, independent of the workers'
                # self-sketching copies.
                self._archive_batch(self._tap.build([chunk], seq))
            message = ("chunk", seq, chunk)
            for worker_id in range(self.num_workers):
                outcome = self._executor.send(
                    worker_id, message, self.policy
                )
                if outcome.delivered:
                    outstanding[worker_id].add(seq)
                for stolen_seq in self._account(worker_id, outcome):
                    outstanding[worker_id].discard(stolen_seq)
            self.registry.inc("serve.chunks_ingested")
        results: List[Dict[int, List[Match]]] = [
            {} for _ in range(self.num_workers)
        ]
        for worker_id in range(self.num_workers):
            for _ in range(len(outstanding[worker_id])):
                reply = self._expect(worker_id, "matches")
                results[worker_id][reply[2]] = reply[3]
        return self._merge_results(results, len(chunk_arrays))

    def _run_sketch_once(
        self, chunk_arrays: List[np.ndarray]
    ) -> List[Match]:
        """Sketch-once protocol: build each batch once, fan out payloads.

        The front end cuts and sketches the windows of ``batch_chunks``
        consecutive chunks in one pass; the resulting ``WindowBatch``
        travels to every worker (through the shared-memory ring on the
        process backend). Replies arrive in order per worker, so the
        oldest outstanding batch is always the next drainable one —
        which is also how ring slots are freed under pressure.
        """
        num_workers = self.num_workers
        registry = self.registry
        # Per worker: FIFO of (base_seq, slot) batches awaiting replies.
        outstanding: List[Deque[Tuple[int, Optional[int]]]] = [
            deque() for _ in range(num_workers)
        ]
        results: List[Dict[int, List[Match]]] = [
            {} for _ in range(num_workers)
        ]

        def drain_one(worker_id: int) -> None:
            reply = self._expect(worker_id, "matches_batch")
            base_seq, match_lists = reply[2], reply[3]
            head_seq, slot = outstanding[worker_id].popleft()
            if head_seq != base_seq:
                raise ServeError(
                    f"worker {worker_id} replied for batch {base_seq}, "
                    f"expected {head_seq}"
                )
            for offset, matches in enumerate(match_lists):
                results[worker_id][base_seq + offset] = matches
            if slot is not None:
                self._ring.release(slot, worker_id)

        def drain_oldest() -> None:
            # Free a ring slot by consuming the reply for the oldest
            # in-flight batch; workers reply into unbounded outboxes,
            # so this always makes progress.
            candidates = [
                (pending[0][0], worker_id)
                for worker_id, pending in enumerate(outstanding)
                if pending
            ]
            if not candidates:
                raise ServeError(
                    "shared-memory ring exhausted with no outstanding "
                    "batches to drain"
                )
            registry.inc("serve.transport.shm_waits")
            drain_one(min(candidates)[1])

        for base in range(0, len(chunk_arrays), self.batch_chunks):
            group = chunk_arrays[base : base + self.batch_chunks]
            batch = self._frontend.build(group, base)
            if self._archive is not None:
                self._archive_batch(batch)
            registry.inc("serve.transport.batches")
            registry.inc("serve.transport.chunks", len(group))
            registry.inc("serve.transport.windows", batch.num_windows)
            slot: Optional[int] = None
            if self._ring is not None:
                descriptor = self._ring.publish(
                    batch,
                    readers=range(num_workers),
                    wait_for_slot=drain_oldest,
                )
                slot = descriptor.slot
                message: Tuple = ("batch_shm", descriptor)
                registry.inc(
                    "serve.transport.shm_bytes", descriptor.total_bytes
                )
            else:
                message = ("batch", batch)
                registry.inc("serve.transport.inline_bytes", batch.nbytes)
            for worker_id in range(num_workers):
                if self._supervisor is not None and slot is not None:
                    # The supervisor's replay buffer must outlive the
                    # ring slot, so it logs the inline batch instead of
                    # the descriptor.
                    outcome = self._supervisor.send(
                        worker_id,
                        message,
                        self.policy,
                        shadow=("batch", batch),
                    )
                else:
                    outcome = self._executor.send(
                        worker_id, message, self.policy
                    )
                if outcome.delivered:
                    outstanding[worker_id].append((base, slot))
                elif slot is not None:
                    self._ring.release(slot, worker_id)
                stolen = self._account_batch(
                    worker_id, outcome, len(group)
                )
                for stolen_seq, stolen_slot in stolen:
                    outstanding[worker_id].remove(
                        (stolen_seq, stolen_slot)
                    )
                    if stolen_slot is not None:
                        self._ring.release(stolen_slot, worker_id)
            registry.inc("serve.chunks_ingested", len(group))
        for worker_id in range(num_workers):
            while outstanding[worker_id]:
                drain_one(worker_id)
        return self._merge_results(results, len(chunk_arrays))

    def _merge_results(
        self,
        results: List[Dict[int, List[Match]]],
        num_chunks: int,
    ) -> List[Match]:
        merged: List[Match] = []
        for seq in range(num_chunks):
            merged.extend(
                self.collector.merge(
                    [
                        self._drop_phantoms(results[w].get(seq, []))
                        for w in range(self.num_workers)
                    ]
                )
            )
        return merged

    def _drop_phantoms(self, matches: List[Match]) -> List[Match]:
        """Suppress a backfilled query's live matches whose candidate
        started before its subscription barrier: the live engine
        evaluated those candidates with empty pre-barrier signatures,
        and the backfill replay emits the true versions as retro
        matches."""
        if self._backfill is None or not matches:
            return matches
        bounds = self._backfill.suppress_bounds()
        if not bounds:
            return matches
        return [
            match for match in matches
            if match.start_frame >= bounds.get(match.qid, 0)
        ]

    def flush(self) -> List[Match]:
        """Process the final partial window in every shard; merge it."""
        self._require_open()
        if self._flushed:
            return []
        if self._frontend is not None:
            # The tail is sketched (and plane-encoded) once, service
            # side; it is small, so it travels inline on any backend.
            tail = self._frontend.flush_tail()
            self._archive_tail(tail)
            message: Tuple = ("flush", tail)
        else:
            if self._tap is not None:
                self._archive_tail(self._tap.flush_tail())
            message = ("flush",)
        for worker_id in range(self.num_workers):
            self._executor.send(
                worker_id, message, BackpressurePolicy.BLOCK
            )
        batches = []
        for worker_id in range(self.num_workers):
            batches.append(self._expect(worker_id, "flushed")[2])
        self._flushed = True
        if self._backfill is not None:
            # The stream is over: shadow windows a backfill job was
            # still waiting for will never arrive — close its horizon
            # so a following drain terminates.
            self._backfill.finalize()
        return self.collector.merge(
            [self._drop_phantoms(batch) for batch in batches]
        )

    def _archive_batch(self, batch) -> None:
        """Retain one ``WindowBatch``'s windows in the sketch archive."""
        if batch.num_windows:
            self._archive.append(
                batch.indices,
                batch.starts,
                batch.frames,
                batch.sketch_values,
            )

    def _archive_tail(self, tail) -> None:
        """Retain the flush tail and seal the archive's open run (the
        stream is over; nothing further will extend it)."""
        if self._archive is None:
            return
        if tail is not None:
            self._archive.append(
                np.asarray([tail.index], dtype=np.int64),
                np.asarray([tail.start_frame], dtype=np.int64),
                np.asarray([tail.num_frames], dtype=np.int64),
                np.asarray(tail.sketch_values, dtype=np.int64)[
                    np.newaxis, :
                ],
            )
        self._archive.seal_open_run()

    @property
    def matches(self) -> List[Match]:
        """The full merged match stream collected so far."""
        return self.collector.matches

    @property
    def retro_matches(self) -> List[Match]:
        """Backfill's retrospective matches (empty without an archive)."""
        return self.collector.retro_snapshot()

    def all_matches(self) -> List[Match]:
        """Live + retro matches in one canonically ordered stream."""
        return self.collector.combined()

    @property
    def family(self):
        """The min-hash family the subscribed queries were sketched
        under — new subscriptions (e.g. admitted over the gateway) must
        sketch against the same family."""
        return self._family

    # ------------------------------------------------------------------
    # query admission (subscription churn)
    # ------------------------------------------------------------------

    def shard_of(self, qid: int) -> int:
        """The worker currently detecting query ``qid``."""
        for worker_id, qids in enumerate(self._shard_qids):
            if qid in qids:
                return worker_id
        raise ServeError(f"query {qid} is not subscribed")

    def shard_sizes(self) -> List[int]:
        """Current per-worker query counts."""
        return [len(qids) for qids in self._shard_qids]

    def shard_loads(self) -> List[int]:
        """Current per-worker loads under the planning strategy."""
        weights = (
            {qid: 1 for qid in self._caps}
            if self.strategy == "count"
            else self._caps
        )
        return [
            sum(weights[qid] for qid in qids) for qids in self._shard_qids
        ]

    def degraded_shards(self) -> List[int]:
        """Quarantined shard ids (empty without supervision)."""
        if self._supervisor is None:
            return []
        return self._supervisor.quarantined_workers()

    @property
    def partial(self) -> bool:
        """True when at least one shard is quarantined — the merged
        match stream is then missing that shard's contribution."""
        return bool(self.degraded_shards())

    def list_queries(self) -> List[QueryInfo]:
        """Every subscribed query with its placement, in qid order.

        Queries on a quarantined shard are reported with status
        ``"degraded"`` — still subscribed, but their shard stopped
        contributing matches when its recovery budget ran out.
        """
        self._require_open()
        progress = self.backfill_progress()
        degraded = set(self.degraded_shards())
        return sorted(
            (
                QueryInfo(
                    qid=qid,
                    shard=worker_id,
                    cap_windows=self._caps[qid],
                    num_frames=self._queries[qid].num_frames,
                    label=self._queries[qid].label,
                    backfill_total=progress.get(qid, (0, 0, 0))[0],
                    backfill_done=progress.get(qid, (0, 0, 0))[1],
                    retro_matches=progress.get(qid, (0, 0, 0))[2],
                    status=(
                        "degraded" if worker_id in degraded else "active"
                    ),
                )
                for worker_id, qids in enumerate(self._shard_qids)
                for qid in qids
            ),
            key=lambda info: info.qid,
        )

    def subscribe(self, query: Query, backfill: int = 0) -> int:
        """Add a query mid-stream; returns the shard that received it.

        Placement goes through the :class:`ShardPlanner`'s online rule
        (least-loaded under the service's strategy, deterministic tie
        break). The op is delivered as one epoch-barrier ``lifecycle``
        broadcast: every worker — not just the target — acknowledges
        the same epoch and the recomputed global ``cap_hint`` before
        any further chunk is ingested, so candidate expiry stays
        globally consistent (the equivalence invariant) and the merged
        match stream stays deterministic.

        ``backfill=N`` additionally queues a retrospective probe of the
        last N archived windows (clamped to what the archive retains)
        through the :class:`~repro.archive.BackfillEngine`; its matches
        arrive tagged ``retro`` in :attr:`retro_matches`. Requires the
        service to have been built with an archive.
        """
        self._require_open()
        if backfill < 0:
            raise ServeError(f"backfill must be >= 0, got {backfill}")
        if backfill and self._backfill is None:
            raise ServeError(
                f"query {query.qid} requested backfill={backfill} but "
                "the service has no sketch archive"
            )
        if query.qid in self._queries:
            raise ServeError(f"query {query.qid} is already subscribed")
        if query.sketch.family != self._family.fingerprint:
            raise ServeError(
                f"query {query.qid} was sketched under a different hash "
                "family than this service's query set"
            )
        cap = query.max_candidate_windows(
            self.window_frames, self.config.tempo_scale
        )
        loads = self.shard_loads()
        degraded = self.degraded_shards()
        if degraded and len(degraded) < self.num_workers:
            # Steer new queries away from quarantined shards — they
            # would only ever be reported degraded there.
            penalty = sum(loads) + max(loads) + 1
            for worker_id in degraded:
                loads[worker_id] += penalty
        target = self._planner.place(loads)
        self._lifecycle(
            {target: (("subscribe", query),)},
            max(max(self._caps.values()), cap),
        )
        self._shard_qids[target].add(query.qid)
        self._queries[query.qid] = query
        self._caps[query.qid] = cap
        if self._frontend is not None:
            self._frontend.set_queries(self._queries)
        if backfill and self._backfill is not None:
            # live_start: every window below the stream clock was
            # processed live *without* this query (the lifecycle
            # barrier above ordered the subscribe after them), every
            # later one *with* it — retro and live partition cleanly.
            self._backfill.request(
                query, backfill, self._stream_windows(), self.cap_hint
            )
        self.registry.inc("serve.queries.subscribed")
        self._update_query_gauges()
        return target

    def unsubscribe(self, qid: int) -> None:
        """Drop a query mid-stream (epoch-barrier broadcast).

        The global ``cap_hint`` is recomputed over the surviving
        queries — it may shrink, exactly as a single detector's global
        horizon shrinks, so over-horizon candidates expire on the next
        window in every shard at once.
        """
        self._require_open()
        worker_id = self.shard_of(qid)
        if len(self._shard_qids[worker_id]) < 2:
            raise ServeError(
                f"cannot unsubscribe query {qid}: it is the last query "
                f"of shard {worker_id} (a worker cannot run empty; "
                "subscribe a replacement first)"
            )
        surviving = max(
            cap for other, cap in self._caps.items() if other != qid
        )
        self._lifecycle({worker_id: (("unsubscribe", qid),)}, surviving)
        self._shard_qids[worker_id].discard(qid)
        del self._queries[qid]
        del self._caps[qid]
        if self._frontend is not None:
            self._frontend.set_queries(self._queries)
        if self._backfill is not None:
            self._backfill.cancel(qid)
        self.registry.inc("serve.queries.unsubscribed")
        self._update_query_gauges()

    # ------------------------------------------------------------------
    # backfill control
    # ------------------------------------------------------------------

    def backfill_progress(self) -> Dict[int, Tuple[int, int, int]]:
        """qid → ``(total, done, retro_found)`` backfill windows."""
        if self._backfill is None:
            return {}
        return self._backfill.progress()

    def pump_backfill(self, max_windows: Optional[int] = None) -> int:
        """Synchronously probe up to ``max_windows`` archived windows
        (``backfill_async=False`` mode); returns windows probed."""
        if self._backfill is None:
            return 0
        return self._backfill.pump(max_windows)

    def drain_backfill(self, timeout: Optional[float] = None) -> bool:
        """Finish every queued backfill job; returns True when drained."""
        if self._backfill is None:
            return True
        return self._backfill.drain(timeout)

    def _lifecycle(
        self, ops_by_worker: Dict[int, Tuple], cap_hint: int
    ) -> None:
        """Commit one churn event as an epoch barrier on every worker.

        The message travels on the same channels as chunks, so each
        shard applies its ops (and the new cap hint) at the same
        basic-window boundary relative to the stream.
        """
        epoch = self.epoch + 1
        for worker_id in range(self.num_workers):
            message = (
                "lifecycle",
                epoch,
                ops_by_worker.get(worker_id, ()),
                cap_hint,
            )
            self._executor.send(
                worker_id, message, BackpressurePolicy.BLOCK
            )
        for worker_id in range(self.num_workers):
            self._expect(worker_id, "ok")
        self.epoch = epoch
        if cap_hint != self.cap_hint:
            self.registry.inc("serve.queries.cap_rebroadcasts")
        self.cap_hint = cap_hint

    def _update_query_gauges(self) -> None:
        self.registry.set_gauge("serve.queries.active", len(self._queries))
        self.registry.set_gauge("serve.queries.epoch", self.epoch)
        self.registry.set_gauge("serve.queries.cap_hint", self.cap_hint)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """Aggregated cross-worker metrics (``repro.obs/1`` + merge).

        Worker snapshots are merged under the replicated/additive
        counter semantics of :func:`repro.obs.merge.merge_snapshots`;
        the service's own ``serve.*`` metrics ride along (their names
        are unique, so they pass through). A ``serve`` section reports
        topology: backend, policy, shard membership, stream position.
        """
        self._require_open()
        snapshots = []
        for worker_id in range(self.num_workers):
            self._executor.send(
                worker_id, ("snapshot",), BackpressurePolicy.BLOCK
            )
        for worker_id in range(self.num_workers):
            snapshots.append(self._expect(worker_id, "snapshot")[2])
        snapshots.append(snapshot(self.registry))
        merged = merge_snapshots(snapshots)
        merged["serve"] = {
            "backend": self.backend,
            "policy": self.policy.value,
            "strategy": self.strategy,
            "num_workers": self.num_workers,
            "cap_hint": self.cap_hint,
            "epoch": self.epoch,
            "num_queries": len(self._queries),
            "chunks_ingested": self.chunks_ingested,
            "matches_collected": len(self.collector),
            "shards": [sorted(qids) for qids in self._shard_qids],
            "sketch_once": self.sketch_once,
            "batch_chunks": self.batch_chunks,
            "transport": (
                "shm_ring"
                if self._ring is not None
                else ("batch_inline" if self.sketch_once else "chunk")
            ),
            "supervised": self._supervisor is not None,
            "quarantined_shards": self.degraded_shards(),
            "shm_outstanding_refs": (
                self._ring.total_outstanding_refs()
                if self._ring is not None
                else 0
            ),
        }
        if self._archive is not None:
            lo, hi = self._archive.available()
            merged["archive"] = {
                "windows_retained": self._archive.windows_retained(),
                "ring_windows": self._archive.ring_windows,
                "bytes_on_disk": self._archive.bytes_on_disk(),
                "available_lo": lo,
                "next_index": hi,
                "segments": (
                    len(self._archive.store.segments)
                    if self._archive.store is not None
                    else 0
                ),
                "backfill": {
                    qid: {
                        "total": total,
                        "done": done,
                        "retro_matches": found,
                    }
                    for qid, (total, done, found)
                    in self.backfill_progress().items()
                },
            }
        return merged

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(
        self,
        target: Union[str, pathlib.Path, CheckpointManager],
    ) -> pathlib.Path:
        """Snapshot the whole service to disk (atomic write).

        ``target`` is a :class:`CheckpointManager` or a directory path
        for one. Must be called at a chunk barrier (any point between
        :meth:`run` calls); the snapshot records the stream position so
        the resuming caller knows where to re-feed from.
        """
        self._require_open()
        manager = (
            target
            if isinstance(target, CheckpointManager)
            else CheckpointManager(target)
        )
        states: List[Dict[str, np.ndarray]] = []
        queries: List[QuerySet] = []
        for worker_id in range(self.num_workers):
            self._executor.send(
                worker_id, ("state",), BackpressurePolicy.BLOCK
            )
        for worker_id in range(self.num_workers):
            states.append(self._expect(worker_id, "state")[2])
            override = (
                self._supervisor.shard_queries_override(worker_id)
                if self._supervisor is not None
                else None
            )
            if override is not None:
                # A quarantined shard checkpoints its last good state,
                # which covers the queries *as of that snapshot* — not
                # whatever the control plane has since changed.
                queries.append(override)
                continue
            shard_qids = sorted(self._shard_qids[worker_id])
            queries.append(
                QuerySet(
                    [self._queries[qid] for qid in shard_qids], self._family
                )
            )
        if self._frontend is not None:
            pending, flushed, windows, frames = self._frontend.state()
            frontend_fields = {
                "frontend_pending": pending,
                "frontend_flushed": flushed,
                "frontend_windows": windows,
                "frontend_frames": frames,
            }
        else:
            frontend_fields = {}
        archive_fields: Dict[str, object] = {}
        if self._archive is not None:
            # Quiesce backfill for the snapshot: no slice can run while
            # the engine lock is held, so the persisted emitted_through
            # watermarks are consistent with the retro matches below.
            with self._backfill.paused():
                (
                    archive_next,
                    ring_indices,
                    ring_starts,
                    ring_frames,
                    ring_sketches,
                ) = self._archive.state()
                archive_fields = {
                    "archive_next": archive_next,
                    "archive_ring_indices": ring_indices,
                    "archive_ring_starts": ring_starts,
                    "archive_ring_frames": ring_frames,
                    "archive_ring_sketches": ring_sketches,
                    "backfill_jobs": self._backfill.checkpoint_rows(),
                    "retro_matches": self.collector.retro_snapshot(),
                }
            if self._tap is not None:
                tap_pending, tap_flushed, _, tap_frames = (
                    self._tap.state()
                )
                archive_fields.update(
                    archive_tap_pending=tap_pending,
                    archive_tap_flushed=tap_flushed,
                    archive_tap_frames=tap_frames,
                )
        return manager.save(
            ServiceCheckpoint(
                config=self.config,
                keyframes_per_second=self.keyframes_per_second,
                chunks_ingested=self.chunks_ingested,
                cap_hint=self.cap_hint,
                strategy=self.strategy,
                worker_queries=queries,
                worker_states=states,
                matches=list(self.collector.matches),
                epoch=self.epoch,
                **frontend_fields,
                **archive_fields,
            )
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _send_stop(self, worker_id: int) -> None:
        """Deliver ``stop`` without ever wedging on a corpse.

        Supervised services route through the supervisor (which
        synthesizes delivery for dead/quarantined shards); bare
        thread/process executors get a bounded liveness-checked put so
        a dead worker with a full inbox cannot hang shutdown.
        """
        executor = self._executor
        if self._supervisor is not None or self.backend == "serial":
            executor.send(worker_id, ("stop",), BackpressurePolicy.BLOCK)
            return
        deadline = time.perf_counter() + _CLOSE_TIMEOUT_SECONDS
        while True:
            outcome = executor.send(
                worker_id, ("stop",), BackpressurePolicy.SHED
            )
            if outcome.delivered:
                return
            if not executor.is_alive(worker_id):
                return
            if time.perf_counter() >= deadline:
                return
            time.sleep(0.02)

    def close(self) -> None:
        """Stop every worker and release executor resources.

        Idempotent (a second close is a no-op) and dead-worker
        tolerant: a crashed child is skipped instead of turning
        shutdown into a deadlock or a traceback, and whatever
        shared-memory references it pinned are swept before the ring
        is unlinked.
        """
        if self._closed:
            return
        self._closed = True
        if self._backfill is not None:
            self._backfill.close()
        if self._archive is not None:
            # Graceful shutdown: make the unsealed ring durable (a
            # resumed service reconciles its checkpoint against disk).
            try:
                self._archive.seal_open_run()
            except Exception:
                pass
        if self._supervisor is not None:
            self._supervisor.begin_shutdown()
        for worker_id in range(self.num_workers):
            try:
                self._send_stop(worker_id)
            except Exception:
                continue
        for worker_id in range(self.num_workers):
            try:
                reply = self._executor.recv(
                    worker_id, timeout=_CLOSE_TIMEOUT_SECONDS
                )
                while reply[0] != "stopped":
                    reply = self._executor.recv(
                        worker_id, timeout=_CLOSE_TIMEOUT_SECONDS
                    )
            except Exception:
                continue
        self._executor.join()
        if self._ring is not None:
            swept = self._ring.sweep_all()
            if swept:
                self.registry.inc("serve.transport.shm_swept", swept)
            self._ring.close()

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
