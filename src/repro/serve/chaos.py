"""Deterministic service-layer chaos: kill, stall and poison shard workers.

PR 4's :class:`~repro.ingest.faults.FaultInjector` drills the codec and
transport layers; this module drills the *serving* layer. A
:class:`ChaosPlan` is a frozen list of :class:`ChaosEvent` objects, each
naming a worker, a failure mode and the 1-based index of the stream
message (``chunk`` / ``batch`` / ``batch_shm``) at which it fires —
control traffic (lifecycle barriers, snapshots, flushes) never triggers
an event, so a plan written against a workload stays valid regardless
of how often the supervisor injects its own probes.

The events execute *inside* the worker loop, which makes them faithful
crash simulations rather than cooperative shutdowns:

``kill``
    A process-backed worker calls ``os._exit(1)`` — no cleanup, no
    reply, exactly what a segfault or OOM kill looks like from the
    parent. A thread-backed worker abandons its loop without replying.
``stall``
    The worker sleeps ``stall_seconds`` before handling the message.
    A stall longer than the supervisor's recv deadline is
    indistinguishable from a livelock and triggers recovery.
``poison``
    The worker emits a malformed reply instead of handling the message,
    modelling protocol corruption; the supervisor must detect the bad
    frame and rebuild the shard.

Plans come from two places: an explicit comma-separated spec
(``kill:1@3,stall:0@2:0.5,poison:1@5``, i.e. ``kind:worker@seq`` with
an optional ``:seconds`` for stalls) or a seeded generator built on
:func:`~repro.utils.rng.make_rng`, so a chaos run is reproducible from
``(seed, num_workers, horizon)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.errors import ServeError
from repro.utils.rng import make_rng

__all__ = ["ChaosEvent", "ChaosPlan"]

_KINDS = ("kill", "stall", "poison")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure: ``kind`` hits ``worker_id`` immediately
    before it handles its ``at_seq``-th stream message (1-based)."""

    kind: str
    worker_id: int
    at_seq: int
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServeError(
                f"unknown chaos kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.worker_id < 0:
            raise ServeError(
                f"chaos worker_id cannot be negative ({self.worker_id})"
            )
        if self.at_seq < 1:
            raise ServeError(
                f"chaos at_seq is 1-based, got {self.at_seq}"
            )
        if self.stall_seconds < 0:
            raise ServeError(
                f"stall_seconds cannot be negative ({self.stall_seconds})"
            )
        if self.kind == "stall" and self.stall_seconds == 0:
            raise ServeError("a stall event needs stall_seconds > 0")

    def spec(self) -> str:
        """Render back to the ``kind:worker@seq[:seconds]`` spec form."""
        text = f"{self.kind}:{self.worker_id}@{self.at_seq}"
        if self.kind == "stall":
            text += f":{self.stall_seconds:g}"
        return text


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable schedule of :class:`ChaosEvent` objects."""

    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        seen = set()
        for event in self.events:
            key = (event.worker_id, event.at_seq)
            if key in seen:
                raise ServeError(
                    f"duplicate chaos event for worker {event.worker_id} "
                    f"at stream message {event.at_seq}"
                )
            seen.add(key)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate_workers(self, num_workers: int) -> None:
        for event in self.events:
            if event.worker_id >= num_workers:
                raise ServeError(
                    f"chaos event targets worker {event.worker_id} but the "
                    f"service only has {num_workers} workers"
                )

    def for_worker(self, worker_id: int) -> Tuple[ChaosEvent, ...]:
        """The worker's events, sorted by firing position."""
        return tuple(
            sorted(
                (e for e in self.events if e.worker_id == worker_id),
                key=lambda e: e.at_seq,
            )
        )

    def spec(self) -> str:
        return ",".join(
            event.spec()
            for event in sorted(
                self.events, key=lambda e: (e.at_seq, e.worker_id)
            )
        )

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        """Parse a ``kind:worker@seq[:seconds]`` comma-separated spec."""
        events: List[ChaosEvent] = []
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) not in (2, 3):
                raise ServeError(
                    f"bad chaos event {token!r} "
                    "(expected kind:worker@seq[:seconds])"
                )
            kind = parts[0].strip()
            target = parts[1].strip()
            if "@" not in target:
                raise ServeError(
                    f"bad chaos event {token!r}: missing '@seq'"
                )
            worker_text, seq_text = target.split("@", 1)
            try:
                worker_id = int(worker_text)
                at_seq = int(seq_text)
            except ValueError as exc:
                raise ServeError(
                    f"bad chaos event {token!r}: {exc}"
                ) from None
            stall_seconds = 0.0
            if len(parts) == 3:
                try:
                    stall_seconds = float(parts[2])
                except ValueError:
                    raise ServeError(
                        f"bad chaos event {token!r}: bad stall seconds"
                    ) from None
            events.append(
                ChaosEvent(
                    kind=kind,
                    worker_id=worker_id,
                    at_seq=at_seq,
                    stall_seconds=stall_seconds,
                )
            )
        return cls(events=tuple(events))

    @classmethod
    def generate(
        cls,
        seed: int,
        num_workers: int,
        horizon: int,
        events_per_worker: int = 1,
        kinds: Sequence[str] = _KINDS,
        stall_seconds: float = 0.5,
    ) -> "ChaosPlan":
        """Draw a reproducible plan from a seeded substream.

        Each worker gets ``events_per_worker`` events at distinct
        positions in ``[1, horizon]``; kinds rotate through the seeded
        stream. The same ``(seed, num_workers, horizon)`` triple always
        yields the same plan, independent of process or platform.
        """
        if horizon < 1:
            raise ServeError(f"chaos horizon must be >= 1, got {horizon}")
        events: List[ChaosEvent] = []
        for worker_id in range(num_workers):
            rng = make_rng(seed, f"chaos:w{worker_id}")
            count = min(events_per_worker, horizon)
            positions = rng.choice(
                horizon, size=count, replace=False
            )
            for position in sorted(int(p) + 1 for p in positions):
                kind = kinds[int(rng.integers(0, len(kinds)))]
                events.append(
                    ChaosEvent(
                        kind=kind,
                        worker_id=worker_id,
                        at_seq=position,
                        stall_seconds=(
                            stall_seconds if kind == "stall" else 0.0
                        ),
                    )
                )
        return cls(events=tuple(events))


def rebase_events(
    events: Sequence[ChaosEvent], consumed_cutoff: int, new_origin: int
) -> Tuple[ChaosEvent, ...]:
    """Shift a worker's surviving events into a respawned worker's frame.

    ``consumed_cutoff`` is the absolute stream-message index at or
    before which events are considered fired (or moot — the worker died
    there); ``new_origin`` is the absolute index the respawned worker's
    count restarts after (its snapshot's stream watermark). Events keep
    absolute positions > ``cutoff`` and are renumbered so the replay
    stream lines up.
    """
    survivors: List[ChaosEvent] = []
    for event in events:
        if event.at_seq <= consumed_cutoff:
            continue
        rebased = event.at_seq - new_origin
        if rebased < 1:
            continue
        survivors.append(replace(event, at_seq=rebased))
    return tuple(survivors)


def chaos_by_seq(
    events: Sequence[ChaosEvent],
) -> Dict[int, ChaosEvent]:
    """Index a single worker's events by firing position."""
    return {event.at_seq: event for event in events}
