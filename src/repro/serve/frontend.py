"""Sketch-once stream front end for the sharded detection service.

The original serving design replicated raw cell-id chunks to every
shard, and each shard independently re-ran window construction and
``(C, K)`` min-hash sketching on its identical copy of the stream — the
stream-side work of Section IV was multiplied by the worker count, so
the service got *slower* with every added worker.

:class:`StreamFrontend` factors that work out of the workers: the
service buffers the chunk stream exactly like each worker's
:class:`~repro.core.live.LiveMonitor` used to (whole basic windows cut
at the same boundaries, a partial tail only at flush), sketches every
ready window of a chunk batch in **one**
:meth:`~repro.minhash.family.MinHashFamily.sketch_many` pass, and — in
bit mode without the index — encodes the packed window-vs-query
signature planes for the *full* sorted query population in one
broadcasted :func:`~repro.signature.bitsig.encode_planes_many` kernel.
The product is a :class:`WindowBatch`: flat arrays a worker can slice
per shard (plane rows by qid) without redoing any stream-side math.

Window coordinates inside a batch are **absolute** (the front end owns
the stream clock), so a worker that never sees a batch — lossy
backpressure policies — keeps later matches at their true stream
positions instead of silently shifting them, an improvement over the
raw-chunk protocol (see ``docs/serving.md``).

Bit-for-bit equivalence: the per-window sketch values, the plane bits,
the processing order and every engine counter are identical to the
self-sketching path — the golden-equivalence suite runs the service in
both modes against the serial detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DetectorConfig, Representation
from repro.errors import ServeError
from repro.minhash.family import MinHashFamily
from repro.obs.registry import MetricsRegistry
from repro.signature.bitsig import (
    encode_planes,
    encode_planes_many,
    plane_words,
)

__all__ = ["StreamFrontend", "TailWindow", "WindowBatch"]


@dataclass(frozen=True)
class WindowBatch:
    """Precomputed stream-side artefacts for a batch of chunks.

    One batch covers ``num_chunks`` consecutive stream chunks starting
    at sequence number ``base_seq``; ``chunk_windows[i]`` whole basic
    windows were completed by chunk ``base_seq + i`` (possibly zero —
    the chunk's frames stayed buffered). All window coordinates are
    absolute stream positions.

    Attributes
    ----------
    base_seq:
        Sequence number of the first chunk in the batch.
    chunk_windows:
        ``(num_chunks,)`` int64 — whole windows completed per chunk.
    indices:
        ``(nw,)`` int64 absolute basic-window indices.
    starts:
        ``(nw,)`` int64 absolute start frames.
    frames:
        ``(nw,)`` int64 per-window frame counts (always the full window
        length; partial tails travel as :class:`TailWindow` at flush).
    sketch_values:
        ``(nw, K)`` int64 min-hash values, one row per window.
    plane_qids:
        The sorted qid tuple the plane rows are laid out against, or
        ``None`` when planes were not precomputed (index or sketch
        mode). Workers map their shard's qids to rows through this.
    ge, lt:
        ``(nw, Q, W)`` packed uint64 window-vs-query signature planes
        (``None`` alongside ``plane_qids``).
    """

    base_seq: int
    chunk_windows: np.ndarray
    indices: np.ndarray
    starts: np.ndarray
    frames: np.ndarray
    sketch_values: np.ndarray
    plane_qids: Optional[Tuple[int, ...]] = None
    ge: Optional[np.ndarray] = None
    lt: Optional[np.ndarray] = None

    @property
    def num_chunks(self) -> int:
        return int(self.chunk_windows.shape[0])

    @property
    def num_windows(self) -> int:
        return int(self.indices.shape[0])

    @property
    def nbytes(self) -> int:
        """Total payload bytes (transport accounting)."""
        total = (
            self.chunk_windows.nbytes
            + self.indices.nbytes
            + self.starts.nbytes
            + self.frames.nbytes
            + self.sketch_values.nbytes
        )
        if self.ge is not None:
            total += self.ge.nbytes + self.lt.nbytes
        return total


@dataclass(frozen=True)
class TailWindow:
    """The stream's final (possibly partial) window, built at flush.

    Same artefacts as one :class:`WindowBatch` row, but for a single
    window: ``sketch_values`` is ``(K,)`` and the planes are ``(Q, W)``.
    Small enough to travel inline on any backend.
    """

    index: int
    start_frame: int
    num_frames: int
    sketch_values: np.ndarray
    plane_qids: Optional[Tuple[int, ...]] = None
    ge: Optional[np.ndarray] = None
    lt: Optional[np.ndarray] = None


class StreamFrontend:
    """Buffers the chunk stream and sketches every window exactly once.

    Parameters
    ----------
    config:
        The shared detector configuration; decides whether signature
        planes are precomputed (bit representation without the index —
        the index path probes per shard, the sketch path needs none).
    family:
        The service's min-hash family (the queries' family).
    window_frames:
        Basic-window length in key frames.
    registry:
        The service registry; batch construction runs under its
        ``phase.frontend`` timer.
    """

    def __init__(
        self,
        config: DetectorConfig,
        family: MinHashFamily,
        window_frames: int,
        registry: MetricsRegistry,
    ) -> None:
        self.config = config
        self.family = family
        self.window_frames = int(window_frames)
        self.registry = registry
        self.precompute_planes = (
            config.representation is Representation.BIT
            and not config.use_index
        )
        self._pending = np.empty(0, dtype=np.int64)
        self._flushed = False
        self.windows_emitted = 0
        self.frames_emitted = 0
        self._qids: Tuple[int, ...] = ()
        self._matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # query layout
    # ------------------------------------------------------------------

    def set_queries(self, queries) -> None:
        """Refresh the plane layout after construction or churn.

        ``queries`` maps qid → :class:`~repro.core.query.Query`; the
        plane rows follow sorted-qid order, matching every shard's
        :meth:`~repro.core.context.EvalContext.query_columns` layout so
        workers slice rows by a simple qid → row lookup.
        """
        if not self.precompute_planes:
            return
        qids = tuple(sorted(queries))
        self._qids = qids
        self._matrix = np.stack(
            [queries[qid].sketch.values for qid in qids]
        )

    # ------------------------------------------------------------------
    # stream clock / buffer
    # ------------------------------------------------------------------

    @property
    def pending_frames(self) -> int:
        """Key frames buffered but not yet forming a full window."""
        return int(self._pending.shape[0])

    @property
    def flushed(self) -> bool:
        return self._flushed

    def state(self) -> Tuple[np.ndarray, bool, int, int]:
        """``(pending, flushed, windows_emitted, frames_emitted)`` for
        checkpointing."""
        return (
            self._pending.copy(),
            self._flushed,
            self.windows_emitted,
            self.frames_emitted,
        )

    def restore(
        self,
        pending: np.ndarray,
        flushed: bool,
        windows_emitted: int,
        frames_emitted: int,
    ) -> None:
        """Reinstate a :meth:`state` snapshot (checkpoint resume)."""
        pending = np.asarray(pending, dtype=np.int64).copy()
        if windows_emitted < 0 or frames_emitted < 0:
            raise ServeError(
                "corrupt frontend snapshot: negative stream clock"
            )
        self._pending = pending
        self._flushed = bool(flushed)
        self.windows_emitted = int(windows_emitted)
        self.frames_emitted = int(frames_emitted)

    # ------------------------------------------------------------------
    # batch construction
    # ------------------------------------------------------------------

    def build(
        self, chunks: Sequence[np.ndarray], base_seq: int
    ) -> WindowBatch:
        """Sketch (and encode) every whole window the chunks complete.

        Chunks are appended to the pending buffer in order; each one
        records how many whole windows it completed (the same cut every
        worker's ``LiveMonitor`` used to make), then all ready windows
        of the batch are sketched in one ``sketch_many`` pass.
        """
        if self._flushed:
            raise ServeError(
                "the stream has already been flushed; no more chunks"
            )
        with self.registry.phase("phase.frontend"):
            return self._build(chunks, base_seq)

    def _build(
        self, chunks: Sequence[np.ndarray], base_seq: int
    ) -> WindowBatch:
        window_frames = self.window_frames
        counts: List[int] = []
        segments: List[np.ndarray] = []
        for chunk in chunks:
            ids = np.asarray(chunk, dtype=np.int64)
            if ids.ndim != 1:
                raise ServeError(
                    f"cell ids must be 1-D, got shape {ids.shape}"
                )
            self._pending = np.concatenate([self._pending, ids])
            full = (
                self._pending.shape[0] // window_frames
            ) * window_frames
            ready, self._pending = (
                self._pending[:full],
                self._pending[full:],
            )
            counts.append(full // window_frames)
            if full:
                segments.append(ready)
        num_windows = sum(counts)
        if segments:
            stream = np.concatenate(segments)
        else:
            stream = np.empty(0, dtype=np.int64)
        distinct = [
            np.unique(stream[start : start + window_frames])
            for start in range(0, stream.shape[0], window_frames)
        ]
        sketches = self.family.sketch_many(distinct)
        if num_windows:
            sketch_values = np.stack(
                [sketch.values for sketch in sketches]
            )
        else:
            sketch_values = np.empty(
                (0, self.config.num_hashes), dtype=np.int64
            )
        indices = self.windows_emitted + np.arange(
            num_windows, dtype=np.int64
        )
        starts = self.frames_emitted + np.arange(
            num_windows, dtype=np.int64
        ) * np.int64(window_frames)
        frames = np.full(num_windows, window_frames, dtype=np.int64)
        self.windows_emitted += num_windows
        self.frames_emitted += num_windows * window_frames
        plane_qids: Optional[Tuple[int, ...]] = None
        ge = lt = None
        if self.precompute_planes and self._matrix is not None:
            plane_qids = self._qids
            if num_windows:
                ge, lt = encode_planes_many(sketch_values, self._matrix)
            else:
                width = plane_words(self.config.num_hashes)
                shape = (0, len(plane_qids), width)
                ge = np.zeros(shape, dtype=np.uint64)
                lt = np.zeros(shape, dtype=np.uint64)
        return WindowBatch(
            base_seq=int(base_seq),
            chunk_windows=np.asarray(counts, dtype=np.int64),
            indices=indices,
            starts=starts,
            frames=frames,
            sketch_values=sketch_values,
            plane_qids=plane_qids,
            ge=ge,
            lt=lt,
        )

    def flush_tail(self) -> Optional[TailWindow]:
        """Sketch the trailing partial window; ``None`` when the stream
        ended exactly on a window boundary. Marks the stream flushed."""
        if self._flushed:
            return None
        self._flushed = True
        if self._pending.shape[0] == 0:
            return None
        with self.registry.phase("phase.frontend"):
            tail, self._pending = self._pending, np.empty(
                0, dtype=np.int64
            )
            distinct = np.unique(tail)
            sketch = self.family.sketch_many([distinct])[0]
            window = TailWindow(
                index=self.windows_emitted,
                start_frame=self.frames_emitted,
                num_frames=int(tail.shape[0]),
                sketch_values=sketch.values,
                plane_qids=(
                    self._qids
                    if self.precompute_planes and self._matrix is not None
                    else None
                ),
            )
            if window.plane_qids is not None:
                ge, lt = encode_planes(sketch.values, self._matrix)
                window = TailWindow(
                    index=window.index,
                    start_frame=window.start_frame,
                    num_frames=window.num_frames,
                    sketch_values=window.sketch_values,
                    plane_qids=window.plane_qids,
                    ge=ge,
                    lt=lt,
                )
            self.windows_emitted += 1
            self.frames_emitted += window.num_frames
            return window
