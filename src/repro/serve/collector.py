"""Merging per-shard match streams back into one ordered stream.

Each worker emits the matches of *its* queries in the single-process
engine's emission order; qids across shards interleave arbitrarily. The
collector restores the canonical order of the columnar engines, which is
a pure function of the match coordinates:

* **Sequential** order emits, per window, candidates by ascending
  ``start_frame`` (the columnar store appends in arrival order and the
  fresh length-1 candidate — the largest start — last), ties by
  ascending qid (column order).
* **Geometric** order emits, per window, the just-arrived window first
  and then the ladder's suffix accumulations newest-first — strictly
  *descending* ``start_frame`` — ties by ascending qid.

``(window_index, start_frame, qid)`` uniquely identifies a match (an
engine scores each candidate/query pair at most once per window), so
sorting the merged per-chunk batch by the canonical key reproduces the
single-process stream bit-for-bit for the columnar engines. The scalar
reference engines iterate Python sets when scoring, so their *intra-
window* emission order is unspecified; the equivalence suite compares
them after canonical sorting (see ``docs/serving.md``).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Sequence, Tuple

from repro.config import CombinationOrder
from repro.core.results import Match

__all__ = ["MatchCollector", "canonical_sort_key"]


def canonical_sort_key(
    order: CombinationOrder,
) -> Callable[[Match], Tuple[int, int, int]]:
    """The engine order's deterministic match sort key."""
    if order is CombinationOrder.SEQUENTIAL:
        return lambda match: (
            match.window_index,
            match.start_frame,
            match.qid,
        )
    return lambda match: (
        match.window_index,
        -match.start_frame,
        match.qid,
    )


class MatchCollector:
    """Accumulates the merged, canonically ordered match stream.

    The service calls :meth:`merge` once per chunk (or control barrier)
    with every shard's batch for that span of the stream; batches from
    different chunks must not be interleaved — chunk boundaries are the
    merge barriers that keep the global stream ordered.

    **Retro stream.** Backfill (``repro.archive``) appends its matches
    through :meth:`add_retro` into a *separate* list: the live list
    stays exactly what an archiveless service would have collected, and
    the two never interleave (retro windows end where the query's live
    windows begin — the subscription epoch boundary). ``add_retro`` may
    be called from the backfill thread, so the retro list is guarded by
    a lock; :meth:`combined` merges both streams into global canonical
    order for reporting.
    """

    def __init__(self, order: CombinationOrder) -> None:
        self.order = order
        self._key = canonical_sort_key(order)
        self.matches: List[Match] = []
        self.retro: List[Match] = []
        self._retro_lock = threading.Lock()

    def merge(self, batches: Sequence[List[Match]]) -> List[Match]:
        """Merge one chunk's per-shard batches; return them in order."""
        merged = sorted(
            (match for batch in batches for match in batch), key=self._key
        )
        self.matches.extend(merged)
        return merged

    def add_retro(self, matches: Sequence[Match]) -> None:
        """Append backfill matches (already canonically ordered within
        and across calls per query — jobs probe windows ascending)."""
        with self._retro_lock:
            self.retro.extend(matches)

    def retro_snapshot(self) -> List[Match]:
        """A consistent copy of the retro stream."""
        with self._retro_lock:
            return list(self.retro)

    def combined(self) -> List[Match]:
        """Live + retro in one globally canonical stream."""
        with self._retro_lock:
            return sorted(self.matches + self.retro, key=self._key)

    def restore(self, matches: Sequence[Match]) -> None:
        """Reinstate a previously collected stream (checkpoint resume)."""
        self.matches = list(matches)

    def restore_retro(self, matches: Sequence[Match]) -> None:
        """Reinstate the retro stream (checkpoint resume)."""
        with self._retro_lock:
            self.retro = list(matches)

    def __len__(self) -> int:
        return len(self.matches)
