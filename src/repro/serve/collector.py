"""Merging per-shard match streams back into one ordered stream.

Each worker emits the matches of *its* queries in the single-process
engine's emission order; qids across shards interleave arbitrarily. The
collector restores the canonical order of the columnar engines, which is
a pure function of the match coordinates:

* **Sequential** order emits, per window, candidates by ascending
  ``start_frame`` (the columnar store appends in arrival order and the
  fresh length-1 candidate — the largest start — last), ties by
  ascending qid (column order).
* **Geometric** order emits, per window, the just-arrived window first
  and then the ladder's suffix accumulations newest-first — strictly
  *descending* ``start_frame`` — ties by ascending qid.

``(window_index, start_frame, qid)`` uniquely identifies a match (an
engine scores each candidate/query pair at most once per window), so
sorting the merged per-chunk batch by the canonical key reproduces the
single-process stream bit-for-bit for the columnar engines. The scalar
reference engines iterate Python sets when scoring, so their *intra-
window* emission order is unspecified; the equivalence suite compares
them after canonical sorting (see ``docs/serving.md``).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.config import CombinationOrder
from repro.core.results import Match

__all__ = ["MatchCollector", "canonical_sort_key"]


def canonical_sort_key(
    order: CombinationOrder,
) -> Callable[[Match], Tuple[int, int, int]]:
    """The engine order's deterministic match sort key."""
    if order is CombinationOrder.SEQUENTIAL:
        return lambda match: (
            match.window_index,
            match.start_frame,
            match.qid,
        )
    return lambda match: (
        match.window_index,
        -match.start_frame,
        match.qid,
    )


class MatchCollector:
    """Accumulates the merged, canonically ordered match stream.

    The service calls :meth:`merge` once per chunk (or control barrier)
    with every shard's batch for that span of the stream; batches from
    different chunks must not be interleaved — chunk boundaries are the
    merge barriers that keep the global stream ordered.
    """

    def __init__(self, order: CombinationOrder) -> None:
        self.order = order
        self._key = canonical_sort_key(order)
        self.matches: List[Match] = []

    def merge(self, batches: Sequence[List[Match]]) -> List[Match]:
        """Merge one chunk's per-shard batches; return them in order."""
        merged = sorted(
            (match for batch in batches for match in batch), key=self._key
        )
        self.matches.extend(merged)
        return merged

    def restore(self, matches: Sequence[Match]) -> None:
        """Reinstate a previously collected stream (checkpoint resume)."""
        self.matches = list(matches)

    def __len__(self) -> int:
        return len(self.matches)
