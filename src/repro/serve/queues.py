"""Bounded ingestion queues and backpressure policies.

The service broadcasts every stream chunk to every worker over a
per-worker bounded queue. When a worker falls behind and its queue
fills, the configured :class:`BackpressurePolicy` decides what the
producer does:

* ``BLOCK`` — wait for space. Ingestion slows to the slowest shard;
  nothing is lost (the only policy under which the sharded output is
  provably identical to the single-process detector).
* ``DROP_OLDEST`` — steal the oldest queued chunk to make room. The
  worker never sees the stolen chunk, so its window clock falls behind
  the stream: subsequent matches from that shard carry shifted frame
  coordinates. This is deliberate load shedding, not transparent
  degradation (see ``docs/serving.md``).
* ``SHED`` — reject the new chunk for that worker; the queue's contents
  survive. Same caveat as ``DROP_OLDEST``, biased toward old data.

Every outcome is observable: the service counts delivered / dropped /
shed chunks and blocked wall-clock per worker under the ``serve.*``
metric namespace.

The service only applies a non-blocking policy to *chunk* messages;
control messages (flush, subscribe, checkpoint, stop) are always
delivered with ``BLOCK`` so a queue under pressure can never lose them.
"""

from __future__ import annotations

import enum
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ServeError

__all__ = [
    "BackpressurePolicy",
    "BoundedChannel",
    "PutOutcome",
    "put_with_policy",
    "queue_depth",
]


class BackpressurePolicy(enum.Enum):
    """What the producer does when a worker's chunk queue is full."""

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    SHED = "shed"


@dataclass
class PutOutcome:
    """What happened to one producer-side put.

    Attributes
    ----------
    delivered:
        Whether the item entered the queue (False only under ``SHED``).
    dropped:
        Items stolen from the queue to make room (``DROP_OLDEST``); the
        service uses their sequence numbers to track which chunks a
        worker will never process.
    blocked_seconds:
        Wall-clock the producer spent waiting (``BLOCK``).
    """

    delivered: bool
    dropped: List[object] = field(default_factory=list)
    blocked_seconds: float = 0.0


class BoundedChannel:
    """A bounded FIFO with policy-aware puts (thread backend).

    The standard library's :class:`queue.Queue` cannot atomically steal
    its oldest element, so the thread executor uses this small
    condition-variable channel instead. ``get`` blocks until an item is
    available; ``put`` applies a :class:`BackpressurePolicy`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(
        self,
        item: object,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
    ) -> PutOutcome:
        """Append ``item`` under ``policy``; never raises on pressure."""
        with self._lock:
            if len(self._items) < self.capacity:
                self._items.append(item)
                self._not_empty.notify()
                return PutOutcome(delivered=True)
            if policy is BackpressurePolicy.SHED:
                return PutOutcome(delivered=False)
            if policy is BackpressurePolicy.DROP_OLDEST:
                dropped = [self._items.popleft()]
                self._items.append(item)
                self._not_empty.notify()
                return PutOutcome(delivered=True, dropped=dropped)
            started = time.perf_counter()
            while len(self._items) >= self.capacity:
                self._not_full.wait()
            self._items.append(item)
            self._not_empty.notify()
            return PutOutcome(
                delivered=True,
                blocked_seconds=time.perf_counter() - started,
            )

    def get(self) -> object:
        """Pop the oldest item, blocking until one is available."""
        with self._lock:
            while not self._items:
                self._not_empty.wait()
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def peek(self) -> Optional[object]:
        """The oldest item without removing it (None when empty).

        Deficit-weighted scheduling (``repro.ingest``) must price a
        chunk before deciding whether the stream's credit covers it.
        """
        with self._lock:
            return self._items[0] if self._items else None


def put_with_policy(
    target: "queue_module.Queue",
    item: object,
    policy: BackpressurePolicy,
    poll_seconds: float = 0.05,
) -> PutOutcome:
    """Policy-aware put onto a multiprocessing (or stdlib) queue.

    ``multiprocessing.Queue`` offers no atomic steal either, so
    ``DROP_OLDEST`` is emulated: steal the oldest pending message (the
    parent is a legal consumer of its own queue), then retry the put.
    The loop handles the race where the worker drains the queue between
    the steal and the retry.
    """
    try:
        target.put_nowait(item)
        return PutOutcome(delivered=True)
    except queue_module.Full:
        pass

    if policy is BackpressurePolicy.SHED:
        return PutOutcome(delivered=False)

    if policy is BackpressurePolicy.DROP_OLDEST:
        dropped: List[object] = []
        while True:
            try:
                dropped.append(target.get_nowait())
            except queue_module.Empty:
                pass
            try:
                target.put_nowait(item)
                return PutOutcome(delivered=True, dropped=dropped)
            except queue_module.Full:
                continue

    started = time.perf_counter()
    while True:
        try:
            target.put(item, timeout=poll_seconds)
            return PutOutcome(
                delivered=True,
                blocked_seconds=time.perf_counter() - started,
            )
        except queue_module.Full:
            continue


def queue_depth(target: object) -> Optional[int]:
    """Best-effort queue depth (``qsize`` is unimplemented on some
    platforms for multiprocessing queues)."""
    if isinstance(target, BoundedChannel):
        return len(target)
    try:
        return int(target.qsize())
    except (NotImplementedError, AttributeError):
        return None
