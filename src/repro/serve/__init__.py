"""Sharded multi-worker serving of the streaming copy detector.

The single-process :class:`~repro.core.detector.StreamingDetector`
scales with the number of subscribed queries; this package scales it
*out*: the query set is partitioned into balanced shards
(:mod:`~repro.serve.planner`), each shard runs a complete detector in
its own worker (serial, thread or process backend) fed an identical
copy of the stream over bounded queues (:mod:`~repro.serve.queues`),
and the per-shard match streams merge back into the single-process
engine's canonical order (:mod:`~repro.serve.collector`). The merged
output under the blocking backpressure policy is bit-for-bit the
single-process detector's — same matches, same order, and per-shard
counters that sum (or replicate, for stream-scoped ones) to the serial
values.

:class:`~repro.serve.service.DetectionService` is the façade;
:class:`~repro.serve.checkpoint.CheckpointManager` snapshots a running
service to one atomic ``.npz`` and restores it mid-stream with zero
match loss. ``repro serve`` exposes the whole stack on the command
line. See ``docs/serving.md`` for the architecture.
"""

from repro.errors import WorkerDeadError, WorkerStallError
from repro.serve.chaos import ChaosEvent, ChaosPlan
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    COMPATIBLE_FORMATS,
    CheckpointManager,
    ServiceCheckpoint,
)
from repro.serve.collector import MatchCollector, canonical_sort_key
from repro.serve.frontend import StreamFrontend, TailWindow, WindowBatch
from repro.serve.planner import ShardPlan, ShardPlanner
from repro.serve.queues import (
    BackpressurePolicy,
    BoundedChannel,
    PutOutcome,
    put_with_policy,
    queue_depth,
)
from repro.serve.service import BACKENDS, DetectionService, QueryInfo
from repro.serve.shm import (
    BatchDescriptor,
    ShmBatchReader,
    ShmBatchRing,
    shm_available,
)
from repro.serve.state import restore_worker_state, worker_state
from repro.serve.supervisor import ShardSupervisor, SupervisorConfig
from repro.serve.workers import ShardWorker, WorkerSpec

__all__ = [
    "BACKENDS",
    "BackpressurePolicy",
    "BatchDescriptor",
    "BoundedChannel",
    "CHECKPOINT_FORMAT",
    "COMPATIBLE_FORMATS",
    "ChaosEvent",
    "ChaosPlan",
    "CheckpointManager",
    "DetectionService",
    "MatchCollector",
    "PutOutcome",
    "QueryInfo",
    "ServiceCheckpoint",
    "ShardPlan",
    "ShardPlanner",
    "ShardSupervisor",
    "ShardWorker",
    "ShmBatchReader",
    "ShmBatchRing",
    "StreamFrontend",
    "SupervisorConfig",
    "TailWindow",
    "WindowBatch",
    "WorkerDeadError",
    "WorkerSpec",
    "WorkerStallError",
    "canonical_sort_key",
    "put_with_policy",
    "queue_depth",
    "restore_worker_state",
    "shm_available",
    "worker_state",
]
