"""Per-shard detection workers and their message protocol.

Each worker owns one complete detection stack for its query shard: a
private :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.core.detector.StreamingDetector` constructed with the
*global* candidate cap hint (so candidate lifecycle matches the
single-process detector — see
:meth:`~repro.core.context.EvalContext.set_cap_hint`), and a
:class:`~repro.core.live.LiveMonitor` front end that assembles the
worker's identical copy of the stream into basic windows.

The protocol is plain tuples (picklable for the process backend); every
request produces exactly one reply, so the service can run workers in
lock step without extra sequencing:

==================================  =====================================
request                             reply
==================================  =====================================
``("chunk", seq, cell_ids)``        ``("matches", wid, seq, [Match, ...])``
``("batch", WindowBatch)``          ``("matches_batch", wid, base_seq,
                                    [[Match, ...], ...])``
``("batch_shm", BatchDescriptor)``  same as ``batch``
``("flush",)``                      ``("flushed", wid, [Match, ...])``
``("flush", TailWindow | None)``    ``("flushed", wid, [Match, ...])``
``("lifecycle", epoch, ops, hint)`` ``("ok", wid)``
``("subscribe", query)``            ``("ok", wid)``
``("unsubscribe", qid)``            ``("ok", wid)``
``("cap_hint", hint)``              ``("ok", wid)``
``("state",)``                      ``("state", wid, {...})``
``("snapshot",)``                   ``("snapshot", wid, {...})``
``("stop",)``                       ``("stopped", wid)``
==================================  =====================================

``chunk`` is the self-sketching reference path: the worker's
:class:`LiveMonitor` buffers the raw cell ids and re-sketches every
window locally. ``batch`` is the sketch-once fan-out: the service's
:class:`~repro.serve.frontend.StreamFrontend` already built the
windows, so the worker rebuilds each :class:`BasicWindow` from the
shipped sketch rows (copying the small ``(nw, K)`` matrix once — the
scalar engines retain sketch references across windows, so the rows
must be worker-owned) and, when planes were precomputed, slices its
shard's plane rows out of the ``(nw, Q, W)`` arrays by qid (fancy
indexing, which also copies). The reply carries one match list per
chunk of the batch so the service can merge per stream sequence.
``batch_shm`` is the same payload delivered as a shared-memory
descriptor (process backend); no view into the segment survives the
message. The extended ``flush`` carries the front end's partial tail
window (or ``None``); the bare form remains the reference path's.

``lifecycle`` is the epoch barrier of the query-admission control
plane (see ``docs/serving.md``): the service broadcasts one message per
churn event to *every* worker on the same channel as chunks, carrying
this worker's (possibly empty) op list — ``("subscribe", Query)`` or
``("unsubscribe", qid)`` tuples — plus the new global ``cap_hint``.
Because it is ordered with the chunk stream, every shard applies the
change at the same basic-window boundary, keeping the merged match
stream deterministic. The worker records the epoch number; it rides
along in state snapshots so a resumed service knows exactly which
lifecycle events the checkpoint already contains. The three bare
``subscribe``/``unsubscribe``/``cap_hint`` messages remain for direct
single-worker use (e.g. the ingest layer's one-worker sessions).

A worker never lets an exception escape: any failure is reported as
``("error", wid, message)`` and the worker keeps serving, so one bad
control message cannot orphan a process worker mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.minhash.sketch import Sketch
from repro.minhash.windows import BasicWindow
from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.frontend import TailWindow, WindowBatch
from repro.serve.state import restore_worker_state, worker_state

__all__ = ["ShardWorker", "WorkerSpec"]

#: Batched windows ship no cell ids — nothing downstream of sketching
#: reads them (the sketch and the planes are the stream's fingerprint).
_EMPTY_CELL_IDS = np.empty(0, dtype=np.int64)


@dataclass
class WorkerSpec:
    """Everything needed to build one shard's worker, in any process.

    Attributes
    ----------
    worker_id:
        The shard index (stable across checkpoint/restore).
    config:
        The shared detector configuration.
    queries:
        This shard's query subset.
    keyframes_per_second:
        Stream cadence.
    cap_hint:
        The *global* max candidate horizon (max over every subscribed
        query in every shard) — the equivalence-critical floor on this
        worker's candidate expiry.
    timing_enabled:
        Whether the worker's registry records phase wall-clock.
    state:
        Optional :func:`~repro.serve.state.worker_state` snapshot to
        restore on construction (checkpoint resume).
    epoch:
        The lifecycle epoch this worker starts at (0 for a fresh
        service; the recorded per-shard epoch on checkpoint resume).
    chaos:
        Scheduled :class:`~repro.serve.chaos.ChaosEvent` failures this
        worker executes against itself (testing only); positions are
        1-based over this worker's *stream* messages.
    """

    worker_id: int
    config: DetectorConfig
    queries: QuerySet
    keyframes_per_second: float
    cap_hint: int
    timing_enabled: bool = True
    state: Optional[Dict[str, np.ndarray]] = None
    epoch: int = 0
    chaos: Tuple = ()


class ShardWorker:
    """One shard's detector stack plus the request dispatcher."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.worker_id = spec.worker_id
        self.registry = MetricsRegistry(timing_enabled=spec.timing_enabled)
        self.detector = StreamingDetector(
            config=spec.config,
            queries=spec.queries,
            keyframes_per_second=spec.keyframes_per_second,
            registry=self.registry,
            cap_hint=spec.cap_hint,
        )
        self.monitor = LiveMonitor(self.detector)
        self.epoch = int(spec.epoch)
        self._shm_reader = None
        self._plane_rows_cache: Optional[Tuple[Tuple, np.ndarray]] = None
        if spec.state is not None:
            restore_worker_state(self.detector, self.monitor, spec.state)

    def handle(self, message: Tuple) -> Tuple:
        """Dispatch one request tuple; exceptions become error replies."""
        try:
            return self._dispatch(message)
        except Exception as error:  # noqa: BLE001 — workers must survive
            return ("error", self.worker_id, f"{type(error).__name__}: {error}")

    def _dispatch(self, message: Tuple) -> Tuple:
        kind = message[0]
        if kind == "chunk":
            _, seq, cell_ids = message
            matches = self.monitor.push_cell_ids(
                np.asarray(cell_ids, dtype=np.int64)
            )
            return ("matches", self.worker_id, seq, matches)
        if kind == "batch":
            batch = message[1]
            return (
                "matches_batch",
                self.worker_id,
                batch.base_seq,
                self._process_batch(batch),
            )
        if kind == "batch_shm":
            batch = self._decode_shm(message[1])
            return (
                "matches_batch",
                self.worker_id,
                batch.base_seq,
                self._process_batch(batch),
            )
        if kind == "flush":
            tail = message[1] if len(message) > 1 else None
            matches: List[Match] = []
            if tail is not None:
                matches.extend(self._process_tail(tail))
            matches.extend(self.monitor.flush())
            return ("flushed", self.worker_id, matches)
        if kind == "lifecycle":
            _, epoch, ops, cap_hint = message
            for op in ops:
                if op[0] == "subscribe":
                    self.detector.subscribe(op[1])
                elif op[0] == "unsubscribe":
                    self.detector.unsubscribe(op[1])
                else:
                    raise ValueError(f"unknown lifecycle op {op[0]!r}")
            self.detector.set_cap_hint(int(cap_hint))
            self.epoch = int(epoch)
            return ("ok", self.worker_id)
        if kind == "subscribe":
            self.detector.subscribe(message[1])
            return ("ok", self.worker_id)
        if kind == "unsubscribe":
            self.detector.unsubscribe(message[1])
            return ("ok", self.worker_id)
        if kind == "cap_hint":
            self.detector.set_cap_hint(int(message[1]))
            return ("ok", self.worker_id)
        if kind == "state":
            state = worker_state(self.detector, self.monitor)
            state["epoch"] = np.asarray([self.epoch], dtype=np.int64)
            return ("state", self.worker_id, state)
        if kind == "snapshot":
            return ("snapshot", self.worker_id, snapshot(self.registry))
        if kind == "stop":
            return ("stopped", self.worker_id)
        return ("error", self.worker_id, f"unknown message kind {kind!r}")

    # ------------------------------------------------------------------
    # sketch-once batch handling
    # ------------------------------------------------------------------

    def _decode_shm(self, descriptor) -> WindowBatch:
        if self._shm_reader is None:
            from repro.serve.shm import ShmBatchReader

            self._shm_reader = ShmBatchReader()
        return self._shm_reader.read(descriptor)

    def _plane_rows(
        self, plane_qids: Optional[Tuple[int, ...]]
    ) -> Optional[np.ndarray]:
        """Map this shard's sorted qids to rows of the batch planes.

        Cached on ``(plane layout, shard layout)`` — either side changes
        only at a lifecycle barrier, so the mapping is computed once per
        epoch, not once per batch.
        """
        if plane_qids is None:
            return None
        shard_qids = self.detector.context.query_columns().qids
        key = (plane_qids, shard_qids)
        if (
            self._plane_rows_cache is not None
            and self._plane_rows_cache[0] == key
        ):
            return self._plane_rows_cache[1]
        position = {qid: row for row, qid in enumerate(plane_qids)}
        try:
            rows = np.asarray(
                [position[qid] for qid in shard_qids], dtype=np.intp
            )
        except KeyError as error:
            raise ValueError(
                f"batch planes are missing query {error}; the front "
                "end's query layout is behind this shard's"
            )
        self._plane_rows_cache = (key, rows)
        return rows

    def _process_batch(self, batch: WindowBatch) -> List[List[Match]]:
        """Run every precomputed window; one match list per chunk."""
        detector = self.detector
        fingerprint = detector.queries.family.fingerprint
        # Worker-owned copy: scalar engines keep candidate sketches by
        # reference, and a shared-memory row would be overwritten when
        # the producer reuses the slot.
        values = np.array(batch.sketch_values, dtype=np.int64)
        rows = self._plane_rows(batch.plane_qids)
        indices = batch.indices
        starts = batch.starts
        frames = batch.frames
        per_chunk: List[List[Match]] = []
        position = 0
        for count in batch.chunk_windows.tolist():
            chunk_matches: List[Match] = []
            for j in range(position, position + int(count)):
                window = BasicWindow(
                    index=int(indices[j]),
                    start_frame=int(starts[j]),
                    num_frames=int(frames[j]),
                    cell_ids=_EMPTY_CELL_IDS,
                    sketch=Sketch._raw(values[j], fingerprint),
                )
                planes = None
                if rows is not None:
                    # Fancy indexing copies the shard's rows out of the
                    # (possibly shared-memory) planes.
                    planes = (batch.ge[j][rows], batch.lt[j][rows])
                chunk_matches.extend(
                    detector.process_window(window, planes=planes)
                )
            position += int(count)
            per_chunk.append(chunk_matches)
        return per_chunk

    def _process_tail(self, tail: TailWindow) -> List[Match]:
        """Run the front end's final (possibly partial) window."""
        fingerprint = self.detector.queries.family.fingerprint
        values = np.array(tail.sketch_values, dtype=np.int64)
        window = BasicWindow(
            index=int(tail.index),
            start_frame=int(tail.start_frame),
            num_frames=int(tail.num_frames),
            cell_ids=_EMPTY_CELL_IDS,
            sketch=Sketch._raw(values, fingerprint),
        )
        rows = self._plane_rows(tail.plane_qids)
        planes = None
        if rows is not None:
            planes = (tail.ge[rows], tail.lt[rows])
        return self.detector.process_window(window, planes=planes)

    def release_resources(self) -> None:
        """Detach transport attachments (worker shutdown)."""
        if self._shm_reader is not None:
            self._shm_reader.close()
            self._shm_reader = None


#: Request kinds that advance a worker's chaos position — the stream
#: itself, never control traffic (so supervisor probes cannot shift a
#: plan's firing points).
_STREAM_KINDS = frozenset({"chunk", "batch", "batch_shm"})


def _execute_chaos(worker: ShardWorker, event, outbox) -> bool:
    """Run one scheduled failure inside the worker loop.

    Returns True when the loop must abandon the current message (kill /
    poison); a stall falls through to normal handling after sleeping.
    """
    import threading
    import time

    if event.kind == "stall":
        time.sleep(event.stall_seconds)
        return False
    if event.kind == "poison":
        outbox.put(("chaos-poison", worker.worker_id, event.at_seq))
        return True
    # kill: die the way a crash does — no reply, no cleanup handshake.
    if threading.current_thread() is threading.main_thread():
        # Process backend: the loop owns the child's main thread.
        import os

        os._exit(1)
    return True


def _worker_loop(spec: WorkerSpec, inbox, outbox) -> None:
    """Request/reply loop shared by the thread and process backends.

    Runs until a ``stop`` request; its reply is sent before returning so
    the parent can join deterministically. When the spec carries chaos
    events, each stream message is checked against the schedule before
    handling — a ``kill`` abandons the loop without replying (process
    workers hard-exit), a ``poison`` substitutes a malformed reply, a
    ``stall`` sleeps first.
    """
    worker = ShardWorker(spec)
    chaos = {event.at_seq: event for event in (spec.chaos or ())}
    stream_seen = 0
    while True:
        message = inbox.get()
        if chaos and message[0] in _STREAM_KINDS:
            stream_seen += 1
            event = chaos.pop(stream_seen, None)
            if event is not None and _execute_chaos(worker, event, outbox):
                if event.kind == "kill":
                    return
                continue
        reply = worker.handle(message)
        outbox.put(reply)
        if reply[0] == "stopped":
            worker.release_resources()
            return
