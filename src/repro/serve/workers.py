"""Per-shard detection workers and their message protocol.

Each worker owns one complete detection stack for its query shard: a
private :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.core.detector.StreamingDetector` constructed with the
*global* candidate cap hint (so candidate lifecycle matches the
single-process detector — see
:meth:`~repro.core.context.EvalContext.set_cap_hint`), and a
:class:`~repro.core.live.LiveMonitor` front end that assembles the
worker's identical copy of the stream into basic windows.

The protocol is plain tuples (picklable for the process backend); every
request produces exactly one reply, so the service can run workers in
lock step without extra sequencing:

==================================  =====================================
request                             reply
==================================  =====================================
``("chunk", seq, cell_ids)``        ``("matches", wid, seq, [Match, ...])``
``("flush",)``                      ``("flushed", wid, [Match, ...])``
``("lifecycle", epoch, ops, hint)`` ``("ok", wid)``
``("subscribe", query)``            ``("ok", wid)``
``("unsubscribe", qid)``            ``("ok", wid)``
``("cap_hint", hint)``              ``("ok", wid)``
``("state",)``                      ``("state", wid, {...})``
``("snapshot",)``                   ``("snapshot", wid, {...})``
``("stop",)``                       ``("stopped", wid)``
==================================  =====================================

``lifecycle`` is the epoch barrier of the query-admission control
plane (see ``docs/serving.md``): the service broadcasts one message per
churn event to *every* worker on the same channel as chunks, carrying
this worker's (possibly empty) op list — ``("subscribe", Query)`` or
``("unsubscribe", qid)`` tuples — plus the new global ``cap_hint``.
Because it is ordered with the chunk stream, every shard applies the
change at the same basic-window boundary, keeping the merged match
stream deterministic. The worker records the epoch number; it rides
along in state snapshots so a resumed service knows exactly which
lifecycle events the checkpoint already contains. The three bare
``subscribe``/``unsubscribe``/``cap_hint`` messages remain for direct
single-worker use (e.g. the ingest layer's one-worker sessions).

A worker never lets an exception escape: any failure is reported as
``("error", wid, message)`` and the worker keeps serving, so one bad
control message cannot orphan a process worker mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.state import restore_worker_state, worker_state

__all__ = ["ShardWorker", "WorkerSpec"]


@dataclass
class WorkerSpec:
    """Everything needed to build one shard's worker, in any process.

    Attributes
    ----------
    worker_id:
        The shard index (stable across checkpoint/restore).
    config:
        The shared detector configuration.
    queries:
        This shard's query subset.
    keyframes_per_second:
        Stream cadence.
    cap_hint:
        The *global* max candidate horizon (max over every subscribed
        query in every shard) — the equivalence-critical floor on this
        worker's candidate expiry.
    timing_enabled:
        Whether the worker's registry records phase wall-clock.
    state:
        Optional :func:`~repro.serve.state.worker_state` snapshot to
        restore on construction (checkpoint resume).
    epoch:
        The lifecycle epoch this worker starts at (0 for a fresh
        service; the recorded per-shard epoch on checkpoint resume).
    """

    worker_id: int
    config: DetectorConfig
    queries: QuerySet
    keyframes_per_second: float
    cap_hint: int
    timing_enabled: bool = True
    state: Optional[Dict[str, np.ndarray]] = None
    epoch: int = 0


class ShardWorker:
    """One shard's detector stack plus the request dispatcher."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.worker_id = spec.worker_id
        self.registry = MetricsRegistry(timing_enabled=spec.timing_enabled)
        self.detector = StreamingDetector(
            config=spec.config,
            queries=spec.queries,
            keyframes_per_second=spec.keyframes_per_second,
            registry=self.registry,
            cap_hint=spec.cap_hint,
        )
        self.monitor = LiveMonitor(self.detector)
        self.epoch = int(spec.epoch)
        if spec.state is not None:
            restore_worker_state(self.detector, self.monitor, spec.state)

    def handle(self, message: Tuple) -> Tuple:
        """Dispatch one request tuple; exceptions become error replies."""
        try:
            return self._dispatch(message)
        except Exception as error:  # noqa: BLE001 — workers must survive
            return ("error", self.worker_id, f"{type(error).__name__}: {error}")

    def _dispatch(self, message: Tuple) -> Tuple:
        kind = message[0]
        if kind == "chunk":
            _, seq, cell_ids = message
            matches = self.monitor.push_cell_ids(
                np.asarray(cell_ids, dtype=np.int64)
            )
            return ("matches", self.worker_id, seq, matches)
        if kind == "flush":
            return ("flushed", self.worker_id, self.monitor.flush())
        if kind == "lifecycle":
            _, epoch, ops, cap_hint = message
            for op in ops:
                if op[0] == "subscribe":
                    self.detector.subscribe(op[1])
                elif op[0] == "unsubscribe":
                    self.detector.unsubscribe(op[1])
                else:
                    raise ValueError(f"unknown lifecycle op {op[0]!r}")
            self.detector.set_cap_hint(int(cap_hint))
            self.epoch = int(epoch)
            return ("ok", self.worker_id)
        if kind == "subscribe":
            self.detector.subscribe(message[1])
            return ("ok", self.worker_id)
        if kind == "unsubscribe":
            self.detector.unsubscribe(message[1])
            return ("ok", self.worker_id)
        if kind == "cap_hint":
            self.detector.set_cap_hint(int(message[1]))
            return ("ok", self.worker_id)
        if kind == "state":
            state = worker_state(self.detector, self.monitor)
            state["epoch"] = np.asarray([self.epoch], dtype=np.int64)
            return ("state", self.worker_id, state)
        if kind == "snapshot":
            return ("snapshot", self.worker_id, snapshot(self.registry))
        if kind == "stop":
            return ("stopped", self.worker_id)
        return ("error", self.worker_id, f"unknown message kind {kind!r}")


def _worker_loop(spec: WorkerSpec, inbox, outbox) -> None:
    """Request/reply loop shared by the thread and process backends.

    Runs until a ``stop`` request; its reply is sent before returning so
    the parent can join deterministically.
    """
    worker = ShardWorker(spec)
    while True:
        message = inbox.get()
        reply = worker.handle(message)
        outbox.put(reply)
        if reply[0] == "stopped":
            return
