"""Self-healing shard supervision: detect, restart, replay, quarantine.

:class:`ShardSupervisor` sits between :class:`DetectionService` and a
thread/process executor, presenting the same ``send``/``recv``/
``depth``/``join`` surface while making worker death survivable. It
exploits the protocol's one-reply-per-request discipline
(:mod:`repro.serve.workers`): requests to a worker are logged with a
per-worker sequence number, replies are matched FIFO against that log,
and the *acked watermark* — the highest logged request whose reply has
been consumed — tells the supervisor exactly which messages a dead
worker had finished.

Failure detection uses three signals:

* **dead** — the executor's liveness-aware ``recv``/``send`` report the
  worker's process or thread gone (:class:`~repro.errors.WorkerDeadError`);
* **stalled** — the worker is alive but produced no reply within the
  configured deadline (:class:`~repro.errors.WorkerStallError`);
* **poisoned** — a reply arrived that does not validate against the
  request at the head of the log (wrong kind, wrong worker id, wrong
  sequence), i.e. protocol corruption.

Recovery is *local to the shard* and invisible to the merged match
stream: the worker is killed and respawned from the shard's most recent
rolling snapshot — a ``("state",)`` probe the supervisor injects into
the request stream every ``snapshot_every`` stream messages, whose
reply carries the full :func:`~repro.serve.state.worker_state` dict —
and every logged request after that snapshot is replayed in order.
Replayed requests that were already acked before death have their
replies silently discarded (the service saw them once); the rest flow
to the service exactly as an uninterrupted worker's would, so the
output is bit-for-bit identical. Shared-memory batches are replayed
from their inline shadow copies (the service provides them at ``send``
time), never from ring slots that may since have been reused — and the
service's drain loop still releases each armed slot exactly once
because every outstanding ``batch_shm`` request still produces exactly
one reply.

A per-shard circuit breaker (``max_restarts`` with exponential backoff)
bounds how hard a flapping shard is fought for. Past the budget the
shard is **quarantined**: its worker is killed for good and the
supervisor synthesizes protocol-shaped empty replies (no matches, ok
barriers, snapshot state frozen at the last good snapshot) so the
service keeps running degraded — surviving shards bit-for-bit correct,
the quarantined shard's queries reported ``degraded`` and its matches
missing rather than the whole service wedged. Everything is counted
under ``serve.supervisor.*``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.query import Query, QuerySet
from repro.errors import ServeError, WorkerDeadError, WorkerStallError
from repro.obs.export import snapshot as registry_snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.chaos import rebase_events
from repro.serve.queues import BackpressurePolicy, PutOutcome
from repro.serve.workers import ShardWorker, WorkerSpec

__all__ = ["ShardSupervisor", "SupervisorConfig"]

#: Stream-carrying request kinds — what the replay buffer is *for*.
_STREAM_KINDS = frozenset({"chunk", "batch", "batch_shm"})

#: Expected reply kind per request kind (the protocol table).
_REPLY_KIND = {
    "chunk": "matches",
    "batch": "matches_batch",
    "batch_shm": "matches_batch",
    "flush": "flushed",
    "lifecycle": "ok",
    "subscribe": "ok",
    "unsubscribe": "ok",
    "cap_hint": "ok",
    "state": "state",
    "snapshot": "snapshot",
    "stop": "stopped",
}

# Liveness-poll cadence for bounded sends. Short enough that a full
# inbox costs a supervised service little versus the unsupervised
# blocking put (which wakes the instant a slot frees), long enough
# that a genuinely wedged worker is not busy-polled.
_SEND_POLL_SECONDS = 0.005


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervision loop.

    Attributes
    ----------
    recv_deadline:
        Seconds a worker may go silent (while alive) before it is
        declared stalled and recovered. Also bounds how long a blocked
        ``send`` waits between liveness checks.
    snapshot_every:
        Rolling-snapshot cadence in *stream* messages per worker; this
        is also the bound on the replay buffer (at most one cadence of
        batches is kept and replayed).
    max_restarts:
        Per-shard circuit breaker: restarts past this budget quarantine
        the shard.
    backoff_seconds:
        Base of the exponential restart backoff (doubling per restart).
    backoff_cap:
        Upper bound on a single backoff sleep.
    """

    recv_deadline: float = 5.0
    snapshot_every: int = 8
    max_restarts: int = 3
    backoff_seconds: float = 0.0
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.recv_deadline <= 0:
            raise ServeError(
                f"recv_deadline must be > 0, got {self.recv_deadline}"
            )
        if self.snapshot_every < 1:
            raise ServeError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.max_restarts < 0:
            raise ServeError(
                f"max_restarts cannot be negative ({self.max_restarts})"
            )
        if self.backoff_seconds < 0 or self.backoff_cap < 0:
            raise ServeError("backoff settings cannot be negative")


class _Poisoned(Exception):
    """Internal: the head-of-log reply failed validation."""


@dataclass
class _Entry:
    """One logged request awaiting (or replayed for) its reply."""

    seq: int
    kind: str
    sent_message: Tuple
    replay_message: Tuple
    origin: str  # "service" | "probe"
    stream_index: Optional[int]
    num_chunks: int = 0
    discard: bool = False
    synthesize: bool = False
    # Probe-only capture of the shard's logical state at enqueue time:
    queries: Optional[QuerySet] = None
    cap_hint: int = 0
    epoch: int = 0
    stream_count: int = 0


@dataclass
class _Snapshot:
    """The restore point a respawned worker is rebuilt from."""

    state: Optional[Dict]
    queries: QuerySet
    cap_hint: int
    epoch: int
    seq: int
    stream_count: int


class _Shard:
    """Supervision state for one worker."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.id = spec.worker_id
        self.seq = 0
        self.acked = 0
        self.stream_sent = 0
        self.since_snapshot = 0
        self.pending: Deque[_Entry] = deque()
        self.log: List[_Entry] = []
        self.out: Deque[Tuple] = deque()
        self.snapshot = _Snapshot(
            state=spec.state,
            queries=spec.queries,
            cap_hint=spec.cap_hint,
            epoch=spec.epoch,
            seq=0,
            stream_count=0,
        )
        self.mirror: Dict[int, Query] = {
            qid: spec.queries.get(qid) for qid in spec.queries.query_ids
        }
        self.cap_hint = spec.cap_hint
        self.epoch = spec.epoch
        self.chaos = tuple(spec.chaos or ())
        self.restarts = 0
        self.quarantined = False
        self.stopping = False
        self.generation = 0


class ShardSupervisor:
    """Executor wrapper that makes shard workers self-healing.

    Parameters
    ----------
    executor:
        The underlying thread/process executor (must expose the
        liveness extensions: ``recv(timeout=)``, ``try_recv``,
        ``is_alive``, ``kill``, ``respawn``).
    specs:
        The :class:`WorkerSpec` each worker was built from — the
        zero-point snapshot (and respawn template) per shard.
    config:
        :class:`SupervisorConfig`; defaults are production-ish.
    registry:
        Service registry for the ``serve.supervisor.*`` series.
    """

    def __init__(
        self,
        executor,
        specs: List[WorkerSpec],
        config: Optional[SupervisorConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        for method in ("try_recv", "is_alive", "kill", "respawn"):
            if not hasattr(executor, method):
                raise ServeError(
                    f"executor {type(executor).__name__} lacks the "
                    f"{method!r} liveness extension needed for supervision"
                )
        self._base = executor
        self.config = config or SupervisorConfig()
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._shards = [_Shard(spec) for spec in specs]
        self._family = specs[0].queries.family
        self._shutdown = False
        for name in (
            "serve.supervisor.kills",
            "serve.supervisor.restarts",
            "serve.supervisor.replayed_batches",
            "serve.supervisor.replayed_messages",
            "serve.supervisor.quarantines",
            "serve.supervisor.snapshots",
            "serve.supervisor.stalls",
            "serve.supervisor.poisoned",
        ):
            self.registry.inc(name, 0)
        self.registry.set_gauge("serve.supervisor.quarantined", 0)

    # ------------------------------------------------------------------
    # executor surface
    # ------------------------------------------------------------------

    def send(
        self,
        worker_id: int,
        message: Tuple,
        policy: BackpressurePolicy,
        shadow: Optional[Tuple] = None,
    ) -> PutOutcome:
        """Log and forward one request.

        ``shadow`` is the inline-replayable form of a message whose
        wire form is not durable (a ``batch_shm`` descriptor whose ring
        slot will be recycled); the log stores the shadow, the wire
        carries the original.
        """
        shard = self._shards[worker_id]
        entry = self._make_entry(shard, message, shadow)
        self._apply_mirror(shard, message)
        if shard.quarantined or (
            self._shutdown and not self._base.is_alive(worker_id)
        ):
            entry.synthesize = True
            shard.pending.append(entry)
            return PutOutcome(delivered=True)
        if policy is BackpressurePolicy.BLOCK:
            outcome = self._put_bounded(shard, entry)
        else:
            outcome = self._base.send(worker_id, entry.sent_message, policy)
        if entry.synthesize:
            return outcome
        if not outcome.delivered:
            # Shed before entering the queue: no reply will ever come,
            # so the request must not occupy the log.
            return outcome
        shard.log.append(entry)
        shard.pending.append(entry)
        for item in outcome.dropped:
            self._forget(shard, item)
        if (
            entry.stream_index is not None
            and not shard.stopping
            and not shard.quarantined
        ):
            shard.since_snapshot += 1
            if shard.since_snapshot >= self.config.snapshot_every:
                self._probe(shard)
        return outcome

    def recv(
        self, worker_id: int, timeout: Optional[float] = None
    ) -> Tuple:
        """Produce the next service-visible reply for ``worker_id``.

        Absorbs snapshot-probe replies, discards replies to replayed
        requests the service already saw, synthesizes replies for
        quarantined shards, and triggers recovery on death, stall or
        poison — the caller only ever sees the healthy protocol.
        """
        shard = self._shards[worker_id]
        while True:
            if shard.out:
                return shard.out.popleft()
            if not shard.pending:
                raise ServeError(
                    f"worker {worker_id} has no outstanding request to "
                    "receive a reply for"
                )
            head = shard.pending[0]
            if shard.quarantined or head.synthesize:
                entry = shard.pending.popleft()
                reply = self._synthesize(shard, entry)
                if entry.origin == "probe" or entry.discard:
                    continue
                return reply
            try:
                reply = self._base.recv(
                    worker_id, timeout=self.config.recv_deadline
                )
            except WorkerDeadError:
                self._drain_safe(shard)
                if shard.out or not shard.pending:
                    continue
                if self._end_of_life(shard):
                    continue
                self._recover(shard, "dead")
                continue
            except WorkerStallError:
                self._drain_safe(shard)
                if shard.out:
                    continue
                if self._end_of_life(shard):
                    continue
                self._recover(shard, "stalled")
                continue
            try:
                self._consume(shard, reply)
            except _Poisoned:
                if not self._end_of_life(shard):
                    self._recover(shard, "poisoned")
                continue

    def depth(self, worker_id: int) -> Optional[int]:
        return self._base.depth(worker_id)

    def is_alive(self, worker_id: int) -> bool:
        shard = self._shards[worker_id]
        if shard.quarantined:
            return False
        return self._base.is_alive(worker_id)

    def join(self) -> None:
        self._base.join()

    # ------------------------------------------------------------------
    # degraded-mode surface (service/gateway introspection)
    # ------------------------------------------------------------------

    def quarantined_workers(self) -> List[int]:
        return [s.id for s in self._shards if s.quarantined]

    def restarts(self, worker_id: int) -> int:
        return self._shards[worker_id].restarts

    def shard_queries_override(
        self, worker_id: int
    ) -> Optional[QuerySet]:
        """The query set matching a quarantined shard's frozen state.

        A checkpoint of a degraded service must pair the quarantined
        worker's last good state with the queries *that state covers*,
        not with whatever the control plane has since subscribed there.
        """
        shard = self._shards[worker_id]
        if not shard.quarantined:
            return None
        return shard.snapshot.queries

    def begin_shutdown(self) -> None:
        """Disable recovery: from here on dead workers' pending and
        future requests get synthesized replies (close path)."""
        self._shutdown = True

    # ------------------------------------------------------------------
    # logging and validation
    # ------------------------------------------------------------------

    def _make_entry(
        self, shard: _Shard, message: Tuple, shadow: Optional[Tuple]
    ) -> _Entry:
        kind = message[0]
        shard.seq += 1
        stream_index = None
        num_chunks = 0
        if kind in _STREAM_KINDS:
            shard.stream_sent += 1
            stream_index = shard.stream_sent
            if kind == "chunk":
                num_chunks = 1
            else:
                payload = (shadow or message)[1]
                num_chunks = int(payload.num_chunks)
        if kind == "stop":
            shard.stopping = True
        return _Entry(
            seq=shard.seq,
            kind=kind,
            sent_message=message,
            replay_message=shadow if shadow is not None else message,
            origin="service",
            stream_index=stream_index,
            num_chunks=num_chunks,
        )

    def _apply_mirror(self, shard: _Shard, message: Tuple) -> None:
        """Track the shard's logical query state as requests pass by,
        so probe snapshots know which queries their state covers."""
        kind = message[0]
        if kind == "lifecycle":
            _, epoch, ops, cap_hint = message
            for op in ops:
                if op[0] == "subscribe":
                    shard.mirror[op[1].qid] = op[1]
                elif op[0] == "unsubscribe":
                    shard.mirror.pop(op[1], None)
            shard.cap_hint = int(cap_hint)
            shard.epoch = int(epoch)
        elif kind == "subscribe":
            shard.mirror[message[1].qid] = message[1]
        elif kind == "unsubscribe":
            shard.mirror.pop(message[1], None)
        elif kind == "cap_hint":
            shard.cap_hint = int(message[1])

    def _forget(self, shard: _Shard, item) -> None:
        """Unlog a request stolen from the queue by a lossy policy."""
        if not isinstance(item, tuple) or item[0] not in _STREAM_KINDS:
            return
        for entry in list(shard.pending):
            if entry.sent_message is item:
                shard.pending.remove(entry)
                try:
                    shard.log.remove(entry)
                except ValueError:  # pragma: no cover
                    pass
                return

    def _valid(self, shard: _Shard, entry: _Entry, reply) -> bool:
        if not isinstance(reply, tuple) or len(reply) < 2:
            return False
        kind, worker_id = reply[0], reply[1]
        if worker_id != shard.id:
            return False
        if kind == "error":
            return True
        if kind != _REPLY_KIND[entry.kind]:
            return False
        if kind == "matches":
            return len(reply) == 4 and reply[2] == entry.sent_message[1]
        if kind == "matches_batch":
            return (
                len(reply) == 4
                and reply[2] == entry.replay_message[1].base_seq
                and len(reply[3]) == entry.num_chunks
            )
        return True

    def _consume(self, shard: _Shard, reply) -> None:
        entry = shard.pending[0]
        if not self._valid(shard, entry, reply):
            self.registry.inc("serve.supervisor.poisoned")
            raise _Poisoned()
        shard.pending.popleft()
        shard.acked = entry.seq
        if entry.origin == "probe":
            if reply[0] == "state":
                self._store_snapshot(shard, entry, reply[2])
            return
        if entry.discard:
            return
        shard.out.append(reply)

    def _drain_outbox(self, shard: _Shard) -> None:
        """Consume whatever replies already crossed the queue — they
        advance the acked watermark and must not be replayed."""
        while True:
            reply = self._base.try_recv(shard.id)
            if reply is None:
                return
            self._consume(shard, reply)

    def _drain_safe(self, shard: _Shard) -> None:
        try:
            self._drain_outbox(shard)
        except _Poisoned:
            # The corrupt reply's request stays pending and will be
            # replayed (or synthesized); nothing is lost by stopping.
            pass

    def _end_of_life(self, shard: _Shard) -> bool:
        """During shutdown (or after a final ``stop``) a dead worker is
        not recovered — its pending requests get synthetic replies."""
        if not (self._shutdown or shard.stopping):
            return False
        for entry in shard.pending:
            entry.synthesize = True
        return True

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def _mirror_queryset(self, shard: _Shard) -> QuerySet:
        return QuerySet(
            [shard.mirror[qid] for qid in sorted(shard.mirror)],
            self._family,
        )

    def _probe(self, shard: _Shard) -> None:
        shard.seq += 1
        entry = _Entry(
            seq=shard.seq,
            kind="state",
            sent_message=("state",),
            replay_message=("state",),
            origin="probe",
            stream_index=None,
            queries=self._mirror_queryset(shard),
            cap_hint=shard.cap_hint,
            epoch=shard.epoch,
            stream_count=shard.stream_sent,
        )
        shard.since_snapshot = 0
        outcome = self._put_bounded(shard, entry)
        if entry.synthesize or not outcome.delivered:
            return
        shard.log.append(entry)
        shard.pending.append(entry)

    def _store_snapshot(
        self, shard: _Shard, entry: _Entry, state: Dict
    ) -> None:
        shard.snapshot = _Snapshot(
            state=state,
            queries=entry.queries,
            cap_hint=entry.cap_hint,
            epoch=entry.epoch,
            seq=entry.seq,
            stream_count=entry.stream_count,
        )
        shard.log = [e for e in shard.log if e.seq > entry.seq]
        self.registry.inc("serve.supervisor.snapshots")

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _put_bounded(
        self, shard: _Shard, entry: _Entry, replaying: bool = False
    ) -> PutOutcome:
        """BLOCK-policy delivery that can never deadlock on a corpse:
        bounded non-blocking attempts interleaved with liveness checks,
        escalating to recovery instead of waiting forever.

        ``replaying`` marks an entry already in the log: if a nested
        recovery fires mid-put it will have re-sent that entry itself,
        so this put must bail instead of delivering a duplicate. A
        replay also delivers ``replay_message`` — the shared-memory
        ring recycles slots once their replies are drained, so a stale
        ``batch_shm`` descriptor may point at a *newer* batch's bytes;
        only the logged inline shadow is stable.
        """
        started = time.perf_counter()
        generation = shard.generation
        message = entry.replay_message if replaying else entry.sent_message
        while True:
            outcome = self._base.send(
                shard.id, message, BackpressurePolicy.SHED
            )
            if outcome.delivered:
                waited = time.perf_counter() - started
                if waited >= _SEND_POLL_SECONDS:
                    outcome.blocked_seconds = waited
                return outcome
            if shard.quarantined or (
                self._shutdown and not self._base.is_alive(shard.id)
            ):
                if not replaying:
                    entry.synthesize = True
                    shard.pending.append(entry)
                return PutOutcome(delivered=True)
            now = time.perf_counter()
            if not self._base.is_alive(shard.id):
                self._recover(shard, "dead")
                if replaying and shard.generation != generation:
                    return PutOutcome(delivered=True)
                started = time.perf_counter()
                continue
            if now - started >= self.config.recv_deadline:
                self._recover(shard, "stalled")
                if replaying and shard.generation != generation:
                    return PutOutcome(delivered=True)
                started = time.perf_counter()
                continue
            time.sleep(_SEND_POLL_SECONDS)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, shard: _Shard, reason: str) -> None:
        """Kill → (maybe quarantine) → respawn from snapshot → replay."""
        started = time.perf_counter()
        self.registry.inc("serve.supervisor.kills")
        if reason == "stalled":
            self.registry.inc("serve.supervisor.stalls")
        self._base.kill(shard.id)
        try:
            self._drain_outbox(shard)
        except _Poisoned:
            # Post-poison replies are junk; their requests stay pending
            # and will be replayed, so dropping them loses nothing.
            pass
        shard.restarts += 1
        self.registry.set_gauge(
            f"serve.supervisor.restarts.w{shard.id}", shard.restarts
        )
        if shard.restarts > self.config.max_restarts:
            self._quarantine(shard)
            return
        self.registry.inc("serve.supervisor.restarts")
        backoff = min(
            self.config.backoff_cap,
            self.config.backoff_seconds * (2 ** (shard.restarts - 1)),
        )
        if backoff > 0:
            time.sleep(backoff)
        for entry in shard.log:
            entry.discard = entry.discard or entry.seq <= shard.acked
        self._base.respawn(shard.id, self._respawn_spec(shard))
        shard.generation += 1
        generation = shard.generation
        shard.pending = deque(shard.log)
        replayed_batches = 0
        replayed = 0
        for entry in list(shard.log):
            self._put_bounded(shard, entry, replaying=True)
            replayed += 1
            if entry.stream_index is not None:
                replayed_batches += 1
            if shard.generation != generation or shard.quarantined:
                # A nested recovery (or quarantine) already rebuilt and
                # replayed the log itself; this pass must not double-send.
                return
        self.registry.inc(
            "serve.supervisor.replayed_batches", replayed_batches
        )
        self.registry.inc("serve.supervisor.replayed_messages", replayed)
        timer = self.registry.timer("serve.supervisor.recovery")
        timer.calls += 1
        timer.seconds += time.perf_counter() - started

    def _respawn_spec(self, shard: _Shard) -> WorkerSpec:
        snap = shard.snapshot
        processed = snap.stream_count
        for entry in shard.log:
            if entry.stream_index is not None and entry.discard:
                processed = max(processed, entry.stream_index)
        cutoff = processed + 1
        shard.chaos = tuple(
            event for event in shard.chaos if event.at_seq > cutoff
        )
        epoch = snap.epoch
        if snap.state is not None and "epoch" in snap.state:
            epoch = int(snap.state["epoch"][0])
        return replace(
            shard.spec,
            queries=snap.queries,
            cap_hint=snap.cap_hint,
            state=snap.state,
            epoch=epoch,
            chaos=rebase_events(shard.chaos, 0, snap.stream_count),
        )

    def _quarantine(self, shard: _Shard) -> None:
        shard.quarantined = True
        self.registry.inc("serve.supervisor.quarantines")
        self.registry.set_gauge(
            "serve.supervisor.quarantined",
            len(self.quarantined_workers()),
        )
        self._base.kill(shard.id)
        for entry in shard.pending:
            entry.synthesize = True

    # ------------------------------------------------------------------
    # synthesis (quarantine / shutdown)
    # ------------------------------------------------------------------

    def _synthesize(self, shard: _Shard, entry: _Entry) -> Tuple:
        wid = shard.id
        kind = entry.kind
        if kind == "chunk":
            return ("matches", wid, entry.sent_message[1], [])
        if kind in ("batch", "batch_shm"):
            base_seq = entry.replay_message[1].base_seq
            return (
                "matches_batch",
                wid,
                base_seq,
                [[] for _ in range(entry.num_chunks)],
            )
        if kind == "flush":
            return ("flushed", wid, [])
        if kind == "state":
            return ("state", wid, self._synth_state(shard))
        if kind == "snapshot":
            return ("snapshot", wid, registry_snapshot(MetricsRegistry()))
        if kind == "stop":
            return ("stopped", wid)
        return ("ok", wid)

    def _synth_state(self, shard: _Shard) -> Dict:
        """A quarantined shard's checkpointable state: its last good
        snapshot, or a pristine worker's if it never reached one."""
        snap = shard.snapshot
        if snap.state is not None:
            return dict(snap.state)
        pristine = ShardWorker(
            replace(
                shard.spec,
                queries=snap.queries,
                cap_hint=snap.cap_hint,
                state=None,
                epoch=snap.epoch,
                chaos=(),
            )
        )
        return pristine.handle(("state",))[2]
