"""Snapshot / restore of one worker's full detector state.

A checkpointed worker must resume *exactly* where it stopped: the same
live candidates (or ladder segments), the same per-(candidate, query)
signatures, the same counters, distributions and timers, and the same
partial-window buffer — so that the post-restore match stream and the
final metrics are bit-for-bit what an uninterrupted run would have
produced. :func:`worker_state` flattens all of that into a dict of
numpy arrays (directly storable in an ``.npz`` and cheap to pickle
across a process boundary); :func:`restore_worker_state` reinstates it
onto a freshly constructed detector/monitor pair built from the same
queries and configuration.

All four engine implementations are covered:

===========  ============================  ===============================
order        scalar reference              columnar store
===========  ============================  ===============================
Sequential   ``_Candidate`` list           start/frame vectors + ``(C, Q)``
             (sketch, per-qid signature    presence and ``(C, Q, W)``
             dicts, relevant sets)         planes / ``(C, K)`` block
Geometric    ``_Segment`` ladder           ``_ColumnarSegment`` ladder
===========  ============================  ===============================

Scalar signatures round-trip through their packed plane form
(:func:`~repro.signature.bitsig.planes_from_signature` /
``signature_from_planes``), scalar sketches through their raw value
vectors — both loss-free.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.detector import StreamingDetector
from repro.core.engine_geometric import (
    ColumnarGeometricEngine,
    GeometricEngine,
    _ColumnarSegment,
    _Segment,
)
from repro.core.engine_sequential import (
    ColumnarSequentialEngine,
    SequentialEngine,
    _Candidate,
)
from repro.core.live import LiveMonitor
from repro.errors import ServeError
from repro.minhash.sketch import Sketch
from repro.obs.registry import MetricsRegistry
from repro.signature.bitsig import (
    BitSignature,
    plane_words,
    planes_from_signature,
    signature_from_planes,
)

__all__ = ["restore_worker_state", "worker_state"]


def _object_array(items: List[str]) -> np.ndarray:
    array = np.empty(len(items), dtype=object)
    for position, item in enumerate(items):
        array[position] = item
    return array


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def _registry_state(registry: MetricsRegistry) -> Dict[str, np.ndarray]:
    counters = list(registry.counters())
    gauges = list(registry.gauges())
    dists = list(registry.distributions())
    timers = list(registry.timers())
    dist_states = np.asarray(
        [stats.state() for _, stats in dists], dtype=np.float64
    ).reshape(len(dists), 5)
    return {
        "reg_counter_names": _object_array([name for name, _ in counters]),
        "reg_counter_values": np.asarray(
            [value for _, value in counters], dtype=np.int64
        ),
        "reg_gauge_names": _object_array([name for name, _ in gauges]),
        "reg_gauge_values": np.asarray(
            [value for _, value in gauges], dtype=np.float64
        ),
        "reg_dist_names": _object_array([name for name, _ in dists]),
        "reg_dist_states": dist_states,
        "reg_timer_names": _object_array([name for name, _ in timers]),
        "reg_timer_calls": np.asarray(
            [timer.calls for _, timer in timers], dtype=np.int64
        ),
        "reg_timer_seconds": np.asarray(
            [timer.seconds for _, timer in timers], dtype=np.float64
        ),
    }


def _restore_registry(
    registry: MetricsRegistry, state: Dict[str, np.ndarray]
) -> None:
    for name, value in zip(
        state["reg_counter_names"], state["reg_counter_values"]
    ):
        registry.set_counter(str(name), int(value))
    for name, value in zip(
        state["reg_gauge_names"], state["reg_gauge_values"]
    ):
        registry.set_gauge(str(name), float(value))
    for name, dist_state in zip(
        state["reg_dist_names"], state["reg_dist_states"]
    ):
        registry.distribution(str(name)).load_state(tuple(dist_state))
    for name, calls, seconds in zip(
        state["reg_timer_names"],
        state["reg_timer_calls"],
        state["reg_timer_seconds"],
    ):
        timer = registry.timer(str(name))
        timer.calls = int(calls)
        timer.seconds = float(seconds)


# ----------------------------------------------------------------------
# scalar pair flattening (sigs dicts / relevant sets)
# ----------------------------------------------------------------------


def _flatten_sigs(
    holders: List, width: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-holder ``{qid: BitSignature}`` dicts to pair arrays."""
    rows: List[int] = []
    qids: List[int] = []
    ge_rows: List[np.ndarray] = []
    lt_rows: List[np.ndarray] = []
    for row, holder in enumerate(holders):
        for qid in sorted(holder.sigs):
            ge, lt = planes_from_signature(holder.sigs[qid])
            rows.append(row)
            qids.append(qid)
            ge_rows.append(ge)
            lt_rows.append(lt)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(qids, dtype=np.int64),
        np.asarray(ge_rows, dtype=np.uint64).reshape(len(rows), width),
        np.asarray(lt_rows, dtype=np.uint64).reshape(len(rows), width),
    )


def _flatten_relevant(holders: List) -> Tuple[np.ndarray, np.ndarray]:
    rows: List[int] = []
    qids: List[int] = []
    for row, holder in enumerate(holders):
        for qid in sorted(holder.relevant):
            rows.append(row)
            qids.append(qid)
    return (
        np.asarray(rows, dtype=np.int64),
        np.asarray(qids, dtype=np.int64),
    )


def _unflatten_sigs(
    state: Dict[str, np.ndarray], num_hashes: int, count: int
) -> List[Dict[int, BitSignature]]:
    sigs: List[Dict[int, BitSignature]] = [dict() for _ in range(count)]
    for row, qid, ge, lt in zip(
        state["eng_sig_row"],
        state["eng_sig_qid"],
        state["eng_sig_ge"],
        state["eng_sig_lt"],
    ):
        sigs[int(row)][int(qid)] = signature_from_planes(ge, lt, num_hashes)
    return sigs


def _unflatten_relevant(
    state: Dict[str, np.ndarray], count: int
) -> List[Set[int]]:
    relevant: List[Set[int]] = [set() for _ in range(count)]
    for row, qid in zip(state["eng_rel_row"], state["eng_rel_qid"]):
        relevant[int(row)].add(int(qid))
    return relevant


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------


def _engine_kind(engine) -> str:
    if isinstance(engine, ColumnarSequentialEngine):
        return "columnar-sequential"
    if isinstance(engine, ColumnarGeometricEngine):
        return "columnar-geometric"
    if isinstance(engine, SequentialEngine):
        return "scalar-sequential"
    if isinstance(engine, GeometricEngine):
        return "scalar-geometric"
    raise ServeError(f"unknown engine type {type(engine).__name__}")


def _columnar_sequential_state(engine: ColumnarSequentialEngine) -> Dict:
    # The column layout is adopted lazily; sync before reading so a
    # snapshot taken right after a subscribe/unsubscribe (before the
    # next window) records the live query set, not a stale one.
    engine._sync_columns()
    state = {
        "eng_qids": np.asarray(engine._qids, dtype=np.int64),
        "eng_start_window": engine.start_window.copy(),
        "eng_start_frame": engine.start_frame.copy(),
    }
    if engine.context.is_bit:
        state["eng_presence"] = engine.presence.copy()
        state["eng_ge"] = engine.ge.copy()
        state["eng_lt"] = engine.lt.copy()
    else:
        state["eng_block"] = engine.block.values.copy()
        state["eng_relevant"] = engine.relevant.copy()
    return state


def _restore_columnar_sequential(
    engine: ColumnarSequentialEngine, state: Dict[str, np.ndarray]
) -> None:
    engine._sync_columns()
    _check_qids(engine._qids, state["eng_qids"])
    engine.start_window = state["eng_start_window"].astype(np.int64)
    engine.start_frame = state["eng_start_frame"].astype(np.int64)
    if engine.context.is_bit:
        engine.presence = state["eng_presence"].astype(bool)
        engine.ge = state["eng_ge"].astype(np.uint64)
        engine.lt = state["eng_lt"].astype(np.uint64)
    else:
        engine.block.values = state["eng_block"].astype(np.int64)
        engine.relevant = state["eng_relevant"].astype(bool)


def _scalar_sequential_state(engine: SequentialEngine) -> Dict:
    candidates = engine.candidates
    width = plane_words(engine.context.config.num_hashes)
    num_hashes = engine.context.config.num_hashes
    sig_row, sig_qid, sig_ge, sig_lt = _flatten_sigs(candidates, width)
    rel_row, rel_qid = _flatten_relevant(candidates)
    return {
        "eng_start_window": np.asarray(
            [c.start_window for c in candidates], dtype=np.int64
        ),
        "eng_start_frame": np.asarray(
            [c.start_frame for c in candidates], dtype=np.int64
        ),
        "eng_num_windows": np.asarray(
            [c.num_windows for c in candidates], dtype=np.int64
        ),
        "eng_end_frame": np.asarray(
            [c.end_frame for c in candidates], dtype=np.int64
        ),
        "eng_sketch": np.asarray(
            [c.sketch.values for c in candidates], dtype=np.int64
        ).reshape(len(candidates), num_hashes),
        "eng_sig_row": sig_row,
        "eng_sig_qid": sig_qid,
        "eng_sig_ge": sig_ge,
        "eng_sig_lt": sig_lt,
        "eng_rel_row": rel_row,
        "eng_rel_qid": rel_qid,
    }


def _restore_scalar_sequential(
    engine: SequentialEngine, state: Dict[str, np.ndarray]
) -> None:
    num_hashes = engine.context.config.num_hashes
    fingerprint = engine.context.queries.family.fingerprint
    count = len(state["eng_start_window"])
    sigs = _unflatten_sigs(state, num_hashes, count)
    relevant = _unflatten_relevant(state, count)
    candidates: List[_Candidate] = []
    for row in range(count):
        candidate = _Candidate(
            start_window=int(state["eng_start_window"][row]),
            start_frame=int(state["eng_start_frame"][row]),
            end_frame=int(state["eng_end_frame"][row]),
            sketch=Sketch._raw(
                state["eng_sketch"][row].astype(np.int64), fingerprint
            ),
            sigs=sigs[row],
            relevant=relevant[row],
        )
        candidate.num_windows = int(state["eng_num_windows"][row])
        candidates.append(candidate)
    engine.candidates = candidates


def _columnar_geometric_state(engine: ColumnarGeometricEngine) -> Dict:
    engine._sync_columns()
    segments = engine.segments
    is_bit = engine.context.is_bit
    num_hashes = engine.context.config.num_hashes
    count = len(segments)
    num_queries = len(engine._qids)
    width = plane_words(num_hashes)
    state = {
        "eng_qids": np.asarray(engine._qids, dtype=np.int64),
        "eng_seg_size": np.asarray(
            [s.size for s in segments], dtype=np.int64
        ),
        "eng_seg_start": np.asarray(
            [s.start_frame for s in segments], dtype=np.int64
        ),
        "eng_seg_end": np.asarray(
            [s.end_frame for s in segments], dtype=np.int64
        ),
        "eng_seg_sketch": np.asarray(
            [s.sketch_values for s in segments], dtype=np.int64
        ).reshape(count, num_hashes),
    }
    if is_bit:
        state["eng_presence"] = np.asarray(
            [s.presence for s in segments], dtype=bool
        ).reshape(count, num_queries)
        state["eng_ge"] = np.asarray(
            [s.ge for s in segments], dtype=np.uint64
        ).reshape(count, num_queries, width)
        state["eng_lt"] = np.asarray(
            [s.lt for s in segments], dtype=np.uint64
        ).reshape(count, num_queries, width)
    else:
        state["eng_relevant"] = np.asarray(
            [s.relevant for s in segments], dtype=bool
        ).reshape(count, num_queries)
    return state


def _restore_columnar_geometric(
    engine: ColumnarGeometricEngine, state: Dict[str, np.ndarray]
) -> None:
    engine._sync_columns()
    _check_qids(engine._qids, state["eng_qids"])
    is_bit = engine.context.is_bit
    segments: List[_ColumnarSegment] = []
    for row in range(len(state["eng_seg_size"])):
        segments.append(
            _ColumnarSegment(
                size=int(state["eng_seg_size"][row]),
                start_frame=int(state["eng_seg_start"][row]),
                end_frame=int(state["eng_seg_end"][row]),
                sketch_values=state["eng_seg_sketch"][row].astype(np.int64),
                presence=(
                    state["eng_presence"][row].astype(bool) if is_bit else None
                ),
                ge=state["eng_ge"][row].astype(np.uint64) if is_bit else None,
                lt=state["eng_lt"][row].astype(np.uint64) if is_bit else None,
                relevant=(
                    None
                    if is_bit
                    else state["eng_relevant"][row].astype(bool)
                ),
            )
        )
    engine.segments = segments


def _scalar_geometric_state(engine: GeometricEngine) -> Dict:
    segments = engine.segments
    num_hashes = engine.context.config.num_hashes
    width = plane_words(num_hashes)
    sig_row, sig_qid, sig_ge, sig_lt = _flatten_sigs(segments, width)
    rel_row, rel_qid = _flatten_relevant(segments)
    return {
        "eng_seg_size": np.asarray(
            [s.size for s in segments], dtype=np.int64
        ),
        "eng_seg_start": np.asarray(
            [s.start_frame for s in segments], dtype=np.int64
        ),
        "eng_seg_end": np.asarray(
            [s.end_frame for s in segments], dtype=np.int64
        ),
        "eng_seg_sketch": np.asarray(
            [s.sketch.values for s in segments], dtype=np.int64
        ).reshape(len(segments), num_hashes),
        "eng_sig_row": sig_row,
        "eng_sig_qid": sig_qid,
        "eng_sig_ge": sig_ge,
        "eng_sig_lt": sig_lt,
        "eng_rel_row": rel_row,
        "eng_rel_qid": rel_qid,
    }


def _restore_scalar_geometric(
    engine: GeometricEngine, state: Dict[str, np.ndarray]
) -> None:
    num_hashes = engine.context.config.num_hashes
    fingerprint = engine.context.queries.family.fingerprint
    count = len(state["eng_seg_size"])
    sigs = _unflatten_sigs(state, num_hashes, count)
    relevant = _unflatten_relevant(state, count)
    segments: List[_Segment] = []
    for row in range(count):
        segments.append(
            _Segment(
                size=int(state["eng_seg_size"][row]),
                start_frame=int(state["eng_seg_start"][row]),
                end_frame=int(state["eng_seg_end"][row]),
                sketch=Sketch._raw(
                    state["eng_seg_sketch"][row].astype(np.int64), fingerprint
                ),
                sigs=sigs[row],
                relevant=relevant[row],
            )
        )
    engine.segments = segments


def _check_qids(current: tuple, recorded: np.ndarray) -> None:
    if tuple(int(qid) for qid in recorded) != tuple(current):
        raise ServeError(
            "engine state was checkpointed for a different query set: "
            f"recorded qids {[int(q) for q in recorded]} vs current "
            f"{list(current)}"
        )


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def worker_state(
    detector: StreamingDetector, monitor: LiveMonitor
) -> Dict[str, np.ndarray]:
    """Flatten one worker's restorable state into numpy arrays.

    Covers: the engine's candidate/ladder state, the full metrics
    registry (counters, gauges, distributions, timers — the stream clock
    ``stream.frames_processed`` and window counter live here), and the
    monitor's partial-window buffer. Matches already emitted are *not*
    part of the state: they were delivered to the caller before the
    snapshot was taken.
    """
    kind = _engine_kind(detector.engine)
    if kind == "columnar-sequential":
        engine_state = _columnar_sequential_state(detector.engine)
    elif kind == "columnar-geometric":
        engine_state = _columnar_geometric_state(detector.engine)
    elif kind == "scalar-sequential":
        engine_state = _scalar_sequential_state(detector.engine)
    else:
        engine_state = _scalar_geometric_state(detector.engine)
    pending, flushed, skip_remaining = monitor.buffer_state()
    state: Dict[str, np.ndarray] = {
        "kind": _object_array([kind]),
        "pending": pending,
        "flushed": np.asarray([int(flushed)]),
        "monitor_skip": np.asarray([int(skip_remaining)]),
        **engine_state,
        **_registry_state(detector.registry),
    }
    return state


def restore_worker_state(
    detector: StreamingDetector,
    monitor: LiveMonitor,
    state: Dict[str, np.ndarray],
) -> None:
    """Reinstate a :func:`worker_state` snapshot.

    ``detector`` and ``monitor`` must be freshly constructed from the
    same configuration and query set the snapshot was taken under (the
    checkpoint layer verifies both before calling this).
    """
    kind = str(state["kind"][0])
    expected = _engine_kind(detector.engine)
    if kind != expected:
        raise ServeError(
            f"checkpointed engine kind {kind!r} does not match the "
            f"configured engine {expected!r}"
        )
    if kind == "columnar-sequential":
        _restore_columnar_sequential(detector.engine, state)
    elif kind == "columnar-geometric":
        _restore_columnar_geometric(detector.engine, state)
    elif kind == "scalar-sequential":
        _restore_scalar_sequential(detector.engine, state)
    else:
        _restore_scalar_geometric(detector.engine, state)
    _restore_registry(detector.registry, state)
    # "monitor_skip" is absent from checkpoints written before the
    # ingestion layer existed; those monitors had no gap in flight.
    skip = int(state["monitor_skip"][0]) if "monitor_skip" in state else 0
    monitor.restore_buffer(
        state["pending"], bool(int(state["flushed"][0])), skip
    )
