"""Shard planning: partitioning a query set across detection workers.

Query sharding follows the large-scale video-search pattern (partition
the reference/query set, broadcast the stream, merge centrally): because
all candidate state in both engine orders is keyed per query, giving
each worker a disjoint subset of the queries preserves per-shard
detection semantics exactly — the union of the shard outputs is the
single-process output.

:class:`ShardPlanner` balances the shards with a longest-processing-time
greedy: queries are weighted either uniformly (``count`` strategy) or by
their candidate cap ``ceil(λL/w)`` (``load`` strategy — the per-window
candidate-pair work the Sequential order performs for that query), then
assigned heaviest-first to the least-loaded shard. The assignment is
deterministic (ties break toward the lower qid / lower shard id), so a
resumed service reconstructs the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.query import Query, QuerySet
from repro.errors import ServeError

__all__ = ["ShardPlan", "ShardPlanner"]

STRATEGIES = ("count", "load")


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of query ids to shards.

    Attributes
    ----------
    shards:
        Per-shard tuples of qids, each sorted ascending. Every
        subscribed qid appears in exactly one shard; no shard is empty.
    loads:
        Per-shard summed weights under the planning strategy.
    strategy:
        ``"count"`` or ``"load"``.
    """

    shards: Tuple[Tuple[int, ...], ...]
    loads: Tuple[int, ...]
    strategy: str

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, qid: int) -> int:
        """The shard index holding ``qid``."""
        for index, shard in enumerate(self.shards):
            if qid in shard:
                return index
        raise ServeError(f"query {qid} is not in the shard plan")

    def imbalance(self) -> float:
        """``max(load) / mean(load)`` — 1.0 is a perfect balance."""
        total = sum(self.loads)
        if total == 0:
            return 1.0
        return max(self.loads) * self.num_shards / total


class ShardPlanner:
    """Partitions a :class:`~repro.core.query.QuerySet` into balanced
    shards.

    Parameters
    ----------
    num_shards:
        Requested worker count. When it exceeds the number of queries,
        the plan holds one query per shard (a shard cannot be empty:
        each worker runs a detector, and a detector needs queries).
    strategy:
        ``"count"`` — every query weighs 1 (balances query counts);
        ``"load"`` — a query weighs its candidate cap ``ceil(λL/w)``
        (balances per-window candidate work).
    """

    def __init__(self, num_shards: int, strategy: str = "load") -> None:
        if num_shards < 1:
            raise ServeError(
                f"num_shards must be at least 1, got {num_shards}"
            )
        if strategy not in STRATEGIES:
            raise ServeError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        self.num_shards = num_shards
        self.strategy = strategy

    def plan(
        self,
        queries: QuerySet,
        window_frames: int,
        tempo_scale: float,
    ) -> ShardPlan:
        """Assign every query to a shard (LPT greedy, deterministic)."""
        weights = self._weights(queries, window_frames, tempo_scale)
        num_shards = min(self.num_shards, len(weights))
        loads = [0] * num_shards
        shards: List[List[int]] = [[] for _ in range(num_shards)]
        # Heaviest first; ties toward the lower qid so the order — and
        # with it the whole plan — is reproducible.
        for qid, weight in sorted(
            weights.items(), key=lambda item: (-item[1], item[0])
        ):
            target = min(range(num_shards), key=lambda i: (loads[i], i))
            shards[target].append(qid)
            loads[target] += weight
        return ShardPlan(
            shards=tuple(tuple(sorted(shard)) for shard in shards),
            loads=tuple(loads),
            strategy=self.strategy,
        )

    def place(self, loads: Sequence[int]) -> int:
        """Pick the shard for one *new* query given current shard loads.

        The online counterpart of :meth:`plan`'s greedy step: the
        least-loaded shard wins, ties toward the lower shard id — the
        same deterministic rule, so a churned service and a re-planned
        one agree on where a marginal query lands.
        """
        if not loads:
            raise ServeError("cannot place a query across zero shards")
        return min(range(len(loads)), key=lambda i: (loads[i], i))

    def weight(
        self, query: Query, window_frames: int, tempo_scale: float
    ) -> int:
        """One query's load weight under this planner's strategy."""
        if self.strategy == "count":
            return 1
        return query.max_candidate_windows(window_frames, tempo_scale)

    def _weights(
        self,
        queries: QuerySet,
        window_frames: int,
        tempo_scale: float,
    ) -> Dict[int, int]:
        if self.strategy == "count":
            return {qid: 1 for qid in queries.query_ids}
        return queries.max_windows_map(window_frames, tempo_scale)
