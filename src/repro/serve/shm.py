"""Shared-memory ring transport for :class:`WindowBatch` fan-out.

The process backend used to pickle every raw chunk once per worker —
O(workers × chunk bytes) of serialization on the hot path. With the
sketch-once front end the payload is a handful of flat numpy arrays, so
the service instead writes them **once** into a reusable
``multiprocessing.shared_memory`` slot and sends each worker only a tiny
picklable :class:`BatchDescriptor`; workers map the slot and build
zero-copy array views over it.

Slot lifecycle (producer side, :class:`ShmBatchRing`):

* ``publish`` finds a slot with no outstanding references (growing or
  allocating it as needed — a grown slot gets a fresh name so stale
  worker attachments can never alias it), copies the batch arrays in,
  and arms the reference count with one reference per intended
  delivery.
* The service releases one reference per worker reply — or immediately
  for a shed/stolen delivery. A slot is reusable once its count is
  zero, which is safe because workers copy what they keep: the sketch
  matrix is copied on receipt and plane rows are fancy-indexed (which
  copies) down to the shard's qids, so no view into the slot survives
  the handling of its message.
* When every slot is busy the producer drains one worker reply first
  (workers reply into unbounded outboxes, so this cannot deadlock);
  each such wait is counted as ``serve.transport.shm_waits``.

Worker side, :class:`ShmBatchReader`: attaches slots lazily, caches the
mapping per slot id, swaps the attachment when a descriptor carries a
new name (slot growth), and detaches from the resource tracker so the
worker's exit cannot unlink memory the producer still owns.

When ``multiprocessing.shared_memory`` is unavailable the service falls
back to pickling the :class:`WindowBatch` inline — same protocol, no
zero-copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServeError
from repro.serve.frontend import WindowBatch

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "BatchDescriptor",
    "ShmBatchReader",
    "ShmBatchRing",
    "shm_available",
]

#: The WindowBatch array fields that travel through shared memory, in
#: the order they are laid out inside a slot.
_ARRAY_FIELDS = (
    "chunk_windows",
    "indices",
    "starts",
    "frames",
    "sketch_values",
    "ge",
    "lt",
)


def shm_available() -> bool:
    """Whether the shared-memory transport can be used at all."""
    return _shared_memory is not None


#: Segment names created by a ring in *this* process. An in-process
#: reader (serial tests) must not untrack them — the producer's own
#: tracker registration is the one that matters.
_OWNED_NAMES: set = set()

#: True in a forked child that inherited an already-running resource
#: tracker from its parent. Such a child must not unregister attached
#: segments: the registration it shares belongs to the producer, whose
#: later unlink would then double-unregister (noisy KeyError inside
#: the tracker process). A child whose tracker starts fresh (spawn, or
#: fork before the parent ever registered anything) has its *own*
#: tracker, which would unlink the producer's live segments at exit —
#: there the unregister is required.
_INHERITED_TRACKER = False


def _note_tracker_inheritance() -> None:  # pragma: no cover - fork hook
    global _INHERITED_TRACKER
    try:
        from multiprocessing import resource_tracker

        _INHERITED_TRACKER = (
            getattr(resource_tracker._resource_tracker, "_fd", None)
            is not None
        )
    except Exception:
        _INHERITED_TRACKER = False


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix
    os.register_at_fork(after_in_child=_note_tracker_inheritance)


def _untrack(shm) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    Only the creating process may unlink; without this, a worker whose
    own tracker outlives the attachment would unlink segments the
    producer still serves to its siblings. Skipped when the tracker is
    shared with the producer (see :data:`_INHERITED_TRACKER`).
    """
    if shm._name.lstrip("/") in _OWNED_NAMES:
        return
    if _INHERITED_TRACKER:
        return
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class BatchDescriptor:
    """Everything a worker needs to rebuild a batch from a slot.

    Attributes
    ----------
    slot:
        Ring slot index (stable attachment-cache key).
    name:
        The slot's current shared-memory segment name; changes when the
        slot is grown, telling workers to re-attach.
    base_seq:
        Mirror of :attr:`WindowBatch.base_seq` so the service can track
        outstanding batches without reading the slot back.
    num_chunks:
        Mirror of :attr:`WindowBatch.num_chunks` (drop accounting).
    plane_qids:
        The plane row layout (inline — it is a small tuple of ints).
    fields:
        ``(field, dtype, shape, offset)`` per shipped array.
    total_bytes:
        Payload size in bytes (transport accounting).
    """

    slot: int
    name: str
    base_seq: int
    num_chunks: int
    plane_qids: Optional[Tuple[int, ...]]
    fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    total_bytes: int


class _Slot:
    def __init__(self, index: int) -> None:
        self.index = index
        self.shm = None
        self.capacity = 0
        self.readers: set = set()
        self.generation = 0

    @property
    def refs(self) -> int:
        return len(self.readers)

    def ensure(self, nbytes: int) -> None:
        if self.shm is not None and self.capacity >= nbytes:
            return
        if self.shm is not None:
            self.shm.close()
            self.shm.unlink()
            _OWNED_NAMES.discard(self.shm.name)
        size = max(1, nbytes)
        self.generation += 1
        self.shm = _shared_memory.SharedMemory(create=True, size=size)
        _OWNED_NAMES.add(self.shm.name)
        self.capacity = size

    def close(self) -> None:
        if self.shm is None:
            return
        try:
            self.shm.close()
            self.shm.unlink()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        _OWNED_NAMES.discard(self.shm.name)
        self.shm = None
        self.capacity = 0


class ShmBatchRing:
    """Producer-side ring of reusable shared-memory batch slots."""

    def __init__(self, num_slots: int) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise ServeError(
                "multiprocessing.shared_memory is unavailable"
            )
        if num_slots < 1:
            raise ServeError(
                f"ring needs at least one slot, got {num_slots}"
            )
        self._slots = [_Slot(index) for index in range(num_slots)]
        self._closed = False

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    def _free_slot(self) -> Optional[_Slot]:
        for slot in self._slots:
            if slot.refs == 0:
                return slot
        return None

    def publish(
        self,
        batch: WindowBatch,
        readers,
        wait_for_slot: Callable[[], None],
    ) -> BatchDescriptor:
        """Write ``batch`` into a free slot; arm one reference per reader.

        ``readers`` is the sequence of worker ids the batch will be
        delivered to — references are held *by identity*, so a crashed
        reader's pin can be swept (:meth:`sweep_reader`) instead of
        leaking the slot forever. ``wait_for_slot`` is invoked
        (repeatedly if needed) while every slot has outstanding
        references; it must release at least one reference — the
        service drains one worker reply per call.
        """
        if self._closed:
            raise ServeError("the shared-memory ring has been closed")
        arrays: List[Tuple[str, np.ndarray]] = []
        for field_name in _ARRAY_FIELDS:
            value = getattr(batch, field_name)
            if value is not None:
                arrays.append(
                    (field_name, np.ascontiguousarray(value))
                )
        total = sum(array.nbytes for _, array in arrays)
        slot = self._free_slot()
        while slot is None:
            wait_for_slot()
            slot = self._free_slot()
        slot.ensure(total)
        fields: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        buffer = slot.shm.buf
        for field_name, array in arrays:
            nbytes = array.nbytes
            if nbytes:
                destination = np.frombuffer(
                    buffer,
                    dtype=array.dtype,
                    count=array.size,
                    offset=offset,
                ).reshape(array.shape)
                np.copyto(destination, array)
                del destination
            fields.append(
                (field_name, array.dtype.str, array.shape, offset)
            )
            offset += nbytes
        slot.readers = set(int(reader) for reader in readers)
        return BatchDescriptor(
            slot=slot.index,
            name=slot.shm.name,
            base_seq=batch.base_seq,
            num_chunks=batch.num_chunks,
            plane_qids=batch.plane_qids,
            fields=tuple(fields),
            total_bytes=total,
        )

    def release(self, slot_index: int, reader: int) -> None:
        """Drop ``reader``'s reference on a slot.

        Idempotent per reader: releasing a reference the reader no
        longer holds (already released, or force-swept after a crash)
        is a no-op — a recovered worker's replayed reply must not blow
        up the drain path. Releasing a slot nobody references at all is
        still an error (protocol bug, not a crash artifact).
        """
        slot = self._slots[slot_index]
        if not slot.readers:
            raise ServeError(
                f"slot {slot_index} released more times than referenced"
            )
        slot.readers.discard(int(reader))

    def sweep_reader(self, reader: int) -> int:
        """Force-release every slot reference held by ``reader``.

        Called when a worker is declared dead or quarantined: whatever
        it was still mapping will never be acknowledged, and without
        the sweep those slots stay pinned forever. Returns the number
        of references released.
        """
        swept = 0
        for slot in self._slots:
            if int(reader) in slot.readers:
                slot.readers.discard(int(reader))
                swept += 1
        return swept

    def outstanding(self) -> Dict[int, Tuple[int, ...]]:
        """Live references per slot — ``{slot: (reader, ...)}``.

        Empty at any quiescent point (all batches drained); test
        teardowns assert exactly that to catch leaked segments.
        """
        return {
            slot.index: tuple(sorted(slot.readers))
            for slot in self._slots
            if slot.readers
        }

    def total_outstanding_refs(self) -> int:
        return sum(len(slot.readers) for slot in self._slots)

    def sweep_all(self) -> int:
        """Force-release everything (shutdown path). Returns refs freed."""
        swept = 0
        for slot in self._slots:
            swept += len(slot.readers)
            slot.readers.clear()
        return swept

    def close(self) -> None:
        """Unlink every slot. Call after the workers have stopped."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            slot.close()


class ShmBatchReader:
    """Worker-side attachment cache and batch decoder."""

    def __init__(self) -> None:
        self._attached: Dict[int, Tuple[str, object]] = {}

    def _segment(self, descriptor: BatchDescriptor):
        cached = self._attached.get(descriptor.slot)
        if cached is not None and cached[0] == descriptor.name:
            return cached[1]
        if cached is not None:
            try:
                cached[1].close()
            except Exception:  # pragma: no cover
                pass
        try:
            shm = _shared_memory.SharedMemory(
                name=descriptor.name, track=False
            )
        except TypeError:  # pragma: no cover - Python < 3.13
            shm = _shared_memory.SharedMemory(name=descriptor.name)
            _untrack(shm)
        self._attached[descriptor.slot] = (descriptor.name, shm)
        return shm

    def read(self, descriptor: BatchDescriptor) -> WindowBatch:
        """Rebuild the batch as zero-copy views over the slot.

        The views are only valid while the message is being handled;
        the worker copies anything it retains (see module docstring).
        """
        shm = self._segment(descriptor)
        values: Dict[str, Optional[np.ndarray]] = {
            name: None for name in _ARRAY_FIELDS
        }
        for field_name, dtype, shape, offset in descriptor.fields:
            count = int(np.prod(shape, dtype=np.int64))
            values[field_name] = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
        return WindowBatch(
            base_seq=descriptor.base_seq,
            chunk_windows=values["chunk_windows"],
            indices=values["indices"],
            starts=values["starts"],
            frames=values["frames"],
            sketch_values=values["sketch_values"],
            plane_qids=descriptor.plane_qids,
            ge=values["ge"],
            lt=values["lt"],
        )

    def close(self) -> None:
        """Detach from every cached slot (worker shutdown)."""
        for _, shm in self._attached.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
        self._attached.clear()
