"""Basic windows: the unit of streaming sketch construction.

The stream of per-key-frame cell ids is chopped into fixed-length *basic
windows* of ``w`` key frames (Section IV-A). Each window carries its
distinct cell-id set and its K-min-hash sketch; candidate sequences are
combinations of consecutive basic windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import SketchError
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch

__all__ = ["BasicWindow", "build_basic_windows", "iter_basic_windows"]


@dataclass(frozen=True)
class BasicWindow:
    """One basic window of the stream.

    Attributes
    ----------
    index:
        Zero-based window position in the stream.
    start_frame:
        Key-frame index of the window's first frame.
    num_frames:
        Number of key frames in the window (the last window of a stream
        may be shorter than ``w``).
    cell_ids:
        The window's distinct frame-signature cell ids (sorted).
    sketch:
        K-min-hash sketch of :attr:`cell_ids`.
    """

    index: int
    start_frame: int
    num_frames: int
    cell_ids: np.ndarray = field(repr=False)
    sketch: Sketch = field(repr=False)

    @property
    def end_frame(self) -> int:
        """Key-frame index one past the window's last frame."""
        return self.start_frame + self.num_frames


def iter_basic_windows(
    cell_ids: Sequence[int] | np.ndarray,
    window_frames: int,
    family: MinHashFamily,
    drop_partial: bool = False,
) -> Iterator[BasicWindow]:
    """Chop a cell-id stream into sketched basic windows.

    Parameters
    ----------
    cell_ids:
        The per-key-frame signature stream.
    window_frames:
        ``w`` expressed in key frames.
    family:
        Hash family used for all sketches (queries must share it).
    drop_partial:
        When True, a trailing window shorter than ``w`` is discarded;
        otherwise it is emitted with its true (shorter) ``num_frames``.

    Yields
    ------
    BasicWindow
        In stream order, with consecutive ``index`` values from 0.
    """
    if window_frames <= 0:
        raise SketchError(f"window_frames must be positive, got {window_frames}")
    ids = np.asarray(cell_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise SketchError(f"cell ids must be 1-D, got shape {ids.shape}")
    total = ids.shape[0]
    window_index = 0
    for start in range(0, total, window_frames):
        chunk = ids[start : start + window_frames]
        if chunk.shape[0] < window_frames and drop_partial:
            return
        distinct = np.unique(chunk)
        yield BasicWindow(
            index=window_index,
            start_frame=start,
            num_frames=int(chunk.shape[0]),
            cell_ids=distinct,
            sketch=family.sketch(distinct),
        )
        window_index += 1


def build_basic_windows(
    cell_ids: Sequence[int] | np.ndarray,
    window_frames: int,
    family: MinHashFamily,
    drop_partial: bool = False,
) -> List[BasicWindow]:
    """Chop a cell-id stream into sketched basic windows, batched.

    Same windows as :func:`iter_basic_windows` (identical sketch values —
    min over the same hash matrix), but every window of the chunk is
    hashed in one :meth:`~repro.minhash.family.MinHashFamily.sketch_many`
    pass instead of one ``(K, n)`` hashing call per window. This is the
    ``phase.sketch`` hot path of ``StreamingDetector.process_cell_ids``.
    """
    if window_frames <= 0:
        raise SketchError(f"window_frames must be positive, got {window_frames}")
    ids = np.asarray(cell_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise SketchError(f"cell ids must be 1-D, got shape {ids.shape}")
    total = ids.shape[0]
    starts = list(range(0, total, window_frames))
    if drop_partial and starts and total - starts[-1] < window_frames:
        starts.pop()
    chunks = [np.unique(ids[start : start + window_frames]) for start in starts]
    sketches = family.sketch_many(chunks)
    return [
        BasicWindow(
            index=window_index,
            start_frame=start,
            num_frames=int(min(window_frames, total - start)),
            cell_ids=distinct,
            sketch=sketch,
        )
        for window_index, (start, distinct, sketch) in enumerate(
            zip(starts, chunks, sketches)
        )
    ]
