"""Bottom-k (K-minimum-values) sketches — the alternative estimator.

The paper's sketch uses K independent hash functions and keeps one
minimum per function. The *bottom-k* scheme of Cohen et al. / Datar &
Muthukrishnan (the paper's refs [24], [25]) keeps the k smallest values
under a **single** hash function instead: hashing is k times cheaper per
element, combination is a merge-and-truncate, and the Jaccard estimator
is the fraction of the union's bottom-k that lands in both sets.

Included as the design-alternative the paper implicitly rejects: a
bottom-k sketch supports Property-1-style combination equally well, but
it does **not** admit the positional bit-vector signature of Section V —
the k kept values of different sequences are not aligned by hash
function, so there is no per-position ``>/=/<`` relationship to encode.
The ablation benchmark quantifies the estimator trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.errors import SketchError
from repro.utils.rng import make_rng

__all__ = ["BottomKFamily", "BottomKSketch"]

_PRIME = (1 << 31) - 1


def _mix(values: np.ndarray) -> np.ndarray:
    """Splitmix64 finalizer (same construction as the min-hash family)."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64)
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return (z & np.uint64(0x7FFFFFFE)).astype(np.int64)


@dataclass(frozen=True)
class BottomKSketch:
    """The k smallest hash values of a set (sorted ascending).

    Attributes
    ----------
    values:
        Sorted int64 array of length ``<= k`` (shorter when the set has
        fewer than k distinct elements).
    k:
        The sketch capacity.
    family:
        Producing family fingerprint, ``(k, seed)``.
    """

    values: np.ndarray = field(repr=False)
    k: int
    family: Tuple[int, int]

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise SketchError(f"k must be positive, got {self.k}")
        if self.values.ndim != 1 or self.values.shape[0] > self.k:
            raise SketchError("bottom-k values must be 1-D with length <= k")
        if self.values.shape[0] > 1 and (np.diff(self.values) < 0).any():
            raise SketchError("bottom-k values must be sorted ascending")

    def _check(self, other: "BottomKSketch") -> None:
        if self.family != other.family:
            raise SketchError(
                f"cannot operate across bottom-k families "
                f"{self.family} vs {other.family}"
            )

    def combine(self, other: "BottomKSketch") -> "BottomKSketch":
        """Sketch of the union: merge both value lists, keep the k
        smallest distinct values (the bottom-k analogue of Property 1)."""
        self._check(other)
        merged = np.unique(np.concatenate([self.values, other.values]))
        return BottomKSketch(values=merged[: self.k], k=self.k, family=self.family)

    def similarity(self, other: "BottomKSketch") -> float:
        """KMV Jaccard estimator.

        Take the k smallest distinct values of the union of both
        sketches; the fraction of them present in *both* sketches
        estimates ``|A ∩ B| / |A ∪ B|``.
        """
        self._check(other)
        union = np.unique(np.concatenate([self.values, other.values]))[: self.k]
        if union.size == 0:
            return 0.0
        in_self = np.isin(union, self.values, assume_unique=True)
        in_other = np.isin(union, other.values, assume_unique=True)
        return float(np.count_nonzero(in_self & in_other)) / union.size


@dataclass(frozen=True)
class BottomKFamily:
    """Factory of bottom-k sketches under one seeded hash function."""

    k: int
    seed: int = 0
    _a: int = field(init=False, repr=False, compare=False)
    _b: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise SketchError(f"k must be positive, got {self.k}")
        rng = make_rng(self.seed, "bottomk-family")
        object.__setattr__(self, "_a", int(rng.integers(1, _PRIME)))
        object.__setattr__(self, "_b", int(rng.integers(0, _PRIME)))

    @property
    def fingerprint(self) -> Tuple[int, int]:
        """Identity of the family, ``(k, seed)``."""
        return (self.k, self.seed)

    def sketch(self, elements: Iterable[int]) -> BottomKSketch:
        """Bottom-k sketch of a collection (duplicates ignored)."""
        ids = (
            np.asarray(elements, dtype=np.int64)
            if isinstance(elements, np.ndarray)
            else np.fromiter((int(e) for e in elements), dtype=np.int64)
        )
        if ids.size == 0:
            return BottomKSketch(
                values=np.empty(0, dtype=np.int64), k=self.k,
                family=self.fingerprint,
            )
        if ids.min() < 0 or ids.max() >= _PRIME:
            raise SketchError(f"elements must lie in [0, {_PRIME})")
        hashed = (self._a * _mix(np.unique(ids)) + self._b) % _PRIME
        hashed.sort()
        return BottomKSketch(
            values=hashed[: self.k], k=self.k, family=self.fingerprint
        )
