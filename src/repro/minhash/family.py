"""The K-function universal hash family behind the min-hash sketches.

Each of the ``K`` functions is ``h_i(x) = (a_i m(x) + b_i) mod p`` with
``p = 2^31 - 1`` (a Mersenne prime comfortably larger than any cell-id
universe this library produces: the largest configuration, d=7, u=7, has
``2 * 7 * 7^7 ≈ 1.15e7`` cells) and ``m`` a fixed splitmix64-style bit
mixer. Universal (pairwise-independent) families are the standard
practical stand-in for the approximate min-wise families of Indyk /
Cohen et al. cited by the paper, but a *purely linear* hash is visibly
biased on arithmetically structured element sets (consecutive cell ids
map to arithmetic progressions, which linear maps keep structured); the
mixer destroys that structure, bringing the estimator bias far below
sampling noise at the K values studied.

All coefficients derive from a seed, and sketches remember the family
fingerprint, so combining sketches from different families is an error
instead of silent garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SketchError
from repro.minhash.sketch import Sketch
from repro.utils.rng import make_rng

__all__ = ["MinHashFamily", "MERSENNE_PRIME_31"]

MERSENNE_PRIME_31 = (1 << 31) - 1


def _mix_bits(values: np.ndarray) -> np.ndarray:
    """Splitmix64 finalizer: a fixed, seedless avalanche permutation.

    Decorrelates structured element sets before the per-function linear
    hashes. Input int64 >= 0; output int64 in [0, 2^31).
    """
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64)
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return (z & np.uint64(0x7FFFFFFE)).astype(np.int64)


@dataclass(frozen=True)
class MinHashFamily:
    """``K`` seeded universal hash functions over a bounded integer domain.

    Parameters
    ----------
    num_hashes:
        ``K``, the sketch width.
    seed:
        Seed from which all multipliers/offsets derive.
    prime:
        Field modulus; must exceed every element ever hashed.
    """

    num_hashes: int
    seed: int = 0
    prime: int = MERSENNE_PRIME_31
    _a: np.ndarray = field(init=False, repr=False, compare=False)
    _b: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_hashes <= 0:
            raise SketchError(f"num_hashes must be positive, got {self.num_hashes}")
        if self.prime <= 2:
            raise SketchError(f"prime must exceed 2, got {self.prime}")
        rng = make_rng(self.seed, "minhash-family")
        a = rng.integers(1, self.prime, size=self.num_hashes, dtype=np.int64)
        b = rng.integers(0, self.prime, size=self.num_hashes, dtype=np.int64)
        object.__setattr__(self, "_a", a)
        object.__setattr__(self, "_b", b)

    @property
    def fingerprint(self) -> Tuple[int, int, int]:
        """Identity of the family: (K, seed, prime).

        Sketches carry this so cross-family operations fail loudly.
        """
        return (self.num_hashes, self.seed, self.prime)

    def hash_values(self, elements: np.ndarray) -> np.ndarray:
        """Hash each element under each function.

        Parameters
        ----------
        elements:
            1-D integer array with values in ``[0, prime)``.

        Returns
        -------
        numpy.ndarray
            Shape ``(K, len(elements))`` of int64 hash values in
            ``[0, prime)``.
        """
        ids = self._checked_int64(elements)
        mixed = _mix_bits(ids)
        return (
            self._a[:, np.newaxis] * mixed[np.newaxis, :] + self._b[:, np.newaxis]
        ) % self.prime

    def _checked_int64(self, elements: np.ndarray) -> np.ndarray:
        """Validate an element array, copying only when conversion demands.

        The range check is a single unsigned comparison pass: a negative
        int64 reinterprets as a huge uint64, so ``[0, prime)`` membership
        is exactly ``uint64(x) < prime`` (min/max are only computed on
        the cold error path).
        """
        ids = np.asarray(elements)
        if ids.dtype != np.int64:
            ids = ids.astype(np.int64)
        if ids.ndim != 1:
            raise SketchError(f"elements must be 1-D, got shape {ids.shape}")
        if ids.size and not (
            np.ascontiguousarray(ids).view(np.uint64) < np.uint64(self.prime)
        ).all():
            raise SketchError(
                f"elements must lie in [0, {self.prime}); "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        return ids

    def sketch(self, elements: Iterable[int]) -> Sketch:
        """K-min-hash sketch of a set of elements.

        Duplicate elements are harmless (min is idempotent). Sketching an
        empty collection yields the :meth:`empty_sketch`, the identity of
        sketch combination.
        """
        if isinstance(elements, np.ndarray):
            ids = self._checked_int64(elements)
        else:
            ids = self._checked_int64(
                np.fromiter((int(e) for e in elements), dtype=np.int64)
            )
        if ids.size == 0:
            return self.empty_sketch()
        mixed = _mix_bits(np.unique(ids))
        values = (
            (self._a[:, np.newaxis] * mixed[np.newaxis, :] + self._b[:, np.newaxis])
            % self.prime
        ).min(axis=1)
        return Sketch(values=values, family=self.fingerprint)

    def sketch_many(self, element_arrays: Sequence[np.ndarray]) -> List[Sketch]:
        """K-min-hash sketches of many element sets in one hashing pass.

        All arrays are validated, concatenated and hashed as a single
        ``(K, N)`` matrix, then reduced to per-set minima with one
        segmented reduction — the batched form `StreamingDetector` uses
        to sketch every basic window of a chunk at once. Empty sets yield
        the :meth:`empty_sketch` values, exactly as :meth:`sketch`.

        Elements are assumed distinct *within each array* (the windowing
        layer passes ``np.unique`` output); duplicates would still be
        correct, only redundant work.
        """
        fingerprint = self.fingerprint
        if not element_arrays:
            return []
        checked = [self._checked_int64(ids) for ids in element_arrays]
        lengths = np.array([ids.size for ids in checked], dtype=np.int64)
        nonempty = lengths > 0
        values = np.full(
            (len(checked), self.num_hashes), self.prime, dtype=np.int64
        )
        if nonempty.any():
            mixed = _mix_bits(np.concatenate([c for c in checked if c.size]))
            hashed = (
                self._a[:, np.newaxis] * mixed[np.newaxis, :]
                + self._b[:, np.newaxis]
            ) % self.prime
            offsets = np.zeros(int(nonempty.sum()), dtype=np.int64)
            np.cumsum(lengths[nonempty][:-1], out=offsets[1:])
            minima = np.minimum.reduceat(hashed, offsets, axis=1)
            values[nonempty] = minima.T
        return [Sketch._raw(row, fingerprint) for row in values]

    def empty_sketch(self) -> Sketch:
        """The identity sketch: every coordinate at the +inf sentinel.

        The sentinel is ``prime`` itself, which no real hash value can
        reach, so combining with the empty sketch is a no-op.
        """
        values = np.full(self.num_hashes, self.prime, dtype=np.int64)
        return Sketch(values=values, family=self.fingerprint)
