"""The K-min-hash sketch value object and its columnar block form.

A :class:`Sketch` is the vector of per-hash-function minima over a set of
cell ids, tagged with its family fingerprint. Combination (Property 1 of
the paper) is coordinate-wise minimum; similarity estimation is the
fraction of coordinate-wise equal values.

:class:`SketchBlock` is the structure-of-arrays counterpart used by the
columnar engines: ``C`` sketches stored as one ``(C, K)`` int64 matrix,
so extending every live candidate with an arriving window is a single
broadcast ``np.minimum`` and scoring all (candidate, query) pairs is one
vectorized equality count (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import SketchError

__all__ = ["Sketch", "SketchBlock"]


@dataclass(frozen=True)
class Sketch:
    """An approximate K-min-hash sketch.

    Attributes
    ----------
    values:
        Int64 array of shape ``(K,)`` — the minimum hash value per
        function (or the family's sentinel for an empty set).
    family:
        The producing family's fingerprint ``(K, seed, prime)``; guards
        against combining incompatible sketches.
    """

    values: np.ndarray = field(repr=False)
    family: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if not isinstance(self.values, np.ndarray) or self.values.ndim != 1:
            raise SketchError("sketch values must be a 1-D numpy array")
        if self.values.shape[0] != self.family[0]:
            raise SketchError(
                f"sketch width {self.values.shape[0]} does not match "
                f"family K={self.family[0]}"
            )

    @classmethod
    def _raw(cls, values: np.ndarray, family: Tuple[int, int, int]) -> "Sketch":
        """Unchecked constructor for internal hot paths.

        Skips ``__post_init__`` validation (mirroring
        :meth:`~repro.signature.bitsig.BitSignature._raw`); callers
        guarantee ``values`` is a 1-D int64 array of width ``family[0]``.
        """
        sketch = object.__new__(cls)
        object.__setattr__(sketch, "values", values)
        object.__setattr__(sketch, "family", family)
        return sketch

    @property
    def num_hashes(self) -> int:
        """``K``, the sketch width."""
        return int(self.values.shape[0])

    def _check_compatible(self, other: "Sketch") -> None:
        if self.family != other.family:
            raise SketchError(
                f"cannot operate on sketches from different families: "
                f"{self.family} vs {other.family}"
            )

    def combine(self, other: "Sketch") -> "Sketch":
        """Sketch of the union of the underlying sets (Property 1).

        Coordinate-wise minimum; O(K) and associative/commutative/
        idempotent, which is what lets Sequential and Geometric orders
        build any candidate sequence bottom-up from basic windows.
        """
        self._check_compatible(other)
        return Sketch(values=np.minimum(self.values, other.values), family=self.family)

    def similarity(self, other: "Sketch") -> float:
        """Estimated Jaccard similarity: fraction of equal coordinates."""
        self._check_compatible(other)
        return float(np.count_nonzero(self.values == other.values)) / self.num_hashes

    def equal_count(self, other: "Sketch") -> int:
        """Number of coordinate-wise equal hash values (``N_e``)."""
        self._check_compatible(other)
        return int(np.count_nonzero(self.values == other.values))

    def is_empty(self) -> bool:
        """Whether this is the identity (empty-set) sketch."""
        return bool((self.values == self.family[2]).all())

    def copy(self) -> "Sketch":
        """An independent copy (values array duplicated)."""
        return Sketch(values=self.values.copy(), family=self.family)


class SketchBlock:
    """``C`` same-family sketches as one ``(C, K)`` int64 matrix.

    The columnar engines keep every live candidate's sketch as one row of
    this block, replacing ``C`` Python-level :meth:`Sketch.combine` calls
    per window with a single broadcast minimum and ``C × Q`` similarity
    evaluations with one equality-count kernel. Rows stay in candidate
    order; compaction (:meth:`take`) preserves it.
    """

    __slots__ = ("values", "family")

    def __init__(self, values: np.ndarray, family: Tuple[int, int, int]) -> None:
        if values.ndim != 2 or values.shape[1] != family[0]:
            raise SketchError(
                f"sketch block must be (C, K={family[0]}), got {values.shape}"
            )
        self.values = values
        self.family = family

    @classmethod
    def empty(cls, family: Tuple[int, int, int]) -> "SketchBlock":
        """A block with zero rows."""
        return cls(np.empty((0, family[0]), dtype=np.int64), family)

    @classmethod
    def from_sketches(cls, sketches: Sequence[Sketch]) -> "SketchBlock":
        """Stack scalar sketches (all of one family) into a block."""
        if not sketches:
            raise SketchError("cannot build a block from zero sketches")
        family = sketches[0].family
        for sketch in sketches:
            if sketch.family != family:
                raise SketchError(
                    f"cannot block sketches from different families: "
                    f"{family} vs {sketch.family}"
                )
        return cls(np.stack([sketch.values for sketch in sketches]), family)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def _check_family(self, other_family: Tuple[int, int, int]) -> None:
        if self.family != other_family:
            raise SketchError(
                f"cannot operate across different families: "
                f"{self.family} vs {other_family}"
            )

    def combine_all(self, sketch: Sketch) -> None:
        """Min-merge one sketch into every row (``C`` Property-1 combines
        as a single broadcast ``np.minimum``), in place."""
        self._check_family(sketch.family)
        np.minimum(self.values, sketch.values[np.newaxis, :], out=self.values)

    def append(self, sketch: Sketch) -> None:
        """Append one sketch as a new trailing row."""
        self._check_family(sketch.family)
        self.values = np.concatenate(
            [self.values, sketch.values[np.newaxis, :]]
        )

    def take(self, keep: np.ndarray) -> None:
        """Compact to the rows selected by boolean mask ``keep``."""
        self.values = self.values[keep]

    def row_sketch(self, row: int) -> Sketch:
        """Row ``row`` as a scalar :class:`Sketch` (fast constructor)."""
        return Sketch._raw(self.values[row].copy(), self.family)

    def equal_count_matrix(self, query_matrix: np.ndarray) -> np.ndarray:
        """``(C, Q)`` matrix of coordinate-wise equal-value counts.

        ``query_matrix`` is the ``(Q, K)`` stack of query sketch values;
        entry ``[c, q]`` is ``N_e`` of row ``c`` against query ``q`` —
        dividing by ``K`` gives the Jaccard estimate of
        :meth:`Sketch.similarity` bit-for-bit (same float64 division).
        """
        return np.count_nonzero(
            self.values[:, np.newaxis, :] == query_matrix[np.newaxis, :, :],
            axis=2,
        )

    def similarity_matrix(self, query_matrix: np.ndarray) -> np.ndarray:
        """``(C, Q)`` float64 similarity estimates vs the query stack."""
        num_hashes = self.family[0]
        return self.equal_count_matrix(query_matrix) / num_hashes
