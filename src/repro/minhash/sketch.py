"""The K-min-hash sketch value object.

A :class:`Sketch` is the vector of per-hash-function minima over a set of
cell ids, tagged with its family fingerprint. Combination (Property 1 of
the paper) is coordinate-wise minimum; similarity estimation is the
fraction of coordinate-wise equal values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import SketchError

__all__ = ["Sketch"]


@dataclass(frozen=True)
class Sketch:
    """An approximate K-min-hash sketch.

    Attributes
    ----------
    values:
        Int64 array of shape ``(K,)`` — the minimum hash value per
        function (or the family's sentinel for an empty set).
    family:
        The producing family's fingerprint ``(K, seed, prime)``; guards
        against combining incompatible sketches.
    """

    values: np.ndarray = field(repr=False)
    family: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if not isinstance(self.values, np.ndarray) or self.values.ndim != 1:
            raise SketchError("sketch values must be a 1-D numpy array")
        if self.values.shape[0] != self.family[0]:
            raise SketchError(
                f"sketch width {self.values.shape[0]} does not match "
                f"family K={self.family[0]}"
            )

    @property
    def num_hashes(self) -> int:
        """``K``, the sketch width."""
        return int(self.values.shape[0])

    def _check_compatible(self, other: "Sketch") -> None:
        if self.family != other.family:
            raise SketchError(
                f"cannot operate on sketches from different families: "
                f"{self.family} vs {other.family}"
            )

    def combine(self, other: "Sketch") -> "Sketch":
        """Sketch of the union of the underlying sets (Property 1).

        Coordinate-wise minimum; O(K) and associative/commutative/
        idempotent, which is what lets Sequential and Geometric orders
        build any candidate sequence bottom-up from basic windows.
        """
        self._check_compatible(other)
        return Sketch(values=np.minimum(self.values, other.values), family=self.family)

    def similarity(self, other: "Sketch") -> float:
        """Estimated Jaccard similarity: fraction of equal coordinates."""
        self._check_compatible(other)
        return float(np.count_nonzero(self.values == other.values)) / self.num_hashes

    def equal_count(self, other: "Sketch") -> int:
        """Number of coordinate-wise equal hash values (``N_e``)."""
        self._check_compatible(other)
        return int(np.count_nonzero(self.values == other.values))

    def is_empty(self) -> bool:
        """Whether this is the identity (empty-set) sketch."""
        return bool((self.values == self.family[2]).all())

    def copy(self) -> "Sketch":
        """An independent copy (values array duplicated)."""
        return Sketch(values=self.values.copy(), family=self.family)
