"""Analytical properties of the min-hash estimator.

Utilities for choosing K: the estimator counts coordinate-wise equal
minima, i.e. a Binomial(K, J) sample mean, so its standard error and
tail bounds are closed-form. The paper picks K empirically (Figures
7-8); these functions predict the same knees analytically, and the test
suite validates them against Monte-Carlo runs of the real sketches.
"""

from __future__ import annotations

import math

from repro.errors import SketchError

__all__ = [
    "estimator_stddev",
    "false_negative_probability",
    "false_positive_probability",
    "required_hashes",
]


def estimator_stddev(jaccard: float, num_hashes: int) -> float:
    """Standard deviation of the K-min-hash Jaccard estimate.

    ``sqrt(J (1 - J) / K)`` — the Binomial sample-mean deviation.
    """
    if not 0.0 <= jaccard <= 1.0:
        raise SketchError(f"jaccard must be in [0, 1], got {jaccard}")
    if num_hashes <= 0:
        raise SketchError(f"num_hashes must be positive, got {num_hashes}")
    return math.sqrt(jaccard * (1.0 - jaccard) / num_hashes)


def _hoeffding_tail(gap: float, num_hashes: int) -> float:
    """Hoeffding bound ``exp(-2 K gap^2)`` for a one-sided deviation."""
    return math.exp(-2.0 * num_hashes * gap * gap)


def false_positive_probability(
    jaccard: float, threshold: float, num_hashes: int
) -> float:
    """Upper bound on ``Pr[estimate >= δ]`` for a non-copy (J < δ).

    A pair with true similarity below the threshold is falsely reported
    when sampling noise lifts the estimate across δ; Hoeffding bounds
    that tail by ``exp(-2 K (δ - J)^2)``. Returns 1.0 when J >= δ (the
    pair is a true copy; "false positive" does not apply).
    """
    if not 0.0 <= threshold <= 1.0:
        raise SketchError(f"threshold must be in [0, 1], got {threshold}")
    if jaccard >= threshold:
        return 1.0
    return min(1.0, _hoeffding_tail(threshold - jaccard, num_hashes))


def false_negative_probability(
    jaccard: float, threshold: float, num_hashes: int
) -> float:
    """Upper bound on ``Pr[estimate < δ]`` for a true copy (J >= δ)."""
    if not 0.0 <= threshold <= 1.0:
        raise SketchError(f"threshold must be in [0, 1], got {threshold}")
    if jaccard < threshold:
        return 1.0
    return min(1.0, _hoeffding_tail(jaccard - threshold, num_hashes))


def required_hashes(
    margin: float, error_probability: float = 0.01
) -> int:
    """Smallest K guaranteeing misclassification below
    ``error_probability`` for pairs at least ``margin`` away from δ.

    Inverts the Hoeffding bound: ``K >= ln(1/p) / (2 margin^2)``. E.g. a
    0.1 similarity margin at 1 % error needs K = 231 — consistent with
    the paper's observation that precision saturates near K ≈ 1000 for
    its tighter real-video margins.
    """
    if not 0.0 < margin <= 1.0:
        raise SketchError(f"margin must be in (0, 1], got {margin}")
    if not 0.0 < error_probability < 1.0:
        raise SketchError(
            f"error_probability must be in (0, 1), got {error_probability}"
        )
    return math.ceil(math.log(1.0 / error_probability) / (2.0 * margin * margin))
