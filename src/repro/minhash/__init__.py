"""Approximate min-wise hashing over frame-signature sets (Section IV).

A video (sub)sequence, reduced to its set of grid-pyramid cell ids, is
sketched by ``K`` independent universal hash functions: the sketch is the
vector of per-function minimum hash values. Two properties carry the whole
streaming design:

* the fraction of coordinate-wise equal values between two sketches is an
  unbiased estimator of the Jaccard similarity (Definition 2);
* the sketch of a concatenation is the coordinate-wise **min** of the
  parts' sketches (the paper's Property 1), enabling bottom-up candidate
  construction from basic windows.
"""

from repro.minhash.bottomk import BottomKFamily, BottomKSketch
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch
from repro.minhash.theory import (
    estimator_stddev,
    false_negative_probability,
    false_positive_probability,
    required_hashes,
)
from repro.minhash.windows import BasicWindow, iter_basic_windows

__all__ = [
    "BasicWindow",
    "BottomKFamily",
    "BottomKSketch",
    "MinHashFamily",
    "Sketch",
    "estimator_stddev",
    "false_negative_probability",
    "false_positive_probability",
    "iter_basic_windows",
    "required_hashes",
]
