"""repro — Continuous Content-Based Copy Detection over Streaming Videos.

A complete, self-contained reproduction of Yan, Ooi & Zhou (ICDE 2008):
min-hash sketches over grid-pyramid frame signatures, bit-vector
comparison signatures with Lemma-2 pruning, the Hash-Query continuous-
query index, Sequential/Geometric candidate maintenance, the Seq and Warp
baselines, and a synthetic-video substrate (toy MPEG codec, content
generator, editing attacks) standing in for the paper's real videos.

Quickstart
----------
>>> from repro import (ScaleProfile, ClipLibrary, StreamDoctor,
...                    DetectorConfig, PreparedWorkload, run_detector)
>>> profile = ScaleProfile.smoke_scale()
>>> library = ClipLibrary.generate(profile, seed=7)
>>> stream = StreamDoctor(profile, seed=7).build_vs1(library)
>>> prepared = PreparedWorkload.prepare(stream, library)
>>> result = run_detector(prepared, DetectorConfig(num_hashes=200))
>>> result.quality.recall > 0
True
"""

from repro.config import (
    CombinationOrder,
    DetectorConfig,
    FingerprintConfig,
    Representation,
    ScaleProfile,
    TABLE1_DEFAULTS,
)
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.monitor import EngineStats
from repro.core.query import Query, QuerySet
from repro.core.results import Detection, Match, merge_matches
from repro.errors import ReproError, ServeError
from repro.evaluation.metrics import PrecisionRecall, score_matches
from repro.evaluation.runner import ExperimentResult, PreparedWorkload, run_detector
from repro.features.pipeline import FingerprintExtractor
from repro.index.hq import HashQueryIndex
from repro.index.probe import probe_index
from repro.minhash.bottomk import BottomKFamily, BottomKSketch
from repro.minhash.family import MinHashFamily
from repro.minhash.sketch import Sketch
from repro.minhash.windows import BasicWindow, iter_basic_windows
from repro.obs.export import logfmt_digest, snapshot, to_json
from repro.obs.merge import merge_snapshots
from repro.obs.registry import MetricsRegistry, PhaseTimer
from repro.partition.gridpyramid import GridPyramidPartitioner
from repro.persistence import load_query_set, save_query_set
from repro.serve import (
    BackpressurePolicy,
    CheckpointManager,
    DetectionService,
    MatchCollector,
    ServiceCheckpoint,
    ShardPlan,
    ShardPlanner,
)
from repro.signature.bitsig import BitSignature
from repro.video.clip import VideoClip
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import DoctoredStream, StreamDoctor
from repro.workloads.groundtruth import GroundTruth, Occurrence
from repro.workloads.library import ClipLibrary

__version__ = "1.0.0"

__all__ = [
    "BackpressurePolicy",
    "BasicWindow",
    "BitSignature",
    "BottomKFamily",
    "BottomKSketch",
    "CheckpointManager",
    "ClipLibrary",
    "ClipSynthesizer",
    "CombinationOrder",
    "Detection",
    "DetectionService",
    "DetectorConfig",
    "DoctoredStream",
    "EngineStats",
    "ExperimentResult",
    "FingerprintConfig",
    "FingerprintExtractor",
    "GridPyramidPartitioner",
    "GroundTruth",
    "HashQueryIndex",
    "LiveMonitor",
    "Match",
    "MatchCollector",
    "MetricsRegistry",
    "MinHashFamily",
    "Occurrence",
    "PhaseTimer",
    "PrecisionRecall",
    "PreparedWorkload",
    "Query",
    "QuerySet",
    "Representation",
    "ReproError",
    "ScaleProfile",
    "ServeError",
    "ServiceCheckpoint",
    "ShardPlan",
    "ShardPlanner",
    "Sketch",
    "StreamDoctor",
    "StreamingDetector",
    "TABLE1_DEFAULTS",
    "VideoClip",
    "__version__",
    "iter_basic_windows",
    "load_query_set",
    "logfmt_digest",
    "merge_matches",
    "merge_snapshots",
    "probe_index",
    "run_detector",
    "save_query_set",
    "score_matches",
    "snapshot",
    "to_json",
]
