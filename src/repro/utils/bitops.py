"""Bit-vector helpers for signature arithmetic.

Bit-vector signatures (Section V-A of the paper) are stored as arbitrary
precision Python integers: bit ``r`` of the integer is bit position ``r`` of
the signature plane. Python integers give free word-parallel OR/AND and a
constant-factor-fast population count through :meth:`int.bit_count` (or a
fallback on interpreters that lack it).
"""

from __future__ import annotations

__all__ = ["bit_length_words", "count_ones", "count_zeros_in_low_bits", "low_mask"]

_HAS_BIT_COUNT = hasattr(int, "bit_count")


def count_ones(value: int) -> int:
    """Return the population count (number of 1 bits) of ``value``.

    ``value`` must be non-negative; signatures are always non-negative.
    """
    if value < 0:
        raise ValueError("population count is defined for non-negative ints")
    if _HAS_BIT_COUNT:
        return value.bit_count()
    return bin(value).count("1")


def low_mask(width: int) -> int:
    """Return an integer with the ``width`` lowest bits set."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def count_zeros_in_low_bits(value: int, width: int) -> int:
    """Count zero bits among the ``width`` least-significant bits.

    Used by Lemma 1: ``n0`` is the number of zero bits in the ``ge`` plane
    of a signature of width ``K``.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return width - count_ones(value & low_mask(width))


def bit_length_words(width_bits: int, word_bits: int = 64) -> int:
    """Number of ``word_bits``-wide machine words needed for ``width_bits``.

    Purely informational — used by the memory-accounting monitor to convert
    signature bit widths into byte estimates the way the paper's Section VI
    reports memory (2K bits per signature).
    """
    if width_bits < 0 or word_bits <= 0:
        raise ValueError("widths must be positive")
    return (width_bits + word_bits - 1) // word_bits
