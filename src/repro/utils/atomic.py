"""Crash-safe file writes shared by every on-disk format.

Three subsystems persist npz archives whose readers must never observe
a torn file: service checkpoints (``repro.ckpt/*``), stream recordings
(``repro.stream/1``) and archive segments (``repro.arch/1``). They all
follow the same protocol, implemented once here:

1. write the payload to a temporary sibling (same directory, so the
   final rename cannot cross filesystems),
2. flush *and* ``fsync`` the temporary file, so the bytes are durable
   before the name is,
3. ``os.replace`` the temporary over the final path — atomic on POSIX
   and Windows — so readers see either the old complete file or the new
   complete file, never a prefix.

A crash between (2) and (3) leaves a ``*.tmp`` sibling behind; writers
ignore them and recovery scans (:mod:`repro.archive.store`) delete
them. The directory entry itself is fsync'd too where the platform
allows, closing the rename-durability gap on power loss.
"""

from __future__ import annotations

import os
import pathlib
from typing import Mapping, Union

import numpy as np

__all__ = ["TMP_SUFFIX", "atomic_write_bytes", "atomic_savez"]

#: Suffix of in-flight temporaries. Scanners must skip (or sweep) it.
TMP_SUFFIX = ".tmp"


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, pathlib.Path], data: bytes
) -> pathlib.Path:
    """Durably write ``data`` to ``path`` via fsync + tmp-rename."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return path


def atomic_savez(
    path: Union[str, pathlib.Path],
    payload: Mapping[str, np.ndarray],
    compressed: bool = True,
) -> pathlib.Path:
    """Durably write an npz archive to ``path`` via fsync + tmp-rename.

    NOTE: the payload mapping is expanded as keywords — never include an
    ``allow_pickle`` key; ``np.savez*`` would store it as an array
    member (object arrays are pickled by default on save; it is the
    *load* side that opts in).
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    writer = np.savez_compressed if compressed else np.savez
    with open(tmp, "wb") as handle:
        writer(handle, **payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return path
