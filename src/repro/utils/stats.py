"""Small statistics helpers for the evaluation harness.

The memory experiments (Fig. 10) report the *average number of bit
signatures maintained* over the run of a stream. :class:`RunningStats`
accumulates that average in O(1) memory, plus min/max for sanity reporting.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["RunningStats", "mean", "percentile"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises :class:`ValueError` on an empty iterable."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    if count == 0:
        raise ValueError("mean of an empty iterable is undefined")
    return total / count


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``q`` in [0, 100].

    Implemented directly (rather than via numpy) so that the evaluation
    harness works on plain Python floats without array conversion.
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class RunningStats:
    """Welford-style accumulator for mean/variance/min/max of a sample.

    Example
    -------
    >>> rs = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     rs.add(x)
    >>> rs.mean
    2.0
    >>> rs.count
    3
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when no observations have been added."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation; +inf when empty."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation; -inf when empty."""
        return self._max

    def state(self) -> tuple:
        """``(count, mean, m2, min, max)`` — the full restorable state.

        Together with :meth:`load_state` this lets a checkpoint carry a
        distribution across process restarts with bit-identical mean,
        variance and extrema (``repro.serve`` worker snapshots).
        """
        return (self.count, self._mean, self._m2, self._min, self._max)

    def load_state(self, state: Sequence[float]) -> None:
        """Reinstate a :meth:`state` tuple, replacing any accumulation."""
        count, mean_, m2, min_, max_ = state
        self.count = int(count)
        self._mean = float(mean_)
        self._m2 = float(m2)
        self._min = float(min_)
        self._max = float(max_)

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"min={self._min:.4g}, max={self._max:.4g})"
        )
