"""Wall-clock timing helpers used by the evaluation harness.

The paper reports "processing time including partial decoding and query
processing time ... from the arrival of the first frame until the last
frame". :class:`Stopwatch` accumulates exactly that: it can be paused
around workload-generation code so that only detector work is measured.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """An accumulating, pausable wall-clock timer.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     do_measured_work()     # doctest: +SKIP
    >>> sw.elapsed  # doctest: +SKIP
    0.1234
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently accumulating time."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total measured seconds, including a currently running span."""
        total = self._accumulated
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def start(self) -> None:
        """Begin (or resume) timing. Starting twice is an error."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Pause timing and return total elapsed seconds so far."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._accumulated += time.perf_counter() - self._started_at
        self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        """Zero the accumulated time; the stopwatch must be stopped."""
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running stopwatch")
        self._accumulated = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
