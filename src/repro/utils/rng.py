"""Deterministic random-number management.

Every stochastic component of the reproduction (content synthesis, editing
attacks, hash families, workload doctoring) draws from a
:class:`numpy.random.Generator` created here. Components never share a
generator; instead each derives its own child seed from a parent seed and a
string *purpose* label. This keeps experiments reproducible even when the
order in which components consume randomness changes between versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng"]

_SEED_MASK = (1 << 63) - 1


def derive_seed(parent_seed: int, purpose: str) -> int:
    """Derive a child seed from ``parent_seed`` and a ``purpose`` label.

    The derivation is a SHA-256 hash of the parent seed and the label, so
    distinct purposes yield statistically independent child seeds and the
    mapping is stable across Python processes and platforms (unlike
    ``hash()``, which is salted per process).

    Parameters
    ----------
    parent_seed:
        Any Python integer (negative values are allowed and folded in).
    purpose:
        A short human-readable label naming the consumer, e.g.
        ``"hash-family"`` or ``"clip-7-noise"``.

    Returns
    -------
    int
        A non-negative 63-bit seed.
    """
    digest = hashlib.sha256(f"{parent_seed}:{purpose}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def make_rng(seed: int, purpose: str = "") -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Parent seed shared by an experiment.
    purpose:
        Optional label; when given the generator is seeded with
        ``derive_seed(seed, purpose)`` so that two consumers with different
        purposes never see correlated streams.
    """
    if purpose:
        seed = derive_seed(seed, purpose)
    return np.random.default_rng(seed & _SEED_MASK)
