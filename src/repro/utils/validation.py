"""Eager argument validation helpers.

Configuration objects in this library validate on construction so that a
mis-configured experiment fails immediately rather than thousands of frames
into a stream. These helpers keep the validation sites one-liners while
producing uniform, descriptive error messages.
"""

from __future__ import annotations

from typing import Any, Type

from repro.errors import ConfigError

__all__ = ["require", "require_in_range", "require_positive", "require_type"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`~repro.errors.ConfigError` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def require_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def require_in_range(name: str, value: float, low: float, high: float) -> None:
    """Require ``low <= value <= high`` (inclusive on both ends)."""
    if not low <= value <= high:
        raise ConfigError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_type(name: str, value: Any, expected: Type) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise ConfigError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
