"""Shared low-level utilities: seeding, bit operations, timing, statistics."""

from repro.utils.bitops import bit_length_words, count_ones, count_zeros_in_low_bits
from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import RunningStats, mean, percentile
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_type,
)

__all__ = [
    "RunningStats",
    "Stopwatch",
    "bit_length_words",
    "count_ones",
    "count_zeros_in_low_bits",
    "derive_seed",
    "make_rng",
    "mean",
    "percentile",
    "require",
    "require_in_range",
    "require_positive",
    "require_type",
]
