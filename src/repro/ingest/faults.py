"""Deterministic fault injection for stream chunks.

:class:`FaultInjector` wraps any :class:`~repro.ingest.sources.StreamSource`
and damages its chunk stream the way real delivery paths do: flipped
bits inside the compressed payload, truncated tails, whole chunks lost,
chunks delivered twice, and delivery stalls. Every decision is drawn
from a per-chunk substream —
``make_rng(seed, f"fault:s{stream_id}:c{seq}")`` — so a given (seed,
stream, chunk) triple always suffers exactly the same damage regardless
of scheduling order or how many other streams run alongside. That is
what makes chaos tests reproducible and lets the equivalence suite
re-run a damaged stream in isolation.

Bit flips and truncation only apply to encoded-bitstream payloads (a
lost UDP datagram corrupts bytes on the wire, not the decoded arrays a
test source hands over); drops, duplicates and stalls apply to every
payload kind. The stream header can be protected (default): real
transports resend stream metadata out of band, and an unprotected
header turns a one-bit fault into a whole-chunk loss — still a valid
scenario, so ``protect_header=False`` is available for the harshest
chaos runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.codec.bitstream import BitstreamReader
from repro.codec.gop import EncodedVideo
from repro.errors import BitstreamError, IngestError
from repro.ingest.sources import StreamChunk, StreamSource
from repro.utils.rng import make_rng

__all__ = ["FAULT_PRESETS", "FaultInjector", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Per-chunk fault probabilities and magnitudes.

    Attributes
    ----------
    bit_flip:
        Probability a chunk's payload gets 1..``max_flips`` bits flipped.
    max_flips:
        Upper bound on flipped bits per damaged chunk.
    truncate:
        Probability a chunk's payload is cut short at a random point.
    drop:
        Probability a chunk is never delivered at all.
    duplicate:
        Probability a chunk is delivered twice (same ``seq``).
    stall:
        Probability a chunk arrives late by ``stall_seconds``.
    stall_seconds:
        Simulated delay attached to stalled chunks.
    protect_header:
        Keep the magic + header bytes intact under flips/truncation.
    """

    bit_flip: float = 0.0
    max_flips: int = 1
    truncate: float = 0.0
    drop: float = 0.0
    duplicate: float = 0.0
    stall: float = 0.0
    stall_seconds: float = 0.05
    protect_header: bool = True

    def __post_init__(self) -> None:
        for name in ("bit_flip", "truncate", "drop", "duplicate", "stall"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise IngestError(
                    f"fault probability {name} must be in [0, 1], got {value}"
                )
        if self.max_flips < 1:
            raise IngestError(
                f"max_flips must be >= 1, got {self.max_flips}"
            )
        if self.stall_seconds < 0:
            raise IngestError(
                f"stall_seconds cannot be negative ({self.stall_seconds})"
            )


#: Named plans for the CLI / CI chaos runs.
FAULT_PRESETS = {
    "none": FaultPlan(),
    "light": FaultPlan(bit_flip=0.1, max_flips=1, stall=0.05),
    "heavy": FaultPlan(
        bit_flip=0.4,
        max_flips=4,
        truncate=0.1,
        drop=0.1,
        duplicate=0.1,
        stall=0.2,
    ),
}


def _header_length(data: bytes) -> int:
    """Byte length of magic + header, or a 4-byte floor if unparseable."""
    reader = BitstreamReader(data)
    try:
        reader.read_magic()
        reader.skip_uvarints(8)
    except BitstreamError:
        return min(len(data), 4)
    return reader.position


class FaultInjector(StreamSource):
    """Damage a wrapped source's chunks deterministically.

    The ``chunks_offered`` / ``keyframes_offered`` counters report what
    the *underlying* source produced — the ground truth the scheduler
    reconciles against — while the injector's own counters
    (``chunks_dropped``, ``keyframes_dropped``, ``chunks_duplicated``,
    ``bits_flipped``, ``chunks_truncated``, ``chunks_stalled``) describe
    the damage done in flight.
    """

    def __init__(
        self,
        source: StreamSource,
        plan: FaultPlan,
        seed: int,
    ) -> None:
        super().__init__(source.stream_id)
        self.source = source
        self.plan = plan
        self.seed = seed
        self.chunks_dropped = 0
        self.keyframes_dropped = 0
        self.chunks_duplicated = 0
        self.bits_flipped = 0
        self.chunks_truncated = 0
        self.chunks_stalled = 0

    # The truth counters live on the wrapped source.
    @property
    def chunks_offered(self) -> int:  # type: ignore[override]
        return self.source.chunks_offered

    @property
    def keyframes_offered(self) -> int:  # type: ignore[override]
        return self.source.keyframes_offered

    @chunks_offered.setter
    def chunks_offered(self, value: int) -> None:
        pass  # StreamSource.__init__ assigns 0; the wrapped source owns it

    @keyframes_offered.setter
    def keyframes_offered(self, value: int) -> None:
        pass

    def _corrupt_payload(
        self,
        payload: EncodedVideo,
        rng,
    ) -> EncodedVideo:
        plan = self.plan
        data = bytearray(payload.data)
        protected = _header_length(payload.data) if plan.protect_header else 0
        if len(data) <= protected:
            return payload
        changed = False
        if plan.truncate and rng.random() < plan.truncate:
            cut = int(rng.integers(protected, len(data)))
            del data[cut:]
            self.chunks_truncated += 1
            changed = True
        if (
            plan.bit_flip
            and len(data) > protected
            and rng.random() < plan.bit_flip
        ):
            flips = int(rng.integers(1, plan.max_flips + 1))
            for _ in range(flips):
                position = int(rng.integers(protected, len(data)))
                data[position] ^= 1 << int(rng.integers(0, 8))
            self.bits_flipped += flips
            changed = True
        if not changed:
            return payload
        return replace(payload, data=bytes(data))

    def _deliveries(self, chunk: StreamChunk) -> Iterator[StreamChunk]:
        plan = self.plan
        rng = make_rng(
            self.seed, f"fault:s{chunk.stream_id}:c{chunk.seq}"
        )
        if plan.drop and rng.random() < plan.drop:
            self.chunks_dropped += 1
            self.keyframes_dropped += chunk.expected_keyframes
            return
        copies = 1
        if plan.duplicate and rng.random() < plan.duplicate:
            copies = 2
            self.chunks_duplicated += 1
        payload = chunk.payload
        if isinstance(payload, EncodedVideo):
            payload = self._corrupt_payload(payload, rng)
        stall_seconds = 0.0
        if plan.stall and rng.random() < plan.stall:
            stall_seconds = plan.stall_seconds
            self.chunks_stalled += 1
        for _ in range(copies):
            yield StreamChunk(
                stream_id=chunk.stream_id,
                seq=chunk.seq,
                payload=payload,
                stall_seconds=stall_seconds,
            )

    def __iter__(self) -> Iterator[StreamChunk]:
        for chunk in self.source:
            yield from self._deliveries(chunk)
