"""Stream sources: where chunked video enters the ingestion layer.

A *source* is an iterable of :class:`StreamChunk` items for exactly one
stream. Three payload kinds flow through the same chunk type, matching
the three input adapters of :class:`~repro.core.live.LiveMonitor`:

* :class:`~repro.codec.gop.EncodedVideo` — a compressed bitstream
  segment (the production path: capture card / network tap). Only this
  kind can be bit-corrupted by the fault injector.
* a ``(n, h, w)`` float array — raw key frames (pixel path).
* a 1-D int64 array — pre-extracted cell ids (the cheap path used by
  equivalence tests and scheduling benchmarks, where codec work would
  drown the quantity under test).

Concrete sources:

* :class:`SyntheticSource` — procedurally generated content
  (:class:`~repro.video.synth.ClipSynthesizer`), encoded chunk by chunk
  on demand; selected chunks can be replaced with caller-provided clips
  so query copies appear at known stream positions.
* :class:`EncodedChunkSource` / :class:`CellIdSource` — wrap
  pre-materialised chunk lists.
* :class:`ReplaySource` — replays a stream recorded to disk with
  :func:`record_stream` (npz container), for deterministic re-runs of a
  captured incident.

Every source counts what it *offered* (``chunks_offered``,
``keyframes_offered``); the scheduler reconciles these against what the
sessions decoded, skipped and dropped — the chaos-survival invariant.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.codec.gop import EncodedVideo, encode_video
from repro.errors import IngestError
from repro.utils.atomic import atomic_savez
from repro.utils.rng import derive_seed
from repro.video.clip import VideoClip
from repro.video.formats import VideoFormat
from repro.video.synth import ClipSynthesizer, SynthesisConfig

__all__ = [
    "CellIdSource",
    "EncodedChunkSource",
    "INGEST_FORMAT",
    "ReplaySource",
    "StreamChunk",
    "StreamSource",
    "SyntheticSource",
    "record_stream",
]

#: Compact format for synthetic ingest streams: small frames and an
#: integer frame rate, so GOP cadence divides chunk boundaries exactly.
INGEST_FORMAT = VideoFormat(name="ingest", width=64, height=48, fps=12.0)


Payload = Union[EncodedVideo, np.ndarray]


@dataclass(frozen=True)
class StreamChunk:
    """One delivery unit of one stream.

    Attributes
    ----------
    stream_id:
        The stream this chunk belongs to.
    seq:
        Monotonic per-stream sequence number assigned by the source.
        Fault injection may duplicate a seq (re-delivery); sessions
        deduplicate on it.
    payload:
        :class:`EncodedVideo`, raw frames ``(n, h, w)``, or 1-D cell ids.
    stall_seconds:
        Simulated delivery delay attached by the fault injector. The
        scheduler accounts it (``ingest.stall_seconds``) and may sleep
        it in real-time mode.
    """

    stream_id: int
    seq: int
    payload: Payload
    stall_seconds: float = 0.0

    @property
    def expected_keyframes(self) -> int:
        """Key frames this chunk should contribute to the window clock.

        Derived from metadata only (never from decoding), so it stays
        correct for a chunk whose byte payload was corrupted in flight.
        """
        payload = self.payload
        if isinstance(payload, EncodedVideo):
            return payload.num_keyframes
        array = np.asarray(payload)
        if array.ndim == 3:
            return int(array.shape[0])
        if array.ndim == 1:
            return int(array.shape[0])
        raise IngestError(
            f"stream {self.stream_id} chunk {self.seq}: unsupported "
            f"payload shape {array.shape}"
        )


class StreamSource:
    """Base class: an iterable of chunks with offered-work counters."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.chunks_offered = 0
        self.keyframes_offered = 0

    def _chunks(self) -> Iterator[StreamChunk]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamChunk]:
        for chunk in self._chunks():
            self.chunks_offered += 1
            self.keyframes_offered += chunk.expected_keyframes
            yield chunk


class SyntheticSource(StreamSource):
    """Procedural content, encoded one chunk at a time on demand.

    Parameters
    ----------
    stream_id:
        Stream identifier (also salts the content substream).
    seed:
        Parent seed; content derives from
        ``derive_seed(seed, f"ingest-stream-{stream_id}")`` and the
        chunk label, so every chunk is reproducible in isolation.
    num_chunks:
        Chunks to emit.
    chunk_seconds:
        Duration of each chunk.
    video_format:
        Frame size / rate of the generated content.
    gop_size, quality, entropy_coding:
        Encoder settings; the keyframe cadence seen by the detector is
        ``fps / gop_size``.
    copies:
        Optional mapping ``chunk_index -> VideoClip``: those chunks
        carry the given clip's frames (a query copy at a known position)
        instead of fresh synthetic content. The clip must match the
        source's video format.
    """

    def __init__(
        self,
        stream_id: int,
        seed: int,
        num_chunks: int,
        chunk_seconds: float = 2.0,
        video_format: VideoFormat = INGEST_FORMAT,
        gop_size: int = 6,
        quality: int = 75,
        entropy_coding: bool = False,
        copies: Optional[Mapping[int, VideoClip]] = None,
    ) -> None:
        super().__init__(stream_id)
        if num_chunks <= 0:
            raise IngestError(f"num_chunks must be positive, got {num_chunks}")
        if chunk_seconds <= 0:
            raise IngestError(
                f"chunk_seconds must be positive, got {chunk_seconds}"
            )
        self.seed = seed
        self.num_chunks = num_chunks
        self.chunk_seconds = chunk_seconds
        self.video_format = video_format
        self.gop_size = gop_size
        self.quality = quality
        self.entropy_coding = entropy_coding
        self.copies: Dict[int, VideoClip] = dict(copies or {})
        self._synth = ClipSynthesizer(
            SynthesisConfig(video_format=video_format),
            seed=derive_seed(seed, f"ingest-stream-{stream_id}"),
        )

    @property
    def keyframes_per_second(self) -> float:
        """Keyframe cadence the downstream detector must be built with."""
        return self.video_format.fps / self.gop_size

    def encode_chunk(self, index: int) -> EncodedVideo:
        """Materialise chunk ``index`` (pure function of the seed)."""
        copy = self.copies.get(index)
        if copy is not None:
            frames = copy.frames
            fps = copy.fps
        else:
            clip = self._synth.generate_clip(
                self.chunk_seconds, f"s{self.stream_id}-chunk{index}"
            )
            frames = clip.frames
            fps = clip.fps
        return encode_video(
            frames,
            fps=fps,
            quality=self.quality,
            gop_size=self.gop_size,
            entropy_coding=self.entropy_coding,
        )

    def _chunks(self) -> Iterator[StreamChunk]:
        for index in range(self.num_chunks):
            yield StreamChunk(
                stream_id=self.stream_id,
                seq=index,
                payload=self.encode_chunk(index),
            )


class EncodedChunkSource(StreamSource):
    """A pre-materialised list of encoded bitstream chunks."""

    def __init__(
        self, stream_id: int, chunks: Sequence[EncodedVideo]
    ) -> None:
        super().__init__(stream_id)
        self._payloads = list(chunks)

    def _chunks(self) -> Iterator[StreamChunk]:
        for index, payload in enumerate(self._payloads):
            yield StreamChunk(
                stream_id=self.stream_id, seq=index, payload=payload
            )


class CellIdSource(StreamSource):
    """Pre-extracted cell-id chunks (codec-free fast path)."""

    def __init__(
        self, stream_id: int, chunks: Sequence[np.ndarray]
    ) -> None:
        super().__init__(stream_id)
        self._payloads = [
            np.asarray(chunk, dtype=np.int64) for chunk in chunks
        ]
        for index, payload in enumerate(self._payloads):
            if payload.ndim != 1:
                raise IngestError(
                    f"cell-id chunk {index} must be 1-D, "
                    f"got shape {payload.shape}"
                )

    def _chunks(self) -> Iterator[StreamChunk]:
        for index, payload in enumerate(self._payloads):
            yield StreamChunk(
                stream_id=self.stream_id, seq=index, payload=payload
            )


# ----------------------------------------------------------------------
# record / replay
# ----------------------------------------------------------------------

#: Format tag of recorded stream files.
RECORDING_FORMAT = "repro.stream/1"

_ENCODED_FIELDS = (
    "width", "height", "block_size", "quality", "gop_size", "num_frames"
)


def record_stream(
    path: Union[str, pathlib.Path],
    source: StreamSource,
) -> int:
    """Drain ``source`` into an npz recording; returns chunks written.

    The recording preserves payload kind per chunk (encoded bitstreams
    keep their full header metadata; cell-id and frame chunks keep their
    arrays), so a :class:`ReplaySource` reproduces the original chunk
    stream byte for byte — including any corruption already present if
    the recorded source was fault-wrapped.
    """
    payload: Dict[str, np.ndarray] = {
        "format": np.asarray([RECORDING_FORMAT], dtype=object),
    }
    count = 0
    for chunk in source:
        prefix = f"chunk{count}_"
        item = chunk.payload
        if isinstance(item, EncodedVideo):
            payload[prefix + "kind"] = np.asarray(["encoded"], dtype=object)
            payload[prefix + "data"] = np.frombuffer(item.data, dtype=np.uint8)
            payload[prefix + "meta"] = np.asarray(
                [getattr(item, name) for name in _ENCODED_FIELDS]
                + [1 if item.entropy_coding else 0],
                dtype=np.int64,
            )
            payload[prefix + "fps"] = np.asarray([item.fps], dtype=np.float64)
        else:
            array = np.asarray(item)
            kind = "cells" if array.ndim == 1 else "frames"
            payload[prefix + "kind"] = np.asarray([kind], dtype=object)
            payload[prefix + "data"] = array
        count += 1
    payload["num_chunks"] = np.asarray([count], dtype=np.int64)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_savez(path, payload)
    return count


class ReplaySource(StreamSource):
    """Replay a stream recorded with :func:`record_stream`."""

    def __init__(
        self, stream_id: int, path: Union[str, pathlib.Path]
    ) -> None:
        super().__init__(stream_id)
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise IngestError(f"no stream recording at {self.path}")
        with np.load(self.path, allow_pickle=True) as archive:
            fmt = str(archive["format"][0])
            if fmt != RECORDING_FORMAT:
                raise IngestError(
                    f"unsupported recording format {fmt!r} "
                    f"(expected {RECORDING_FORMAT!r})"
                )
            self._payloads: List[Payload] = []
            for index in range(int(archive["num_chunks"][0])):
                prefix = f"chunk{index}_"
                kind = str(archive[prefix + "kind"][0])
                if kind == "encoded":
                    meta = archive[prefix + "meta"]
                    fields = dict(zip(_ENCODED_FIELDS, (int(v) for v in meta)))
                    self._payloads.append(
                        EncodedVideo(
                            data=archive[prefix + "data"].tobytes(),
                            fps=float(archive[prefix + "fps"][0]),
                            entropy_coding=bool(int(meta[-1])),
                            **fields,
                        )
                    )
                elif kind in ("cells", "frames"):
                    self._payloads.append(np.array(archive[prefix + "data"]))
                else:
                    raise IngestError(
                        f"chunk {index}: unknown payload kind {kind!r}"
                    )

    def _chunks(self) -> Iterator[StreamChunk]:
        for index, payload in enumerate(self._payloads):
            yield StreamChunk(
                stream_id=self.stream_id, seq=index, payload=payload
            )
