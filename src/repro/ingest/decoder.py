"""Damage-tolerant chunk decoding.

:class:`ResilientDecoder` turns one :class:`~repro.ingest.sources.StreamChunk`
into per-keyframe cell ids without ever letting a codec failure escape.
The fast path is the normal partial decoder
(:meth:`~repro.features.pipeline.FingerprintExtractor.cell_ids_from_encoded`);
when that raises a typed codec error, the chunk is re-walked with
:func:`~repro.codec.resync.resilient_dc_scan`, which recovers every GOP
that still parses and reports where the damage was.

The output is positional: a list of ``(keyframe_slot, cell_ids)``
segments, where ``keyframe_slot`` counts key frames from the start of
the chunk. Anchored segments (the stream head, and a tail that drains
cleanly to the end of the byte stream) carry exact slots; unanchored
interior segments — possible only with two or more corruption points —
are placed best-effort against their nearest anchored neighbour and
trimmed on overlap. A slot the decoder cannot fill is the degradation
layer's problem: :class:`~repro.ingest.session.StreamSession` either
skips the affected basic windows (``skip_window``), substitutes a fill
cell id (``zero_fill``), or raises (``fail``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.gop import EncodedVideo
from repro.codec.resync import resilient_dc_scan
from repro.errors import CodecError, IngestError
from repro.features.pipeline import FingerprintExtractor
from repro.ingest.sources import StreamChunk

__all__ = ["DecodedChunk", "DegradationPolicy", "ResilientDecoder"]


class DegradationPolicy(enum.Enum):
    """What a session does with key frames the decoder could not recover.

    * ``SKIP_WINDOW`` — acknowledge the gap on the window clock
      (:meth:`LiveMonitor.skip_frames`); every basic window overlapping
      damage is sacrificed whole, every intact window still matches at
      its true stream position.
    * ``ZERO_FILL`` — substitute a constant fill cell id for missing
      frames, keeping every window alive at the cost of diluted window
      similarity around the damage.
    * ``FAIL`` — raise :class:`~repro.errors.IngestError`; for
      deployments where a damaged stream must be quarantined, not
      degraded.
    """

    SKIP_WINDOW = "skip_window"
    ZERO_FILL = "zero_fill"
    FAIL = "fail"


@dataclass
class DecodedChunk:
    """Per-keyframe cell ids recovered from one chunk, with provenance.

    ``segments`` is sorted by slot and non-overlapping; slots lie in
    ``[0, expected_keyframes)``. ``keyframes_damaged`` counts the slots
    no segment covers.
    """

    expected_keyframes: int
    segments: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    decode_errors: int = 0
    resyncs: int = 0
    bytes_skipped: int = 0
    header_lost: bool = False

    @property
    def keyframes_decoded(self) -> int:
        return sum(ids.shape[0] for _, ids in self.segments)

    @property
    def keyframes_damaged(self) -> int:
        return self.expected_keyframes - self.keyframes_decoded

    @property
    def clean(self) -> bool:
        """Whether the chunk decoded without any loss."""
        return (
            not self.header_lost
            and self.decode_errors == 0
            and self.keyframes_damaged == 0
        )


def _place_segments(
    scan_segments, total_slots: int
) -> List[Tuple[int, List[np.ndarray]]]:
    """Assign a keyframe slot to every recovered DC-grid run.

    Anchored runs take their exact slots. Unanchored runs are packed
    right-to-left against the next anchored run (they most plausibly sit
    just before the point where the walk re-anchored), trimmed wherever
    they would overlap already-placed slots, and dropped if nothing
    plausible remains.
    """
    placed: List[Tuple[int, List[np.ndarray]]] = []
    prev_end = -1  # last slot occupied so far
    index = 0
    while index < len(scan_segments):
        segment = scan_segments[index]
        if segment.kf_slots is not None:
            if segment.dc_grids:
                placed.append((segment.kf_slots[0], list(segment.dc_grids)))
                prev_end = segment.kf_slots[-1]
            index += 1
            continue
        run: List[List[np.ndarray]] = []
        while (
            index < len(scan_segments)
            and scan_segments[index].kf_slots is None
        ):
            if scan_segments[index].dc_grids:
                run.append(list(scan_segments[index].dc_grids))
            index += 1
        next_anchor: Optional[int] = None
        if index < len(scan_segments) and scan_segments[index].kf_slots:
            next_anchor = scan_segments[index].kf_slots[0]
        if next_anchor is not None:
            end = next_anchor - 1
            packed: List[Tuple[int, List[np.ndarray]]] = []
            for grids in reversed(run):
                start = end - len(grids) + 1
                if start <= prev_end:
                    grids = grids[prev_end - start + 1 :]
                    start = prev_end + 1
                if not grids or start > end:
                    break
                packed.append((start, grids))
                end = start - 1
            placed.extend(reversed(packed))
        else:
            start = prev_end + 1
            for grids in run:
                grids = grids[: max(0, total_slots - start)]
                if not grids:
                    break
                placed.append((start, grids))
                start += len(grids)
                prev_end = start - 1
    placed.sort(key=lambda item: item[0])
    return placed


class ResilientDecoder:
    """Chunk payloads in, positional cell-id segments out — no escapes.

    Parameters
    ----------
    extractor:
        The fingerprint pipeline; required for encoded and raw-frame
        payloads, optional for pre-extracted cell ids.
    """

    def __init__(
        self, extractor: Optional[FingerprintExtractor] = None
    ) -> None:
        self.extractor = extractor

    def _require_extractor(self) -> FingerprintExtractor:
        if self.extractor is None:
            raise IngestError(
                "this ResilientDecoder was built without a fingerprint "
                "extractor; feed pre-extracted cell-id chunks instead"
            )
        return self.extractor

    def _decode_encoded(self, encoded: EncodedVideo) -> DecodedChunk:
        extractor = self._require_extractor()
        expected = encoded.num_keyframes
        try:
            ids = extractor.cell_ids_from_encoded(encoded)
        except CodecError:
            pass
        else:
            if ids.shape[0] == expected:
                return DecodedChunk(
                    expected_keyframes=expected, segments=[(0, ids)]
                )
            # A parse that silently lost keyframes is damage too: fall
            # through to the accounting scan.

        try:
            scan = resilient_dc_scan(encoded)
        except CodecError:
            # Header destroyed: the whole chunk is lost, but the
            # EncodedVideo metadata still tells us how many key frames
            # the stream clock must account for.
            return DecodedChunk(
                expected_keyframes=expected,
                decode_errors=1,
                header_lost=True,
            )
        decoded = DecodedChunk(
            expected_keyframes=expected,
            decode_errors=scan.decode_errors,
            resyncs=scan.resyncs,
            bytes_skipped=scan.bytes_skipped,
        )
        for start, grids in _place_segments(scan.segments, expected):
            ids = extractor.cell_ids_from_dc_grids(
                grids, encoded.block_size
            )
            decoded.segments.append((start, ids))
        return decoded

    def decode_chunk(self, chunk: StreamChunk) -> DecodedChunk:
        """Decode one chunk; codec failures degrade, never propagate."""
        payload = chunk.payload
        if isinstance(payload, EncodedVideo):
            return self._decode_encoded(payload)
        array = np.asarray(payload)
        if array.ndim == 3:
            ids = self._require_extractor().cell_ids_from_frames(array)
            return DecodedChunk(
                expected_keyframes=int(array.shape[0]), segments=[(0, ids)]
            )
        if array.ndim == 1:
            ids = array.astype(np.int64, copy=False)
            return DecodedChunk(
                expected_keyframes=int(ids.shape[0]), segments=[(0, ids)]
            )
        raise IngestError(
            f"stream {chunk.stream_id} chunk {chunk.seq}: unsupported "
            f"payload shape {array.shape}"
        )
