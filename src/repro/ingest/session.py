"""Per-stream detection sessions.

A :class:`StreamSession` is the unit the scheduler multiplexes: one
stream's :class:`~repro.core.detector.StreamingDetector` +
:class:`~repro.core.live.LiveMonitor` + :class:`ResilientDecoder`, glued
to a degradation policy and an ``ingest.*`` metric namespace in the
session's own :class:`~repro.obs.registry.MetricsRegistry` (sessions
never share a registry — their ``engine.*`` counters describe different
streams and must not merge).

The frame-accounting contract, which the chaos tests reconcile:

    frames offered by the source
        = frames pushed to the detector
        + frames skipped / filled (damage)
        + frames dropped in flight (injector) or behind a seq gap

Sessions checkpoint through :class:`repro.serve.CheckpointManager` — a
one-worker :class:`~repro.serve.checkpoint.ServiceCheckpoint` with
strategy ``"ingest"`` — so the serving layer's atomic-write/restore
machinery, format tag and config verification are reused unchanged.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Union

import numpy as np

from repro.archive import ArchiveTap, SketchArchive
from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.core.results import Match
from repro.errors import IngestError
from repro.features.pipeline import FingerprintExtractor
from repro.ingest.decoder import DegradationPolicy, ResilientDecoder
from repro.ingest.sources import StreamChunk
from repro.obs.registry import MetricsRegistry
from repro.serve.checkpoint import CheckpointManager, ServiceCheckpoint
from repro.serve.state import restore_worker_state, worker_state

__all__ = ["DetectorSink", "StreamSession"]


class DetectorSink:
    """Interface a :class:`StreamSession` drives when it does not own a
    detector of its own.

    The default session builds a private
    :class:`~repro.core.detector.StreamingDetector` +
    :class:`~repro.core.live.LiveMonitor` pair. A *sink* replaces that
    pair with any object exposing the same five operations — the
    network gateway uses one to route a remote stream's chunks, after
    seq-dedupe and degradation handling, into a shared
    :class:`~repro.serve.DetectionService` instead.
    """

    def push_cell_ids(self, cell_ids) -> List[Match]:
        """Feed decoded key-frame cell ids; return matches produced."""
        raise NotImplementedError

    def skip_frames(self, num_frames: int) -> None:
        """Advance the window clock over undecodable/lost frames."""
        raise NotImplementedError

    def flush(self) -> List[Match]:
        """Process the trailing partial window at end of stream."""
        raise NotImplementedError

    def subscribe(self, query) -> None:
        """Add a continuous query at a chunk boundary."""
        raise NotImplementedError

    def unsubscribe(self, qid: int) -> None:
        """Drop a continuous query at a chunk boundary."""
        raise NotImplementedError


class StreamSession:
    """One stream's detector state behind a degradation policy.

    Parameters
    ----------
    stream_id:
        The stream this session owns.
    config, queries, keyframes_per_second:
        Detector construction parameters (the queries are shared
        read-only across sessions in a scheduler).
    extractor:
        Fingerprint pipeline for encoded / raw-frame chunks; optional
        when the stream delivers pre-extracted cell ids.
    policy:
        What to do with undecodable key frames (see
        :class:`~repro.ingest.decoder.DegradationPolicy`).
    fill_cell_id:
        The substitute cell id used by ``ZERO_FILL``.
    chunk_keyframes_hint:
        Expected key frames per chunk. When positive, a sequence-number
        gap (chunks lost in flight) advances the window clock by
        ``gap * hint`` frames; when zero, lost chunks are only counted
        (``ingest.chunks_missing``) and the clock keeps running on
        delivered content.
    cap_hint:
        Candidate-expiry floor forwarded to the detector.
    sink:
        Optional :class:`DetectorSink`. When given, the session owns no
        detector: chunks still pass through its seq-dedupe, decode and
        degradation machinery, but the surviving cell ids go to the
        sink (e.g. a shared :class:`~repro.serve.DetectionService`
        behind the gateway). Sink-backed sessions cannot checkpoint
        themselves — checkpoint the backing service instead.
    archive:
        Optional per-stream :class:`~repro.archive.SketchArchive`. The
        session then archives every basic window its degradation
        machinery lets through, via an
        :class:`~repro.archive.ArchiveTap` that mirrors the monitor's
        window clock exactly: skipped windows become archive *gaps*
        (``ingest.archive_gap_windows``), delivered windows are
        sketched and retained (``ingest.archive_windows``) — so a late
        backfill over this stream probes precisely the windows the
        live detector saw.
    """

    def __init__(
        self,
        stream_id: int,
        config: DetectorConfig,
        queries: QuerySet,
        keyframes_per_second: float,
        extractor: Optional[FingerprintExtractor] = None,
        policy: DegradationPolicy = DegradationPolicy.SKIP_WINDOW,
        fill_cell_id: int = 0,
        chunk_keyframes_hint: int = 0,
        cap_hint: int = 0,
        sink: Optional[DetectorSink] = None,
        archive: Optional[SketchArchive] = None,
    ) -> None:
        self.stream_id = stream_id
        self.config = config
        self.queries = queries
        self.keyframes_per_second = keyframes_per_second
        self.policy = policy
        self.fill_cell_id = int(fill_cell_id)
        self.chunk_keyframes_hint = int(chunk_keyframes_hint)
        self.registry = MetricsRegistry()
        if sink is None:
            self.detector = StreamingDetector(
                config,
                queries,
                keyframes_per_second,
                registry=self.registry,
                cap_hint=cap_hint,
            )
            self.monitor = LiveMonitor(self.detector, extractor)
        else:
            self.detector = None
            self.monitor = sink
        self.decoder = ResilientDecoder(extractor)
        self._archive_tap: Optional[ArchiveTap] = None
        if archive is not None:
            window_frames = (
                self.detector.window_frames
                if self.detector is not None
                else max(
                    1, round(config.window_seconds * keyframes_per_second)
                )
            )
            self._archive_tap = ArchiveTap(
                archive,
                queries.family,
                window_frames,
                registry=self.registry,
            )
        self.matches: List[Match] = []
        self.failed = False
        self._last_seq = -1
        for name in (
            "ingest.chunks_processed",
            "ingest.chunks_duplicate",
            "ingest.chunks_missing",
            "ingest.frames_expected",
            "ingest.frames_decoded",
            "ingest.frames_damaged",
            "ingest.frames_filled",
            "ingest.frames_missing",
            "ingest.decode_errors",
            "ingest.resyncs",
            "ingest.header_losses",
            "ingest.matches",
        ):
            self.registry.inc(name, 0)

    # ------------------------------------------------------------------
    # chunk processing
    # ------------------------------------------------------------------

    @property
    def chunks_ingested(self) -> int:
        """Stream position: highest sequence number seen, plus one."""
        return self._last_seq + 1

    def _acknowledge_missing(self, gap_chunks: int) -> None:
        inc = self.registry.inc
        inc("ingest.chunks_missing", gap_chunks)
        if self.chunk_keyframes_hint > 0:
            missing = gap_chunks * self.chunk_keyframes_hint
            inc("ingest.frames_missing", missing)
            self.monitor.skip_frames(missing)
            if self._archive_tap is not None:
                self._archive_tap.skip_frames(missing)

    def process_chunk(self, chunk: StreamChunk) -> List[Match]:
        """Feed one chunk; returns the matches it produced.

        Out-of-order and duplicate deliveries (sequence number at or
        below the last processed one) are dropped and counted. A
        sequence gap is acknowledged before the chunk is processed so
        the window clock never drifts past real content.
        """
        if chunk.stream_id != self.stream_id:
            raise IngestError(
                f"session for stream {self.stream_id} received a chunk "
                f"of stream {chunk.stream_id}"
            )
        inc = self.registry.inc
        if chunk.seq <= self._last_seq:
            inc("ingest.chunks_duplicate")
            return []
        gap_chunks = chunk.seq - self._last_seq - 1
        if gap_chunks > 0:
            self._acknowledge_missing(gap_chunks)
        self._last_seq = chunk.seq
        inc("ingest.chunks_processed")

        with self.registry.phase("phase.ingest_decode"):
            decoded = self.decoder.decode_chunk(chunk)
        inc("ingest.frames_expected", decoded.expected_keyframes)
        inc("ingest.frames_decoded", decoded.keyframes_decoded)
        inc("ingest.frames_damaged", decoded.keyframes_damaged)
        inc("ingest.decode_errors", decoded.decode_errors)
        inc("ingest.resyncs", decoded.resyncs)
        if decoded.header_lost:
            inc("ingest.header_losses")

        if self.policy is DegradationPolicy.FAIL and not decoded.clean:
            self.failed = True
            raise IngestError(
                f"stream {self.stream_id} chunk {chunk.seq}: "
                f"{decoded.keyframes_damaged} of "
                f"{decoded.expected_keyframes} key frames undecodable "
                f"under the fail policy"
            )

        matches: List[Match] = []
        if self.policy is DegradationPolicy.ZERO_FILL:
            filled = decoded.expected_keyframes - decoded.keyframes_decoded
            ids = np.full(
                decoded.expected_keyframes, self.fill_cell_id, dtype=np.int64
            )
            for start, segment_ids in decoded.segments:
                ids[start : start + segment_ids.shape[0]] = segment_ids
            if filled:
                inc("ingest.frames_filled", filled)
            matches.extend(self.monitor.push_cell_ids(ids))
            if self._archive_tap is not None:
                self._archive_tap.push_cell_ids(ids)
        else:  # SKIP_WINDOW
            tap = self._archive_tap
            position = 0
            for start, segment_ids in decoded.segments:
                if start > position:
                    self.monitor.skip_frames(start - position)
                    if tap is not None:
                        tap.skip_frames(start - position)
                matches.extend(self.monitor.push_cell_ids(segment_ids))
                if tap is not None:
                    tap.push_cell_ids(segment_ids)
                position = start + segment_ids.shape[0]
            if position < decoded.expected_keyframes:
                self.monitor.skip_frames(
                    decoded.expected_keyframes - position
                )
                if tap is not None:
                    tap.skip_frames(
                        decoded.expected_keyframes - position
                    )
        if matches:
            inc("ingest.matches", len(matches))
            self.matches.extend(matches)
        return matches

    def finish(self) -> List[Match]:
        """Flush the trailing partial window at end of stream."""
        if self._archive_tap is not None:
            self._archive_tap.flush()
        matches = self.monitor.flush()
        if matches:
            self.registry.inc("ingest.matches", len(matches))
            self.matches.extend(matches)
        return matches

    # ------------------------------------------------------------------
    # online query maintenance
    # ------------------------------------------------------------------

    def subscribe(self, query) -> None:
        """Add a continuous query to this session's detector mid-stream.

        Must be called at a chunk boundary (never while a pool worker
        is processing one of this session's chunks); the scheduler's
        lifecycle forwarding guarantees that.
        """
        if self.detector is None:
            self.monitor.subscribe(query)
        else:
            self.detector.subscribe(query)
        self.registry.inc("ingest.queries_subscribed")

    def unsubscribe(self, qid: int) -> None:
        """Drop a continuous query, purging its in-flight state."""
        if self.detector is None:
            self.monitor.unsubscribe(qid)
        else:
            self.detector.unsubscribe(qid)
        self.registry.inc("ingest.queries_unsubscribed")

    # ------------------------------------------------------------------
    # checkpointing (via repro.serve)
    # ------------------------------------------------------------------

    def checkpoint(
        self,
        manager: CheckpointManager,
        path: Union[str, pathlib.Path, None] = None,
    ) -> pathlib.Path:
        """Snapshot this session as a one-worker service checkpoint."""
        if self.detector is None:
            raise IngestError(
                f"stream {self.stream_id} session is sink-backed; "
                "checkpoint the backing service, not the session"
            )
        snapshot = ServiceCheckpoint(
            config=self.config,
            keyframes_per_second=self.keyframes_per_second,
            chunks_ingested=self.chunks_ingested,
            cap_hint=0,
            strategy="ingest",
            worker_queries=[self.queries],
            worker_states=[worker_state(self.detector, self.monitor)],
            matches=list(self.matches),
        )
        return manager.save(snapshot, path)

    @classmethod
    def restore(
        cls,
        manager: CheckpointManager,
        stream_id: int,
        config: DetectorConfig,
        extractor: Optional[FingerprintExtractor] = None,
        policy: DegradationPolicy = DegradationPolicy.SKIP_WINDOW,
        fill_cell_id: int = 0,
        chunk_keyframes_hint: int = 0,
        path: Union[str, pathlib.Path, None] = None,
    ) -> "StreamSession":
        """Rebuild a session from its latest (or given) checkpoint.

        The caller re-feeds the stream from ``session.chunks_ingested``;
        earlier chunks are deduplicated by sequence number, so replaying
        from chunk 0 is safe (if wasteful).
        """
        snapshot = manager.load(path, expected_config=config)
        if snapshot.num_workers != 1 or snapshot.strategy != "ingest":
            raise IngestError(
                f"checkpoint holds a {snapshot.num_workers}-worker "
                f"{snapshot.strategy!r} service, not an ingest session"
            )
        session = cls(
            stream_id=stream_id,
            config=snapshot.config,
            queries=snapshot.worker_queries[0],
            keyframes_per_second=snapshot.keyframes_per_second,
            extractor=extractor,
            policy=policy,
            fill_cell_id=fill_cell_id,
            chunk_keyframes_hint=chunk_keyframes_hint,
        )
        restore_worker_state(
            session.detector, session.monitor, snapshot.worker_states[0]
        )
        session.matches = list(snapshot.matches)
        session._last_seq = snapshot.chunks_ingested - 1
        return session
