"""Multiplexing N stream sessions over a bounded detector pool.

:class:`StreamScheduler` pairs each stream's source (possibly
fault-wrapped) with its :class:`~repro.ingest.session.StreamSession` and
drives them to completion under a scheduling policy:

* ``ROUND_ROBIN`` — one chunk per stream per round; every stream makes
  the same chunk-rate progress regardless of chunk size.
* ``DEFICIT`` — deficit round robin: each stream accrues a per-round
  quantum of key-frame credit (scaled by its weight) and processes
  chunks while it has credit to pay their key-frame cost. Streams with
  heavier chunks get proportionally fewer turns, equalising *frame*
  throughput instead of chunk throughput.

Chunks flow source → per-stream :class:`~repro.serve.queues.BoundedChannel`
→ session. The channel is the backpressure surface: when a stream's
queue is full its source is simply not pumped that round (the producer
holds the data, nothing is dropped), and the stall is counted under
``ingest.backpressure_waits``.

Detector work runs on a :class:`DetectorPool`. ``pool_size=0`` processes
chunks inline on the scheduler thread — fully deterministic, the
reference for the equivalence suite. ``pool_size >= 1`` dispatches to
worker threads with **at most one in-flight chunk per stream**, so each
stream's chunks are still processed in order and its match stream is
bit-for-bit identical to the inline schedule; only cross-stream
interleaving changes.

Chaos survival: a session raising any :class:`~repro.errors.ReproError`
for a chunk marks that stream failed (counted under
``ingest.chunk_failures``) without touching the scheduler loop — one
poisoned stream can never stall the fleet.
"""

from __future__ import annotations

import enum
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import IngestError, ReproError
from repro.ingest.session import StreamSession
from repro.ingest.sources import StreamChunk, StreamSource
from repro.obs.export import snapshot
from repro.obs.registry import MetricsRegistry
from repro.serve.queues import BackpressurePolicy, BoundedChannel

__all__ = [
    "ScheduledStream",
    "SchedulingPolicy",
    "StreamScheduler",
]

#: Schema tag of the scheduler's nested metrics snapshot.
INGEST_SNAPSHOT_FORMAT = "repro.ingest/1"


class SchedulingPolicy(enum.Enum):
    """How the scheduler divides service among streams."""

    ROUND_ROBIN = "round_robin"
    DEFICIT = "deficit"


@dataclass
class ScheduledStream:
    """One stream's scheduling state inside the scheduler."""

    source: StreamSource
    session: StreamSession
    weight: float = 1.0
    queue: BoundedChannel = field(default_factory=lambda: BoundedChannel(4))
    iterator: Optional[object] = None
    exhausted: bool = False
    finished: bool = False
    failed: bool = False
    deficit: float = 0.0
    in_flight: bool = False
    lifecycle_applied: int = 0

    @property
    def stream_id(self) -> int:
        return self.source.stream_id


class DetectorPool:
    """A bounded pool of detector worker threads.

    ``size=0`` is the synchronous mode: :meth:`submit` runs the chunk
    inline and :meth:`drain` is a no-op. With workers, tasks enter a
    bounded channel (blocking the scheduler when all workers are busy —
    the pool is the global ingestion rate limiter) and results return on
    a stdlib queue the scheduler drains between rounds.
    """

    _STOP = object()

    def __init__(self, size: int) -> None:
        if size < 0:
            raise IngestError(f"pool size cannot be negative ({size})")
        self.size = size
        self._tasks: Optional[BoundedChannel] = None
        self._results: "queue_module.Queue" = queue_module.Queue()
        self._threads: List[threading.Thread] = []
        if size > 0:
            self._tasks = BoundedChannel(max(2, 2 * size))
            for index in range(size):
                thread = threading.Thread(
                    target=self._worker, name=f"ingest-pool-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def _worker(self) -> None:
        assert self._tasks is not None
        while True:
            task = self._tasks.get()
            if task is self._STOP:
                return
            stream, chunk = task
            try:
                stream.session.process_chunk(chunk)
                self._results.put((stream, chunk, None))
            except ReproError as error:
                self._results.put((stream, chunk, error))

    def submit(self, stream: ScheduledStream, chunk: StreamChunk):
        """Run or enqueue one chunk; inline mode returns its error."""
        if self._tasks is None:
            try:
                stream.session.process_chunk(chunk)
            except ReproError as error:
                return error
            return None
        stream.in_flight = True
        self._tasks.put((stream, chunk), BackpressurePolicy.BLOCK)
        return None

    def poll(self, timeout: float = 0.0):
        """Collect finished tasks: list of (stream, chunk, error)."""
        results = []
        while True:
            try:
                if timeout and not results:
                    results.append(self._results.get(timeout=timeout))
                else:
                    results.append(self._results.get_nowait())
            except queue_module.Empty:
                return results

    def shutdown(self) -> None:
        if self._tasks is not None:
            for _ in self._threads:
                self._tasks.put(self._STOP, BackpressurePolicy.BLOCK)
            for thread in self._threads:
                thread.join()
            self._threads = []


class StreamScheduler:
    """Drive N sessions from N sources under one scheduling policy.

    Parameters
    ----------
    streams:
        ``(source, session)`` pairs (sessions already configured).
        Sources may be fault-wrapped; sessions and sources must agree on
        stream ids.
    policy:
        Service discipline across streams.
    pool_size:
        Detector worker threads; 0 = inline (deterministic reference).
    queue_capacity:
        Per-stream chunk queue bound (the backpressure surface).
    quantum:
        DEFICIT only: key frames of credit per stream per round, before
        weight scaling.
    weights:
        DEFICIT only: per-stream-id service weights (default 1.0).
    realtime_stalls:
        Sleep injected stall times instead of only accounting them.
    """

    def __init__(
        self,
        streams: Sequence[tuple],
        policy: SchedulingPolicy = SchedulingPolicy.ROUND_ROBIN,
        pool_size: int = 0,
        queue_capacity: int = 4,
        quantum: float = 0.0,
        weights: Optional[Dict[int, float]] = None,
        realtime_stalls: bool = False,
    ) -> None:
        if not streams:
            raise IngestError("scheduler needs at least one stream")
        if queue_capacity < 1:
            raise IngestError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.policy = policy
        self.pool_size = pool_size
        self.realtime_stalls = realtime_stalls
        self.registry = MetricsRegistry()
        self.streams: List[ScheduledStream] = []
        seen_ids = set()
        for source, session in streams:
            if source.stream_id != session.stream_id:
                raise IngestError(
                    f"source stream {source.stream_id} paired with "
                    f"session for stream {session.stream_id}"
                )
            if source.stream_id in seen_ids:
                raise IngestError(
                    f"duplicate stream id {source.stream_id}"
                )
            seen_ids.add(source.stream_id)
            weight = (weights or {}).get(source.stream_id, 1.0)
            if weight <= 0:
                raise IngestError(
                    f"stream {source.stream_id} weight must be positive, "
                    f"got {weight}"
                )
            self.streams.append(
                ScheduledStream(
                    source=source,
                    session=session,
                    weight=weight,
                    queue=BoundedChannel(queue_capacity),
                )
            )
        # DRR needs a quantum at least as large as the costliest chunk
        # or heavy streams wait many rounds to accrue enough credit.
        # Chunk sizes are unknown up front, so the effective quantum is
        # max(configured, largest head cost seen so far).
        self.quantum = quantum if quantum > 0 else 1.0
        self._max_cost = 1.0
        self.rounds = 0
        self._lifecycle_ops: List[tuple] = []
        self._stop_requested = threading.Event()

    def request_stop(self) -> None:
        """Ask :meth:`run` to stop at the next round boundary.

        Safe to call from any thread (e.g. a signal handler). The loop
        stops pumping new chunks, drains every in-flight chunk, then
        flushes each unfinished session's window tail — an interrupted
        run loses no decoded frame that had already entered a session.
        """
        self._stop_requested.set()

    # ------------------------------------------------------------------
    # online query maintenance
    # ------------------------------------------------------------------

    def subscribe(self, query) -> None:
        """Register a query subscription for every scheduled stream.

        Ops are forwarded to each session's detector at that stream's
        next chunk boundary (never mid-chunk, even with a threaded
        detector pool), exactly once per stream, in registration order.
        """
        self._lifecycle_ops.append(("subscribe", query))

    def unsubscribe(self, qid: int) -> None:
        """Register a query removal for every scheduled stream."""
        self._lifecycle_ops.append(("unsubscribe", qid))

    def _apply_lifecycle(self, stream: ScheduledStream) -> None:
        """Forward pending lifecycle ops to one idle stream's session."""
        if stream.in_flight or stream.failed:
            return
        while stream.lifecycle_applied < len(self._lifecycle_ops):
            kind, arg = self._lifecycle_ops[stream.lifecycle_applied]
            stream.lifecycle_applied += 1
            try:
                if kind == "subscribe":
                    stream.session.subscribe(arg)
                else:
                    stream.session.unsubscribe(arg)
            except ReproError as error:
                self._record_failure(stream, error)
                return
            self.registry.inc(
                self._metric("lifecycle_ops", stream.stream_id)
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _metric(self, name: str, stream_id: int) -> str:
        return f"ingest.{name}.s{stream_id}"

    def _pump(self, stream: ScheduledStream) -> None:
        """Move chunks source -> queue while there is room.

        A full queue leaves the source untouched: that *is* the
        backpressure (the producer keeps the data), and it is counted.
        """
        if stream.exhausted:
            return
        if stream.iterator is None:
            stream.iterator = iter(stream.source)
        while len(stream.queue) < stream.queue.capacity:
            try:
                chunk = next(stream.iterator)
            except StopIteration:
                stream.exhausted = True
                return
            stream.queue.put(chunk, BackpressurePolicy.BLOCK)
        self.registry.inc(
            self._metric("backpressure_waits", stream.stream_id)
        )

    def _take(self, stream: ScheduledStream) -> Optional[StreamChunk]:
        if len(stream.queue) == 0:
            return None
        return stream.queue.get()

    def _account_stall(self, stream: ScheduledStream, chunk: StreamChunk):
        if chunk.stall_seconds:
            self.registry.inc(
                self._metric("stalled_chunks", stream.stream_id)
            )
            name = self._metric("stall_seconds", stream.stream_id)
            self.registry.set_gauge(
                name, self.registry.gauge(name) + chunk.stall_seconds
            )
            if self.realtime_stalls:
                time.sleep(chunk.stall_seconds)

    def _dispatch(
        self, pool: DetectorPool, stream: ScheduledStream, chunk: StreamChunk
    ) -> None:
        self._account_stall(stream, chunk)
        error = pool.submit(stream, chunk)
        if error is not None:
            self._record_failure(stream, error)

    def _record_failure(self, stream: ScheduledStream, error) -> None:
        self.registry.inc(
            self._metric("chunk_failures", stream.stream_id)
        )
        if stream.session.failed or isinstance(error, IngestError):
            # FAIL-policy sessions are quarantined: drain their source
            # without processing so the fleet keeps moving.
            stream.failed = True

    def _collect(self, pool: DetectorPool, block: bool) -> None:
        timeout = 0.05 if block else 0.0
        for stream, _chunk, error in pool.poll(timeout):
            stream.in_flight = False
            if error is not None:
                self._record_failure(stream, error)

    def _active(self) -> List[ScheduledStream]:
        return [
            stream
            for stream in self.streams
            if not stream.finished
        ]

    def _stream_done(self, stream: ScheduledStream) -> bool:
        return (
            stream.exhausted
            and len(stream.queue) == 0
            and not stream.in_flight
        )

    def _finish_stream(self, stream: ScheduledStream) -> None:
        if not stream.failed:
            try:
                stream.session.finish()
            except ReproError as error:
                self._record_failure(stream, error)
        stream.finished = True

    def _drain(self, pool: DetectorPool) -> None:
        """Stop-request path: wait out in-flight chunks, flush tails."""
        while any(stream.in_flight for stream in self.streams):
            self._collect(pool, block=True)
        for stream in self.streams:
            if not stream.finished:
                self._finish_stream(stream)
        self.registry.inc("ingest.stop_drains")

    def _serve_round_robin(
        self, pool: DetectorPool, active: List[ScheduledStream]
    ) -> int:
        served = 0
        for stream in active:
            if stream.in_flight:
                continue
            chunk = self._take(stream)
            if chunk is None:
                continue
            if stream.failed:
                served += 1  # drained, not processed
                continue
            self._dispatch(pool, stream, chunk)
            served += 1
        return served

    def _serve_deficit(
        self, pool: DetectorPool, active: List[ScheduledStream]
    ) -> int:
        served = 0
        for stream in active:
            if stream.in_flight:
                continue
            stream.deficit += max(self.quantum, self._max_cost) * stream.weight
            while True:
                head = stream.queue.peek()
                if head is None:
                    # Nothing waiting: credit does not bank across idle
                    # rounds (classic DRR resets an empty flow).
                    stream.deficit = 0.0
                    break
                head_cost = float(head.expected_keyframes or 1)
                self._max_cost = max(self._max_cost, head_cost)
                if head_cost > stream.deficit:
                    break
                chunk = self._take(stream)
                stream.deficit -= head_cost
                if stream.failed:
                    served += 1
                    continue
                self._dispatch(pool, stream, chunk)
                served += 1
                if stream.in_flight:
                    break  # one in-flight chunk per stream
        return served

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> Dict[int, List]:
        """Drive every stream to completion; returns matches by stream.

        The loop survives any per-chunk :class:`~repro.errors.ReproError`
        (counted, stream quarantined under the fail policy) — an
        unhandled exception here is a bug, and the chaos suite asserts
        there are none.
        """
        pool = DetectorPool(self.pool_size)
        wait_rounds = self.registry.distribution("ingest.scheduler_wait")
        try:
            while True:
                if self._stop_requested.is_set():
                    self._drain(pool)
                    break
                active = self._active()
                if not active:
                    break
                for stream in active:
                    self._apply_lifecycle(stream)
                    self._pump(stream)
                if self.policy is SchedulingPolicy.DEFICIT:
                    served = self._serve_deficit(pool, active)
                else:
                    served = self._serve_round_robin(pool, active)
                waiting = served == 0 and any(
                    stream.in_flight for stream in active
                )
                self._collect(pool, block=waiting)
                wait_rounds.add(0.0 if served else 1.0)
                self.rounds += 1
                for stream in active:
                    if self._stream_done(stream):
                        self._finish_stream(stream)
        finally:
            pool.shutdown()
        return {
            stream.stream_id: list(stream.session.matches)
            for stream in self.streams
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def reconciliation(self) -> Dict[str, int]:
        """Fleet-wide frame accounting (the chaos-survival invariant).

        ``offered == decoded + damaged + missing + dropped_in_flight``
        whenever every chunk is uniform (``chunk_keyframes_hint`` set)
        and no stream was quarantined mid-flight; quarantined streams
        surface the shortfall under ``unprocessed``.
        """
        offered = decoded = damaged = missing = filled = 0
        expected = 0
        for stream in self.streams:
            counter = stream.session.registry.counter
            offered += stream.source.keyframes_offered
            expected += counter("ingest.frames_expected")
            decoded += counter("ingest.frames_decoded")
            damaged += counter("ingest.frames_damaged")
            missing += counter("ingest.frames_missing")
            filled += counter("ingest.frames_filled")
        dropped = sum(
            getattr(stream.source, "keyframes_dropped", 0)
            for stream in self.streams
        )
        duplicated = sum(
            getattr(stream.source, "chunks_duplicated", 0)
            for stream in self.streams
        )
        return {
            "frames_offered": offered,
            "frames_expected": expected,
            "frames_decoded": decoded,
            "frames_damaged": damaged,
            "frames_missing": missing,
            "frames_filled": filled,
            "frames_dropped_in_flight": dropped,
            "chunks_duplicated_in_flight": duplicated,
            # Every offered frame is either decoded/damaged inside a
            # processed chunk (expected), lost with a dropped chunk, or
            # still unaccounted (quarantined stream, trailing drop).
            "unprocessed": offered - expected - dropped,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Nested ``repro.ingest/1`` snapshot: scheduler + per-stream.

        Per-stream ``engine.*`` counters describe *different* streams,
        so they are nested rather than merged — unlike ``repro.serve``,
        whose shards replicate one stream.
        """
        return {
            "schema": INGEST_SNAPSHOT_FORMAT,
            "policy": self.policy.value,
            "pool_size": self.pool_size,
            "rounds": self.rounds,
            "scheduler": snapshot(self.registry),
            "streams": {
                str(stream.stream_id): snapshot(stream.session.registry)
                for stream in self.streams
            },
            "reconciliation": self.reconciliation(),
        }
