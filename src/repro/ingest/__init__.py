"""Fault-tolerant multi-stream ingestion and scheduling.

The paper monitors one clean stream; a deployment monitors many, each
delivered as a corruptible compressed bitstream. This subpackage is the
resilient many-stream frontend over the single-stream detector stack:

* :mod:`repro.ingest.sources` — where chunked video enters: synthetic
  generation, pre-encoded chunk lists, pre-extracted cell ids, and
  record/replay from disk.
* :mod:`repro.ingest.faults` — deterministic in-flight damage (bit
  flips, truncation, drops, duplicates, stalls) for chaos testing.
* :mod:`repro.ingest.decoder` — damage-tolerant chunk decoding on top
  of the codec's GOP resync scanner; degradation policies decide what
  undecodable frames become.
* :mod:`repro.ingest.session` — one stream's detector + monitor state,
  sequence-gap handling, and checkpointing via ``repro.serve``.
* :mod:`repro.ingest.scheduler` — round-robin / deficit-weighted
  multiplexing of N sessions over a bounded detector pool with
  per-stream backpressure.

See ``docs/ingestion.md`` for the fault model, degradation semantics
and the ``ingest.*`` metric reference.
"""

from repro.ingest.decoder import (
    DecodedChunk,
    DegradationPolicy,
    ResilientDecoder,
)
from repro.ingest.faults import FAULT_PRESETS, FaultInjector, FaultPlan
from repro.ingest.scheduler import (
    ScheduledStream,
    SchedulingPolicy,
    StreamScheduler,
)
from repro.ingest.session import DetectorSink, StreamSession
from repro.ingest.sources import (
    CellIdSource,
    EncodedChunkSource,
    INGEST_FORMAT,
    ReplaySource,
    StreamChunk,
    StreamSource,
    SyntheticSource,
    record_stream,
)

__all__ = [
    "CellIdSource",
    "DecodedChunk",
    "DegradationPolicy",
    "DetectorSink",
    "EncodedChunkSource",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "INGEST_FORMAT",
    "ReplaySource",
    "ResilientDecoder",
    "ScheduledStream",
    "SchedulingPolicy",
    "StreamChunk",
    "StreamScheduler",
    "StreamSession",
    "StreamSource",
    "SyntheticSource",
    "record_stream",
]
