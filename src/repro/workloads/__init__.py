"""Workload construction: the "doctored" evaluation streams.

Mirrors the paper's Section VI setup: a library of short clips (the
continuous queries) is inserted at random positions into a long base
video. ``VS1`` inserts the originals untouched; ``VS2`` first runs each
clip through the full attack pipeline — brightness/color alteration,
noise, resolution change, NTSC→PAL re-timing and segment reordering —
before insertion. Every insertion's position is recorded as ground truth
for precision/recall scoring.
"""

from repro.workloads.doctor import DoctoredStream, StreamDoctor
from repro.workloads.groundtruth import GroundTruth, Occurrence
from repro.workloads.library import ClipLibrary

__all__ = [
    "ClipLibrary",
    "DoctoredStream",
    "GroundTruth",
    "Occurrence",
    "StreamDoctor",
]
