"""Stream doctoring: splice (possibly attacked) clips into a base video.

Reproduces the paper's stream construction: the short clips are inserted
at random, non-overlapping positions into synthetic base ("film") footage,
and every insertion's span is recorded as ground truth. Two standard
recipes are provided:

* :meth:`StreamDoctor.build_vs1` — originals inserted untouched;
* :meth:`StreamDoctor.build_vs2` — each clip is brightness/color-altered,
  noised, resized, re-timed to the PAL rate and segment-reordered first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ScaleProfile
from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.video.clip import VideoClip, concat_clips
from repro.video.edits import EditPipeline
from repro.video.formats import NTSC, PAL, VideoFormat
from repro.video.reorder import reorder_segments
from repro.video.synth import ClipSynthesizer, SynthesisConfig
from repro.workloads.groundtruth import GroundTruth, Occurrence
from repro.workloads.library import ClipLibrary

__all__ = ["DoctoredStream", "StreamDoctor"]

#: Minimum filler run between insertions, in seconds.
_MIN_GAP_SECONDS = 2.0


@dataclass(frozen=True)
class DoctoredStream:
    """A built evaluation stream.

    Attributes
    ----------
    clip:
        The full stream as one clip (key-frame cadence).
    ground_truth:
        Every insertion's query id and key-frame span.
    keyframes_per_second:
        Cadence of :attr:`clip` (frames are key frames).
    name:
        ``"VS1"``, ``"VS2"`` or a custom label.
    """

    clip: VideoClip = field(repr=False)
    ground_truth: GroundTruth
    keyframes_per_second: float
    name: str


class StreamDoctor:
    """Builds doctored streams from a clip library.

    Parameters
    ----------
    profile:
        Stream length, key-frame cadence.
    seed:
        Seed for insertion layout and per-clip attack draws.
    """

    def __init__(self, profile: ScaleProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    # ------------------------------------------------------------------
    # public recipes
    # ------------------------------------------------------------------

    def build_vs1(self, library: ClipLibrary, name: str = "VS1") -> DoctoredStream:
        """Insert the original clips untouched (the paper's VS1)."""
        inserts = [(qid, clip) for qid, clip in library]
        return self._assemble(inserts, target_format=NTSC, name=name)

    def build_vs2(
        self,
        library: ClipLibrary,
        name: str = "VS2",
        noise_sigma: float = 4.0,
        reorder_min_segments: int = 3,
        reorder_max_segments: int = 8,
        recompress_quality: Optional[int] = None,
        reorder_mode: str = "equal",
        chroma_domain: bool = False,
    ) -> DoctoredStream:
        """Attack every clip before insertion (the paper's VS2).

        Attacks per clip, all seeded: 20-50 % brightness and color
        alteration, Gaussian noise, resolution change to PAL geometry,
        NTSC→PAL re-timing (key-frame cadence scaled by 25/29.97),
        optional re-compression, and segment reordering.

        ``reorder_mode`` selects the reordering granularity:
        ``"equal"`` cuts into a random count of near-equal segments in
        ``[reorder_min_segments, reorder_max_segments]``; ``"shots"``
        cuts at *detected shot boundaries* — the paper's "reorder these
        segments without affecting the contents" as a human editor would
        do it.

        ``chroma_domain`` runs the brightness/color alterations on a
        genuine RGB rendition of each clip (see
        :class:`repro.video.edits.EditPipeline`).
        """
        if reorder_mode not in ("equal", "shots"):
            raise WorkloadError(
                f"reorder_mode must be 'equal' or 'shots', got {reorder_mode!r}"
            )
        if reorder_min_segments < 1 or reorder_max_segments < reorder_min_segments:
            raise WorkloadError(
                "invalid reorder segment range "
                f"[{reorder_min_segments}, {reorder_max_segments}]"
            )
        kf_rate = self.profile.keyframes_per_second
        pal_keyframe_rate = kf_rate * (PAL.fps / NTSC.fps)
        pipeline = EditPipeline(
            target_format=VideoFormat(
                name="PAL-kf",
                width=PAL.width,
                height=PAL.height,
                fps=pal_keyframe_rate,
            ),
            noise_sigma=noise_sigma,
            recompress_quality=recompress_quality,
            chroma_domain=chroma_domain,
            seed=self.seed,
        )
        rng = make_rng(self.seed, "vs2-reorder")
        inserts: List[Tuple[int, VideoClip]] = []
        for qid, clip in library:
            edited = pipeline.apply(clip)
            if reorder_mode == "shots":
                from repro.video.reorder import reorder_at_shots

                edited, _permutation = reorder_at_shots(
                    edited, seed=int(rng.integers(1 << 31))
                )
            else:
                num_segments = int(
                    rng.integers(reorder_min_segments, reorder_max_segments + 1)
                )
                num_segments = min(num_segments, edited.num_frames)
                edited, _permutation = reorder_segments(
                    edited, num_segments, seed=int(rng.integers(1 << 31))
                )
            # Reinterpret the re-timed clip at the stream cadence: the
            # PAL re-encode kept wall-clock duration but dropped key
            # frames, so the copy is shorter than the query (tempo
            # scaling, bounded by λ).
            inserts.append(
                (qid, VideoClip(frames=edited.frames, fps=kf_rate, label=edited.label))
            )
        return self._assemble(
            inserts,
            target_format=VideoFormat(
                name="PAL-base", width=PAL.width, height=PAL.height, fps=NTSC.fps
            ),
            name=name,
        )

    def build_from_clips(
        self,
        inserts: "Dict[int, VideoClip]",
        target_format: VideoFormat = NTSC,
        name: str = "custom",
    ) -> DoctoredStream:
        """Splice arbitrary clips into base footage.

        For workloads beyond VS1/VS2 — e.g. decoy studies where partially
        similar non-copies are planted to stress precision. Every insert
        is recorded in the ground truth under its mapping key; callers
        monitoring only a subset of the keys should filter the ground
        truth accordingly.
        """
        ordered = [(qid, inserts[qid]) for qid in sorted(inserts)]
        return self._assemble(ordered, target_format=target_format, name=name)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def _assemble(
        self,
        inserts: List[Tuple[int, VideoClip]],
        target_format: VideoFormat,
        name: str,
    ) -> DoctoredStream:
        """Interleave filler footage and insertions, recording spans."""
        profile = self.profile
        kf_rate = profile.keyframes_per_second
        rng = make_rng(self.seed, f"doctor-layout:{name}")

        insert_frames = sum(clip.num_frames for _qid, clip in inserts)
        total_frames = profile.seconds_to_keyframes(profile.stream_seconds)
        min_gap_frames = max(1, round(_MIN_GAP_SECONDS * kf_rate))
        num_gaps = len(inserts) + 1
        filler_frames = total_frames - insert_frames
        if filler_frames < num_gaps * min_gap_frames:
            raise WorkloadError(
                f"stream of {total_frames} key frames cannot hold "
                f"{insert_frames} insert frames plus {num_gaps} gaps of "
                f">= {min_gap_frames} frames; increase stream_seconds"
            )

        proportions = rng.dirichlet(np.ones(num_gaps))
        spare = filler_frames - num_gaps * min_gap_frames
        gap_lengths = (min_gap_frames + np.floor(proportions * spare)).astype(int)
        # Distribute the rounding remainder over the first gaps.
        remainder = filler_frames - int(gap_lengths.sum())
        for position in range(remainder):
            gap_lengths[position % num_gaps] += 1

        synthesizer = ClipSynthesizer(
            config=SynthesisConfig(video_format=target_format),
            seed=self.seed,
        )
        order = rng.permutation(len(inserts))

        pieces: List[VideoClip] = []
        occurrences: List[Occurrence] = []
        cursor = 0
        for position, insert_position in enumerate(order):
            filler = self._filler(
                synthesizer, int(gap_lengths[position]), kf_rate,
                f"{name}-filler-{position}",
            )
            pieces.append(filler)
            cursor += filler.num_frames

            qid, clip = inserts[int(insert_position)]
            resized = self._conform(clip, target_format, kf_rate)
            pieces.append(resized)
            occurrences.append(
                Occurrence(
                    qid=qid,
                    begin_frame=cursor,
                    end_frame=cursor + resized.num_frames,
                )
            )
            cursor += resized.num_frames

        pieces.append(
            self._filler(
                synthesizer, int(gap_lengths[-1]), kf_rate,
                f"{name}-filler-{len(inserts)}",
            )
        )
        stream_clip = concat_clips(pieces, label=name)
        return DoctoredStream(
            clip=stream_clip,
            ground_truth=GroundTruth(occurrences, stream_clip.num_frames),
            keyframes_per_second=kf_rate,
            name=name,
        )

    @staticmethod
    def _filler(
        synthesizer: ClipSynthesizer, num_frames: int, kf_rate: float, label: str
    ) -> VideoClip:
        """Generate base ("film") footage of an exact frame count."""
        clip = synthesizer.generate_clip(
            duration_seconds=num_frames / kf_rate, label=label, fps=kf_rate
        )
        if clip.num_frames > num_frames:
            clip = clip.subclip(0, num_frames)
        return clip

    @staticmethod
    def _conform(
        clip: VideoClip, target_format: VideoFormat, kf_rate: float
    ) -> VideoClip:
        """Fit an insert to the stream's frame geometry and cadence."""
        from repro.video.edits import change_resolution  # local: avoids cycle

        if (clip.height, clip.width) != (target_format.height, target_format.width):
            clip = change_resolution(clip, target_format.height, target_format.width)
        if abs(clip.fps - kf_rate) > 1e-9:
            clip = VideoClip(frames=clip.frames, fps=kf_rate, label=clip.label)
        return clip
