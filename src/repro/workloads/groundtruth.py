"""Ground-truth occurrence records for doctored streams.

Each inserted clip contributes one :class:`Occurrence` with its query id
and key-frame span inside the stream. The paper's correctness rule for a
reported match position ``p`` is ``Q.begin + w <= p <= Q.end + w`` (both
in frames, ``w`` being the basic-window length); the rule itself lives in
:mod:`repro.evaluation.metrics` — this module only stores positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.errors import WorkloadError

__all__ = ["GroundTruth", "Occurrence"]


@dataclass(frozen=True)
class Occurrence:
    """One inserted copy of a query clip.

    Attributes
    ----------
    qid:
        The query (library clip) id this insertion is a copy of.
    begin_frame, end_frame:
        Key-frame span of the insertion inside the stream (end exclusive).
    """

    qid: int
    begin_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        if not 0 <= self.begin_frame < self.end_frame:
            raise WorkloadError(
                f"occurrence of query {self.qid} has an empty or negative "
                f"span [{self.begin_frame}, {self.end_frame})"
            )

    @property
    def num_frames(self) -> int:
        """Length of the inserted copy in key frames."""
        return self.end_frame - self.begin_frame


class GroundTruth:
    """The set of occurrences of one doctored stream."""

    def __init__(self, occurrences: Sequence[Occurrence], stream_frames: int) -> None:
        if stream_frames <= 0:
            raise WorkloadError(
                f"stream_frames must be positive, got {stream_frames}"
            )
        for occurrence in occurrences:
            if occurrence.end_frame > stream_frames:
                raise WorkloadError(
                    f"occurrence of query {occurrence.qid} ends at frame "
                    f"{occurrence.end_frame}, beyond the stream "
                    f"({stream_frames} frames)"
                )
        self._occurrences = sorted(
            occurrences, key=lambda occ: (occ.begin_frame, occ.qid)
        )
        self.stream_frames = stream_frames
        self._by_query: Dict[int, List[Occurrence]] = {}
        for occurrence in self._occurrences:
            self._by_query.setdefault(occurrence.qid, []).append(occurrence)

    def __len__(self) -> int:
        return len(self._occurrences)

    def __iter__(self) -> Iterator[Occurrence]:
        return iter(self._occurrences)

    @property
    def query_ids(self) -> List[int]:
        """Query ids with at least one occurrence, sorted."""
        return sorted(self._by_query)

    def occurrences_of(self, qid: int) -> List[Occurrence]:
        """All occurrences of one query (possibly empty)."""
        return list(self._by_query.get(qid, []))
