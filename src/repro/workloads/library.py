"""The short-clip library — the continuous queries.

The paper downloads 200 short videos (MTV, advertisements, movie samples,
sports) of 30-300 s; we synthesise the scaled equivalent: ``num_queries``
clips with seeded random durations in the profile's range, each with its
own independent content process. The same library object serves both as
the query set and as the insertion material for the doctored streams.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.config import ScaleProfile
from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.video.clip import VideoClip
from repro.video.synth import ClipSynthesizer

__all__ = ["ClipLibrary"]


class ClipLibrary:
    """A deterministic collection of synthetic short clips.

    Parameters
    ----------
    profile:
        Scale profile providing count, duration range and key-frame
        cadence. Clips are generated *at key-frame cadence*: one stored
        frame per key frame, which is the only granularity the detector
        consumes.
    synthesizer:
        Content generator; its seed (together with clip labels) fully
        determines the library.
    seed:
        Seed for the duration draws.
    """

    def __init__(
        self,
        profile: ScaleProfile,
        synthesizer: ClipSynthesizer,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.synthesizer = synthesizer
        rng = make_rng(seed, "library-durations")
        self._clips: Dict[int, VideoClip] = {}
        for qid in range(profile.num_queries):
            duration = float(
                rng.uniform(profile.query_min_seconds, profile.query_max_seconds)
            )
            self._clips[qid] = synthesizer.generate_clip(
                duration_seconds=duration,
                label=f"clip-{qid:04d}",
                fps=profile.keyframes_per_second,
            )

    @classmethod
    def generate(cls, profile: ScaleProfile, seed: int = 0) -> "ClipLibrary":
        """Convenience constructor with a default synthesizer."""
        return cls(
            profile=profile,
            synthesizer=ClipSynthesizer(seed=seed),
            seed=seed,
        )

    def __len__(self) -> int:
        return len(self._clips)

    def __iter__(self) -> Iterator[Tuple[int, VideoClip]]:
        return iter(sorted(self._clips.items()))

    @property
    def query_ids(self) -> List[int]:
        """All clip ids, sorted."""
        return sorted(self._clips)

    def clip(self, qid: int) -> VideoClip:
        """Look up a clip by id."""
        if qid not in self._clips:
            raise WorkloadError(f"unknown clip id {qid}")
        return self._clips[qid]

    def subset(self, num_clips: int) -> "ClipLibrary":
        """A library view containing only the first ``num_clips`` clips.

        Used by the query-count sweeps (Figure 9) so that m=10 and m=200
        share the same underlying clips.
        """
        if not 1 <= num_clips <= len(self._clips):
            raise WorkloadError(
                f"num_clips must be in [1, {len(self._clips)}], got {num_clips}"
            )
        view = object.__new__(ClipLibrary)
        view.profile = self.profile
        view.synthesizer = self.synthesizer
        view._clips = {qid: self._clips[qid] for qid in self.query_ids[:num_clips]}
        return view
