"""Saving and loading query subscriptions.

A monitoring deployment sketches its query videos once ("offline", as
the paper puts it) and then runs for days; re-fingerprinting hundreds of
clips on every restart would be wasteful. This module persists a
:class:`~repro.core.query.QuerySet` — cell-id sets, frame counts, labels
and the hash-family parameters — to a single ``.npz`` file, and restores
it with sketches recomputed from the (exactly preserved) cell ids under
the same family, so a reloaded set is bit-for-bit equivalent to the
original.

The file embeds a format version; loading a future or corrupted file
fails loudly instead of mis-detecting quietly.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.core.query import Query, QuerySet
from repro.errors import ReproError
from repro.minhash.family import MinHashFamily

__all__ = ["PersistenceError", "load_query_set", "save_query_set"]

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A query-set file is missing, corrupt or from an unknown version."""


def save_query_set(
    queries: QuerySet, path: Union[str, pathlib.Path]
) -> None:
    """Write a query set (and its family parameters) to ``path``.

    The ``.npz`` holds, per query: id, label, key-frame count and the
    distinct cell-id array. Sketch values are *not* stored — they are a
    pure function of (cell ids, family) and recomputing them on load
    keeps the file format independent of the sketch layout.
    """
    path = pathlib.Path(path)
    qids = queries.query_ids
    payload = {
        "format_version": np.asarray([FORMAT_VERSION]),
        "family_num_hashes": np.asarray([queries.family.num_hashes]),
        "family_seed": np.asarray([queries.family.seed]),
        "family_prime": np.asarray([queries.family.prime]),
        "qids": np.asarray(qids, dtype=np.int64),
        "num_frames": np.asarray(
            [queries.get(qid).num_frames for qid in qids], dtype=np.int64
        ),
        "labels": np.asarray(
            [queries.get(qid).label for qid in qids], dtype=object
        ),
    }
    for qid in qids:
        payload[f"cells_{qid}"] = queries.get(qid).cell_ids
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload, allow_pickle=True)


def load_query_set(path: Union[str, pathlib.Path]) -> QuerySet:
    """Restore a query set saved by :func:`save_query_set`.

    Raises
    ------
    PersistenceError
        If the file is unreadable, structurally incomplete or written by
        an unknown format version.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise PersistenceError(f"no query-set file at {path}")
    try:
        archive = np.load(path, allow_pickle=True)
    except Exception as error:  # zipfile/format errors vary by numpy
        raise PersistenceError(f"cannot read query-set file {path}: {error}")

    try:
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise PersistenceError(
                f"query-set file {path} has format version {version}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        family = MinHashFamily(
            num_hashes=int(archive["family_num_hashes"][0]),
            seed=int(archive["family_seed"][0]),
            prime=int(archive["family_prime"][0]),
        )
        qids = archive["qids"]
        num_frames = archive["num_frames"]
        labels = archive["labels"]
        queries = []
        for position, qid in enumerate(qids):
            cell_ids = archive[f"cells_{int(qid)}"]
            queries.append(
                Query(
                    qid=int(qid),
                    cell_ids=np.asarray(cell_ids, dtype=np.int64),
                    num_frames=int(num_frames[position]),
                    sketch=family.sketch(cell_ids),
                    label=str(labels[position]),
                )
            )
    except PersistenceError:
        raise
    except KeyError as error:
        raise PersistenceError(
            f"query-set file {path} is missing field {error}"
        )
    return QuerySet(queries, family)
