"""Saving and loading query subscriptions.

A monitoring deployment sketches its query videos once ("offline", as
the paper puts it) and then runs for days; re-fingerprinting hundreds of
clips on every restart would be wasteful. This module persists a
:class:`~repro.core.query.QuerySet` — cell-id sets, frame counts, labels
and the hash-family parameters — to a single ``.npz`` file, and restores
it with sketches recomputed from the (exactly preserved) cell ids under
the same family, so a reloaded set is bit-for-bit equivalent to the
original.

Format version 2 additionally records the detector-relevant
configuration (order, representation, ``vectorized``, threshold, ...)
alongside the query set: a saved subscription is only meaningful for the
engine it was built for, and silently loading it into a differently
configured detector would change which copies are detected. Loading
therefore fails loudly when the caller's expected configuration differs
from the recorded one. Version 1 files (no configuration recorded) still
load; they simply have nothing to check against.

The file embeds a format version; loading a future or corrupted file
fails loudly instead of mis-detecting quietly.

The payload helpers (:func:`query_set_payload`,
:func:`query_set_from_mapping`, :func:`detector_config_payload`,
:func:`detector_config_from_mapping`) are shared with the serving
layer's :class:`~repro.serve.checkpoint.CheckpointManager`, which embeds
per-worker query sets and the service configuration in its snapshots.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.config import CombinationOrder, DetectorConfig, Representation
from repro.core.query import Query, QuerySet
from repro.errors import ReproError
from repro.minhash.family import MinHashFamily

__all__ = [
    "CONFIG_FIELDS",
    "PersistenceError",
    "detector_config_from_mapping",
    "detector_config_payload",
    "load_query_set",
    "load_recorded_config",
    "query_set_from_mapping",
    "query_set_payload",
    "require_config_match",
    "save_query_set",
]

FORMAT_VERSION = 2

#: Detector configuration fields recorded alongside a saved query set —
#: everything that changes which matches the engine reports.
CONFIG_FIELDS = (
    "num_hashes",
    "threshold",
    "window_seconds",
    "tempo_scale",
    "order",
    "representation",
    "use_index",
    "prune",
    "vectorized",
)


class PersistenceError(ReproError):
    """A query-set file is missing, corrupt or from an unknown version."""


# ----------------------------------------------------------------------
# payload helpers (shared with repro.serve.checkpoint)
# ----------------------------------------------------------------------


def query_set_payload(
    queries: QuerySet, prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten a query set into npz-storable arrays, keys ``prefix``-ed.

    Sketch values are *not* stored — they are a pure function of
    (cell ids, family) and recomputing them on load keeps the layout
    independent of the sketch representation.
    """
    qids = queries.query_ids
    payload: Dict[str, np.ndarray] = {
        f"{prefix}family_num_hashes": np.asarray([queries.family.num_hashes]),
        f"{prefix}family_seed": np.asarray([queries.family.seed]),
        f"{prefix}family_prime": np.asarray([queries.family.prime]),
        f"{prefix}qids": np.asarray(qids, dtype=np.int64),
        f"{prefix}num_frames": np.asarray(
            [queries.get(qid).num_frames for qid in qids], dtype=np.int64
        ),
        f"{prefix}labels": np.asarray(
            [queries.get(qid).label for qid in qids], dtype=object
        ),
    }
    for qid in qids:
        payload[f"{prefix}cells_{qid}"] = queries.get(qid).cell_ids
    return payload


def query_set_from_mapping(
    mapping: Mapping[str, np.ndarray], prefix: str = "", source: str = "payload"
) -> QuerySet:
    """Rebuild a query set from :func:`query_set_payload` arrays.

    ``mapping`` may be an open ``np.load`` archive or a plain dict;
    ``source`` names it in error messages.
    """
    try:
        family = MinHashFamily(
            num_hashes=int(mapping[f"{prefix}family_num_hashes"][0]),
            seed=int(mapping[f"{prefix}family_seed"][0]),
            prime=int(mapping[f"{prefix}family_prime"][0]),
        )
        qids = mapping[f"{prefix}qids"]
        num_frames = mapping[f"{prefix}num_frames"]
        labels = mapping[f"{prefix}labels"]
        queries: List[Query] = []
        for position, qid in enumerate(qids):
            cell_ids = mapping[f"{prefix}cells_{int(qid)}"]
            queries.append(
                Query(
                    qid=int(qid),
                    cell_ids=np.asarray(cell_ids, dtype=np.int64),
                    num_frames=int(num_frames[position]),
                    sketch=family.sketch(cell_ids),
                    label=str(labels[position]),
                )
            )
    except KeyError as error:
        raise PersistenceError(f"{source} is missing field {error}")
    return QuerySet(queries, family)


def detector_config_payload(
    config: DetectorConfig, prefix: str = "config_"
) -> Dict[str, np.ndarray]:
    """Flatten the detector-relevant configuration into npz arrays.

    Enum fields are stored by value (their stable string names), the
    rest as one-element numeric arrays.
    """
    payload: Dict[str, np.ndarray] = {}
    for name in CONFIG_FIELDS:
        value = getattr(config, name)
        if isinstance(value, (CombinationOrder, Representation)):
            payload[f"{prefix}{name}"] = np.asarray([value.value])
        elif isinstance(value, bool):
            payload[f"{prefix}{name}"] = np.asarray([int(value)])
        else:
            payload[f"{prefix}{name}"] = np.asarray([value])
    return payload


def detector_config_from_mapping(
    mapping: Mapping[str, np.ndarray], prefix: str = "config_"
) -> DetectorConfig:
    """Rebuild a :class:`DetectorConfig` from recorded payload arrays."""
    try:
        return DetectorConfig(
            num_hashes=int(mapping[f"{prefix}num_hashes"][0]),
            threshold=float(mapping[f"{prefix}threshold"][0]),
            window_seconds=float(mapping[f"{prefix}window_seconds"][0]),
            tempo_scale=float(mapping[f"{prefix}tempo_scale"][0]),
            order=CombinationOrder(str(mapping[f"{prefix}order"][0])),
            representation=Representation(
                str(mapping[f"{prefix}representation"][0])
            ),
            use_index=bool(int(mapping[f"{prefix}use_index"][0])),
            prune=bool(int(mapping[f"{prefix}prune"][0])),
            vectorized=bool(int(mapping[f"{prefix}vectorized"][0])),
        )
    except KeyError as error:
        raise PersistenceError(f"recorded config is missing field {error}")


def require_config_match(
    recorded: DetectorConfig, expected: DetectorConfig, source: str = "file"
) -> None:
    """Fail loudly when a recorded config differs from the caller's.

    Raises
    ------
    PersistenceError
        Listing every differing field with both values.
    """
    differing = []
    for name in CONFIG_FIELDS:
        have = getattr(recorded, name)
        want = getattr(expected, name)
        if have != want:
            have_repr = have.value if hasattr(have, "value") else have
            want_repr = want.value if hasattr(want, "value") else want
            differing.append(f"{name}: recorded={have_repr} expected={want_repr}")
    if differing:
        raise PersistenceError(
            f"{source} was saved under a different detector "
            f"configuration — " + "; ".join(differing)
        )


# ----------------------------------------------------------------------
# query-set files
# ----------------------------------------------------------------------


def save_query_set(
    queries: QuerySet,
    path: Union[str, pathlib.Path],
    config: Optional[DetectorConfig] = None,
) -> None:
    """Write a query set (and its family parameters) to ``path``.

    The ``.npz`` holds, per query: id, label, key-frame count and the
    distinct cell-id array, plus — when ``config`` is given — the
    detector configuration the subscription was built for, checked on
    load (see :func:`load_query_set`).
    """
    path = pathlib.Path(path)
    payload = {
        "format_version": np.asarray([FORMAT_VERSION]),
        **query_set_payload(queries),
    }
    if config is not None:
        payload.update(detector_config_payload(config))
    with open(path, "wb") as handle:
        # No allow_pickle kwarg: older numpy stored it as a spurious
        # archive member (object arrays pickle by default on save; it
        # is the load side that must opt in).
        np.savez_compressed(handle, **payload)


def _open_archive(path: pathlib.Path):
    if not path.exists():
        raise PersistenceError(f"no query-set file at {path}")
    try:
        return np.load(path, allow_pickle=True)
    except Exception as error:  # zipfile/format errors vary by numpy
        raise PersistenceError(f"cannot read query-set file {path}: {error}")


def _read_version(archive, path: pathlib.Path) -> int:
    try:
        version = int(archive["format_version"][0])
    except KeyError as error:
        raise PersistenceError(
            f"query-set file {path} is missing field {error}"
        )
    if version not in (1, FORMAT_VERSION):
        raise PersistenceError(
            f"query-set file {path} has format version {version}; "
            f"this build reads versions 1 and {FORMAT_VERSION}"
        )
    return version


def load_recorded_config(
    path: Union[str, pathlib.Path]
) -> Optional[DetectorConfig]:
    """The detector configuration recorded in a query-set file.

    ``None`` for version 1 files and version 2 files saved without one.
    """
    path = pathlib.Path(path)
    archive = _open_archive(path)
    version = _read_version(archive, path)
    if version < 2 or "config_num_hashes" not in archive:
        return None
    return detector_config_from_mapping(archive)


def load_query_set(
    path: Union[str, pathlib.Path],
    expected_config: Optional[DetectorConfig] = None,
) -> QuerySet:
    """Restore a query set saved by :func:`save_query_set`.

    Parameters
    ----------
    expected_config:
        The configuration the caller intends to run the queries under.
        When given and the file records one (format version 2), every
        differing field raises :class:`PersistenceError` — a saved
        subscription silently loaded into a different engine would
        change detection results. Version 1 files recorded nothing, so
        there is nothing to check.

    Raises
    ------
    PersistenceError
        If the file is unreadable, structurally incomplete, written by
        an unknown format version, or recorded under a configuration
        that differs from ``expected_config``.
    """
    path = pathlib.Path(path)
    archive = _open_archive(path)
    try:
        version = _read_version(archive, path)
        if expected_config is not None and version >= 2:
            if "config_num_hashes" in archive:
                require_config_match(
                    detector_config_from_mapping(archive),
                    expected_config,
                    source=f"query-set file {path}",
                )
        queries = query_set_from_mapping(
            archive, source=f"query-set file {path}"
        )
    except PersistenceError:
        raise
    except KeyError as error:
        raise PersistenceError(
            f"query-set file {path} is missing field {error}"
        )
    return queries
