"""Query-churn benchmark: subscribe/unsubscribe latency and throughput.

Measures the cost of the hot query lifecycle on the sharded service:

* **subscribe / unsubscribe latency** — wall-clock of one epoch-barrier
  round trip (`DetectionService.subscribe` / `.unsubscribe`): the
  lifecycle message rides the same bounded channels as chunks and the
  service waits for every shard's acknowledgement, so the latency is
  the price of keeping all shards on the same chunk boundary. Reported
  as mean milliseconds over a burst of churn ops.
* **steady-state throughput vs query count** — key frames/second
  through `DetectionService.run` after the burst, across query-set
  sizes, so the cost of each admitted query is visible.

Every configuration applies the identical churn sequence, so the match
count must agree across worker counts and backends for a given query
count — the bench enforces that invariant the same way
``bench_serve_scaling.py`` enforces shard transparency.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_churn.py [--quick]

Writes ``BENCH_CHURN.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/serving.md and the CI serve-smoke step.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.query import Query, QuerySet
from repro.minhash.family import MinHashFamily
from repro.serve import DetectionService

BENCH_SEED = 20080407  # ICDE 2008 in Cancún
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
TEMPO_SCALE = 2.0
THRESHOLD = 0.7
CELL_ID_SPACE = 40_960
QUERY_SECONDS = (40.0, 60.0)
CHUNK_WINDOWS = 8


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(rng: np.random.Generator, num_queries: int,
                   num_churn: int, stream_frames: int):
    """Initial query cell ids, a churn burst of extra queries, chunks."""
    frames_min = int(QUERY_SECONDS[0] * KEYFRAMES_PER_SECOND)
    frames_max = int(QUERY_SECONDS[1] * KEYFRAMES_PER_SECOND)
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries + num_churn):
        n = int(rng.integers(frames_min, frames_max + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    stream = rng.integers(0, CELL_ID_SPACE, size=stream_frames)
    for qid in (0, num_queries):  # one resident copy, one hot-query copy
        copy = np.asarray(cell_ids[qid])
        at = int(rng.integers(0, stream_frames - copy.size))
        stream[at : at + copy.size] = copy
    window_frames = max(1, round(WINDOW_SECONDS * KEYFRAMES_PER_SECOND))
    chunk_frames = CHUNK_WINDOWS * window_frames
    chunks = [
        stream[offset : offset + chunk_frames]
        for offset in range(0, stream_frames, chunk_frames)
    ]
    return cell_ids, frame_counts, chunks


def run_churn(config, family, cell_ids, frame_counts, chunks,
              num_queries, num_churn, workers, backend):
    """One pass: warm-up chunk, subscribe burst, timed stream, unsubscribe
    burst, flush. Returns latency/throughput/match figures."""
    resident = QuerySet.from_cell_ids(
        {qid: cell_ids[qid] for qid in range(num_queries)},
        {qid: frame_counts[qid] for qid in range(num_queries)},
        family,
    )
    service = DetectionService(
        config, resident, KEYFRAMES_PER_SECOND,
        num_workers=workers, backend=backend,
    )
    try:
        service.run(chunks[:1], flush=False)  # warm caches + channels

        subscribe_s = []
        for qid in range(num_queries, num_queries + num_churn):
            distinct = np.unique(np.asarray(cell_ids[qid], dtype=np.int64))
            query = Query(qid=qid, cell_ids=distinct,
                          num_frames=frame_counts[qid],
                          sketch=family.sketch(distinct))
            start = time.perf_counter()
            service.subscribe(query)
            subscribe_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        service.run(chunks[1:], flush=False)
        elapsed = time.perf_counter() - start

        unsubscribe_s = []
        for qid in reversed(range(num_queries, num_queries + num_churn)):
            start = time.perf_counter()
            service.unsubscribe(qid)
            unsubscribe_s.append(time.perf_counter() - start)

        service.flush()
        matches = len(service.matches)
    finally:
        service.close()
    frames = sum(len(chunk) for chunk in chunks[1:])
    return {
        "matches": matches,
        "subscribe_ms": 1e3 * float(np.mean(subscribe_s)),
        "unsubscribe_ms": 1e3 * float(np.mean(unsubscribe_s)),
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small stream, fewer query counts, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_CHURN.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best throughput is kept)",
    )
    args = parser.parse_args(argv)

    query_counts = [4, 8] if args.quick else [8, 16, 32]
    num_churn = 4 if args.quick else 8
    stream_frames = 800 if args.quick else 3200
    repeats = args.repeats or (1 if args.quick else 3)
    worker_counts = [1, 2] if args.quick else [1, 2, 4]
    backends = ["serial"] if args.quick else ["serial", "process"]

    config = DetectorConfig(
        num_hashes=128 if args.quick else 256,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
        tempo_scale=TEMPO_SCALE,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)

    results: List[Dict[str, object]] = []
    for num_queries in query_counts:
        rng = np.random.default_rng(BENCH_SEED + num_queries)
        cell_ids, frame_counts, chunks = build_workload(
            rng, num_queries, num_churn, stream_frames
        )
        reference_matches = None
        for backend in backends:
            for workers in worker_counts:
                best = None
                for _ in range(repeats):
                    sample = run_churn(
                        config, family, cell_ids, frame_counts, chunks,
                        num_queries, num_churn, workers, backend,
                    )
                    if best is None or (
                        sample["frames_per_sec"] > best["frames_per_sec"]
                    ):
                        best = sample
                if reference_matches is None:
                    reference_matches = best["matches"]
                elif best["matches"] != reference_matches:
                    raise SystemExit(
                        f"{backend}/w={workers}/Q={num_queries} found "
                        f"{best['matches']} matches, reference "
                        f"{reference_matches} — churn equivalence violated"
                    )
                results.append({
                    "backend": backend,
                    "workers": workers,
                    "num_queries": num_queries,
                    "num_churn_ops": num_churn,
                    **best,
                })
                print(f"{backend:>8s} w={workers} Q={num_queries:<3d} "
                      f"sub {best['subscribe_ms']:>7.2f} ms  "
                      f"unsub {best['unsubscribe_ms']:>7.2f} ms  "
                      f"{best['frames_per_sec']:>9.1f} frames/s "
                      f"({best['matches']} matches)")

    report = {
        "benchmark": "query_churn",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_cores": available_cores(),
        "workload": {
            "keyframes_per_second": KEYFRAMES_PER_SECOND,
            "window_seconds": WINDOW_SECONDS,
            "tempo_scale": TEMPO_SCALE,
            "threshold": THRESHOLD,
            "num_hashes": config.num_hashes,
            "query_counts": query_counts,
            "num_churn_ops": num_churn,
            "stream_frames": stream_frames,
            "chunk_windows": CHUNK_WINDOWS,
            "query_seconds": list(QUERY_SECONDS),
            "repeats": repeats,
        },
        "results": results,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
