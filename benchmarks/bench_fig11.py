"""Figure 11 — precision & recall vs basic window size w.

Paper protocol (Section VI-D): VS2, BitIndex with Sequential order.
Expected shape: both precision and recall decrease as w grows — longer
windows blur candidate boundaries (more foreign frames dilute candidate
sets) and coarsen the alignment grid.
"""

from __future__ import annotations

import pytest

from repro.config import DetectorConfig
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import run_detector

WINDOW_SWEEP = (5.0, 10.0, 15.0, 20.0)


def test_fig11_quality_vs_window(benchmark, vs2_prepared):
    def sweep():
        precisions = []
        recalls = []
        for window_seconds in WINDOW_SWEEP:
            result = run_detector(
                vs2_prepared,
                DetectorConfig(num_hashes=400, window_seconds=window_seconds),
            )
            precisions.append(result.quality.precision)
            recalls.append(result.quality.recall)
        return precisions, recalls

    precisions, recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["metric"] + [f"w={w:g}s" for w in WINDOW_SWEEP],
            [
                ["precision"] + [f"{p:.3f}" for p in precisions],
                ["recall"] + [f"{r:.3f}" for r in recalls],
            ],
            title="Figure 11: precision/recall vs w (VS2, BitIndex-Seq)",
        )
    )
    print(format_series("precision", WINDOW_SWEEP, precisions))
    print(format_series("recall", WINDOW_SWEEP, recalls))

    # Shape: quality does not improve as the window grows; the smallest
    # window performs at least as well as the largest on both metrics.
    assert recalls[0] >= recalls[-1]
    assert precisions[0] >= precisions[-1] - 1e-9
    assert recalls[0] >= 0.6, "small-w recall on VS2 should be substantial"
