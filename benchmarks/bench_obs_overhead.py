"""Observability overhead — phase timers on vs off.

The metrics registry's counters are unconditional (plain dict updates,
present since the original ``EngineStats`` dataclass), so the only
switchable cost is the phase timers: two ``perf_counter`` calls per
phase per basic window. This benchmark runs the same VS1 detection twice
— with a default registry and with ``MetricsRegistry(timing_enabled=
False)`` — and reports the wall-clock ratio.

The budget documented in docs/observability.md is <= 5 % overhead. The
assertion here is deliberately much looser (50 %) because at this
reproduction's scale a run lasts a few hundred milliseconds and CI
scheduler noise alone exceeds 5 %; the printed ratio is the number to
read.
"""

from __future__ import annotations

from benchmarks.conftest import dump_metrics_snapshot
from repro.config import DetectorConfig
from repro.evaluation.runner import run_detector
from repro.obs.registry import MetricsRegistry

CONFIG = DetectorConfig(num_hashes=400, threshold=0.7)
ROUNDS = 3


def test_obs_overhead(benchmark, vs1_prepared):
    def measure():
        timed_seconds = []
        untimed_seconds = []
        timed_result = None
        for _ in range(ROUNDS):
            timed_result = run_detector(
                vs1_prepared, CONFIG, registry=MetricsRegistry()
            )
            timed_seconds.append(timed_result.cpu_seconds)
            untimed = run_detector(
                vs1_prepared,
                CONFIG,
                registry=MetricsRegistry(timing_enabled=False),
            )
            untimed_seconds.append(untimed.cpu_seconds)
        return min(timed_seconds), min(untimed_seconds), timed_result

    timed, untimed, result = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    dump_metrics_snapshot("obs_overhead_timed", result.metrics)
    ratio = timed / untimed
    print()
    print(
        f"timers on: {timed:.4f}s  timers off: {untimed:.4f}s  "
        f"ratio: {ratio:.3f} (budget 1.05, asserted < 1.50)"
    )
    # Timing-disabled runs must record no timers at all.
    assert result.metrics["timers"], "enabled run should carry phase timers"
    assert ratio < 1.50, f"phase timers cost {ratio:.3f}x"
