"""Ingestion scalability benchmark: throughput vs stream count.

Measures aggregate detector throughput (key frames/second through
``StreamScheduler.run``) as the number of concurrent streams grows, for
both scheduling policies (round-robin and deficit round robin) and for
the inline and pooled detector modes, against N independent
``StreamingDetector`` + ``LiveMonitor`` runs as the baseline. Streams
deliver pre-extracted cell ids (the codec-free fast path) so the
quantity under test is scheduling and multiplexing overhead, not codec
work. Per-stream output equality with the independent baseline is
enforced on every configuration — a wrong-but-fast scheduler fails the
run.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest_scaling.py [--quick]

Writes ``BENCH_INGEST.json`` at the repository root (override with
``--output``). Standalone CLI, not a pytest module; the rows feed
docs/ingestion.md and the CI chaos-smoke step.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.config import DetectorConfig
from repro.core.detector import StreamingDetector
from repro.core.live import LiveMonitor
from repro.core.query import QuerySet
from repro.ingest import (
    CellIdSource,
    SchedulingPolicy,
    StreamScheduler,
    StreamSession,
)
from repro.minhash.family import MinHashFamily

BENCH_SEED = 20080408
KEYFRAMES_PER_SECOND = 2.0
WINDOW_SECONDS = 5.0
THRESHOLD = 0.7
CELL_ID_SPACE = 40_960
QUERY_FRAMES = (60, 100)
CHUNK_FRAMES = 80


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(rng: np.random.Generator, num_queries: int,
                   num_streams: int, frames_per_stream: int):
    """Shared queries plus per-stream chunked cell-id streams with
    embedded copies."""
    cell_ids: Dict[int, np.ndarray] = {}
    frame_counts: Dict[int, int] = {}
    for qid in range(num_queries):
        n = int(rng.integers(QUERY_FRAMES[0], QUERY_FRAMES[1] + 1))
        cell_ids[qid] = rng.integers(0, CELL_ID_SPACE, size=n)
        frame_counts[qid] = n
    streams: List[List[np.ndarray]] = []
    for _ in range(num_streams):
        stream = rng.integers(0, CELL_ID_SPACE, size=frames_per_stream)
        copy = np.asarray(cell_ids[int(rng.integers(0, num_queries))])
        at = int(rng.integers(0, frames_per_stream - copy.size))
        stream[at : at + copy.size] = copy
        streams.append([
            stream[offset : offset + CHUNK_FRAMES]
            for offset in range(0, frames_per_stream, CHUNK_FRAMES)
        ])
    return cell_ids, frame_counts, streams


def _match_key(match):
    return (match.qid, match.window_index, match.start_frame,
            match.end_frame, match.similarity)


def run_baseline(config, fresh_queries, streams):
    """N independent single-stream runs, timed end to end."""
    start = time.perf_counter()
    per_stream = []
    for chunks in streams:
        detector = StreamingDetector(
            config, fresh_queries(), KEYFRAMES_PER_SECOND
        )
        monitor = LiveMonitor(detector)
        matches = []
        for chunk in chunks:
            matches.extend(monitor.push_cell_ids(chunk))
        matches.extend(monitor.flush())
        per_stream.append(matches)
    elapsed = time.perf_counter() - start
    frames = sum(sum(len(c) for c in chunks) for chunks in streams)
    return {
        "matches": sum(len(m) for m in per_stream),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }, per_stream


def run_scheduler(config, fresh_queries, streams, policy, pool_size):
    """One timed scheduler pass over all streams."""
    pairs = []
    for stream_id, chunks in enumerate(streams):
        session = StreamSession(
            stream_id, config, fresh_queries(), KEYFRAMES_PER_SECOND
        )
        pairs.append((CellIdSource(stream_id, chunks), session))
    scheduler = StreamScheduler(
        pairs, policy=policy, pool_size=pool_size, queue_capacity=4
    )
    start = time.perf_counter()
    by_stream = scheduler.run()
    elapsed = time.perf_counter() - start
    frames = sum(sum(len(c) for c in chunks) for chunks in streams)
    return {
        "matches": sum(len(m) for m in by_stream.values()),
        "elapsed_s": elapsed,
        "frames_per_sec": frames / elapsed if elapsed > 0 else 0.0,
    }, [by_stream[stream_id] for stream_id in range(len(streams))]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer streams, shorter streams, one repeat",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_INGEST.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per configuration (best is kept)",
    )
    args = parser.parse_args(argv)

    num_queries = 6 if args.quick else 16
    frames_per_stream = 640 if args.quick else 3200
    repeats = args.repeats or (1 if args.quick else 3)
    stream_counts = [1, 2, 4] if args.quick else [1, 2, 4, 8]
    pool_sizes = [0, 2]

    config = DetectorConfig(
        num_hashes=64 if args.quick else 256,
        threshold=THRESHOLD,
        window_seconds=WINDOW_SECONDS,
    )
    family = MinHashFamily(num_hashes=config.num_hashes, seed=BENCH_SEED)

    results: List[Dict[str, object]] = []
    for num_streams in stream_counts:
        rng = np.random.default_rng(BENCH_SEED + num_streams)
        cell_ids, frame_counts, streams = build_workload(
            rng, num_queries, num_streams, frames_per_stream
        )

        def fresh_queries() -> QuerySet:
            return QuerySet.from_cell_ids(cell_ids, frame_counts, family)

        baseline = None
        reference = None
        for _ in range(repeats):
            sample, per_stream = run_baseline(
                config, fresh_queries, streams
            )
            reference = per_stream
            if baseline is None or (
                sample["frames_per_sec"] > baseline["frames_per_sec"]
            ):
                baseline = sample
        results.append({
            "policy": "independent", "streams": num_streams,
            "pool": 0, **baseline,
        })
        print(f"n={num_streams} {'independent':>12s} pool=0 "
              f"{baseline['frames_per_sec']:>10.1f} frames/s "
              f"({baseline['matches']} matches)")

        for policy in SchedulingPolicy:
            for pool_size in pool_sizes:
                best = None
                for _ in range(repeats):
                    sample, per_stream = run_scheduler(
                        config, fresh_queries, streams, policy, pool_size
                    )
                    for got, expected in zip(per_stream, reference):
                        if [_match_key(m) for m in got] != [
                            _match_key(m) for m in expected
                        ]:
                            raise SystemExit(
                                f"{policy.value}/pool={pool_size} "
                                f"diverged from the independent runs — "
                                "multiplexing transparency violated"
                            )
                    if best is None or (
                        sample["frames_per_sec"] > best["frames_per_sec"]
                    ):
                        best = sample
                results.append({
                    "policy": policy.value, "streams": num_streams,
                    "pool": pool_size, **best,
                })
                ratio = (
                    best["frames_per_sec"] / baseline["frames_per_sec"]
                    if baseline["frames_per_sec"] else 0.0
                )
                print(f"n={num_streams} {policy.value:>12s} "
                      f"pool={pool_size} "
                      f"{best['frames_per_sec']:>10.1f} frames/s "
                      f"(x{ratio:.2f} vs independent)")

    report = {
        "benchmark": "ingest_scaling",
        "seed": BENCH_SEED,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_cores": available_cores(),
        "config": {
            "num_hashes": config.num_hashes,
            "threshold": THRESHOLD,
            "window_seconds": WINDOW_SECONDS,
            "frames_per_stream": frames_per_stream,
            "chunk_frames": CHUNK_FRAMES,
            "num_queries": num_queries,
            "repeats": repeats,
        },
        "rows": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
