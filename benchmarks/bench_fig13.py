"""Figure 13 — accuracy of the Bit method on temporally reedited copies.

Paper protocol (Section VI-E): VS2 — every inserted copy has been
brightness/color-altered, noised, rescaled, re-timed to PAL *and*
segment-reordered. The claim: "our method (Bit) achieves high accuracy"
despite the reordering, across the δ range. This is the headline result
the Seq/Warp baselines (Figures 14/15) fail to match.
"""

from __future__ import annotations

import pytest

from repro.config import DetectorConfig
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import run_detector

DELTA_SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig13_bit_accuracy_on_vs2(benchmark, vs2_prepared):
    def sweep():
        precisions = []
        recalls = []
        for delta in DELTA_SWEEP:
            result = run_detector(
                vs2_prepared, DetectorConfig(num_hashes=400, threshold=delta)
            )
            precisions.append(result.quality.precision)
            recalls.append(result.quality.recall)
        return precisions, recalls

    precisions, recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["metric"] + [f"δ={d}" for d in DELTA_SWEEP],
            [
                ["precision"] + [f"{p:.3f}" for p in precisions],
                ["recall"] + [f"{r:.3f}" for r in recalls],
            ],
            title="Figure 13: Bit precision/recall on VS2 (reordered copies)",
        )
    )
    print(render_chart({"precision": precisions, "recall": recalls},
                       DELTA_SWEEP, title="Bit on VS2 vs δ"))
    print(format_series("precision", DELTA_SWEEP, precisions))
    print(format_series("recall", DELTA_SWEEP, recalls))

    # The headline: at the paper's default δ = 0.7 both metrics are high
    # in spite of the temporal reordering.
    default_position = DELTA_SWEEP.index(0.7)
    assert precisions[default_position] >= 0.9
    assert recalls[default_position] >= 0.6
    # Recall is monotone non-increasing in δ (stricter threshold).
    for previous, current in zip(recalls, recalls[1:]):
        assert current <= previous + 1e-9
