"""Figure 7 — precision vs K for δ ∈ {0.5, 0.7, 0.9} (Bit, both orders).

Paper protocol (Section VI-B): VS1 stream, Bit representation, sweeping
the number of hash functions. Expected shape: precision rises with K
(fewer estimator-noise false matches) and saturates; at low δ the
Geometric order's precision is at least the Sequential order's (it tests
fewer mis-aligned candidates).
"""

from __future__ import annotations

import pytest

from repro.config import CombinationOrder, DetectorConfig
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import PreparedWorkload, run_detector
from repro.video.clip import concat_clips
from repro.video.synth import ClipSynthesizer
from repro.workloads.doctor import DoctoredStream, StreamDoctor
from repro.workloads.groundtruth import GroundTruth

from benchmarks.conftest import BENCH_SEED

K_SWEEP = (16, 32, 64, 128, 256, 512)
DELTAS = (0.5, 0.7, 0.9)

#: Fractions of a query's frames the decoys share. Yields decoy-query
#: Jaccard comfortably below the loosest δ (0.5) — non-copies per
#: Definition 1 at every threshold studied — but close enough that a
#: noisy small-K estimator mistakes them for copies.
DECOY_SHARES = (0.25, 0.35)


@pytest.fixture(scope="module")
def decoy_prepared(bench_profile, bench_library) -> PreparedWorkload:
    """VS1 plus one partially-similar decoy per query.

    The paper's corpus (real Google Video content) naturally contains
    near-misses; our synthetic clips are mutually near-orthogonal, so the
    precision-vs-K effect needs planted decoys to be measurable.
    """
    synth = ClipSynthesizer(seed=BENCH_SEED + 1)
    kf_rate = bench_profile.keyframes_per_second
    inserts = {}
    for qid, clip in bench_library:
        inserts[qid] = clip
        for variant, share in enumerate(DECOY_SHARES):
            shared_frames = max(1, int(clip.num_frames * share))
            shared = clip.subclip(0, shared_frames)
            fresh = synth.generate_clip(
                (clip.num_frames - shared_frames) / kf_rate,
                label=f"decoy-{qid}-{variant}",
                fps=clip.fps,
            )
            inserts[1000 * (variant + 1) + qid] = concat_clips(
                [shared, fresh], label=f"decoy-{qid}-{variant}"
            )

    profile = bench_profile.replace(stream_seconds=3000.0)
    doctor = StreamDoctor(profile, seed=BENCH_SEED)
    stream = doctor.build_from_clips(inserts, name="VS1+decoys")
    true_occurrences = [
        occ for occ in stream.ground_truth if occ.qid < 1000
    ]
    filtered = DoctoredStream(
        clip=stream.clip,
        ground_truth=GroundTruth(true_occurrences, stream.clip.num_frames),
        keyframes_per_second=stream.keyframes_per_second,
        name=stream.name,
    )
    return PreparedWorkload.prepare(filtered, bench_library)


def sweep_quality(prepared, metric):
    """Run the K x δ x order grid; return {(δ, order): [metric per K]}."""
    results = {}
    for delta in DELTAS:
        for order in CombinationOrder:
            series = []
            for num_hashes in K_SWEEP:
                config = DetectorConfig(
                    num_hashes=num_hashes,
                    threshold=delta,
                    order=order,
                )
                quality = run_detector(prepared, config).quality
                series.append(getattr(quality, metric))
            results[(delta, order)] = series
    return results


def test_fig7_precision_vs_k(benchmark, decoy_prepared):
    results = benchmark.pedantic(
        sweep_quality, args=(decoy_prepared, "precision"), rounds=1, iterations=1
    )
    print()
    rows = [
        [f"δ={delta} {order.value[:3]}"] + [f"{v:.3f}" for v in series]
        for (delta, order), series in results.items()
    ]
    print(
        format_table(
            ["series"] + [f"K={k}" for k in K_SWEEP],
            rows,
            title="Figure 7: precision vs K (VS1 + decoys, Bit)",
        )
    )
    for (delta, order), series in results.items():
        print(format_series(f"precision d={delta} {order.value}", K_SWEEP, series))

    # Shape: precision improves with K and saturates high.
    for (delta, order), series in results.items():
        assert series[-1] >= series[0] - 1e-9, (delta, order, series)
        assert series[-1] >= 0.85, (delta, order, series)
    # At the loosest threshold the small-K estimator must actually be
    # fooled by the decoys (otherwise the sweep shows nothing).
    low_k_precision = min(
        results[(0.5, order)][0] for order in CombinationOrder
    )
    assert low_k_precision < 1.0, "decoys should hurt precision at K=16"
